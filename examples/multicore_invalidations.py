#!/usr/bin/env python3
"""Coherent DMDC under external invalidation traffic (paper Section 6.2.4).

In a multiprocessor, external invalidations must enforce write
serialization.  Coherent DMDC extends the checking table with INV bits and
adds a cache-line-interleaved YLA set to bound invalidation windows.  This
example injects random invalidations at increasing rates and reports how
the design degrades — gracefully up to ~1 invalidation per 10 cycles, as
the paper found.
"""

import sys

from repro.api import format_table, run


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    workload = sys.argv[2] if len(sys.argv) > 2 else "gzip"

    baseline = run(workload, instructions=budget)
    rows = []
    for rate in (0.0, 1.0, 10.0, 100.0):
        r = run(workload, scheme="dmdc-coherent", instructions=budget,
                overrides={"invalidation_rate": rate})
        rows.append([
            f"{rate:g}",
            r.counters["inv.injected"],
            r.counters["inv.filtered"],
            r.counters["inv.promotions"],
            f"{r.checking_cycle_fraction:.1%}",
            f"{r.false_replays_per_minstr:.0f}",
            f"{r.cycles / baseline.cycles - 1:+.2%}",
        ])
    print(format_table(
        ["inv/1000cyc", "injected", "filtered by line-YLA", "INV promotions",
         "checking cycles", "false replays/Minstr", "slowdown vs baseline"],
        rows,
        title=f"Coherent DMDC under invalidation storms ({workload})",
    ))
    print("\n'filtered' invalidations hit lines with no in-flight loads and")
    print("cost nothing — the line-interleaved YLA set proves it instantly.")


if __name__ == "__main__":
    main()
