#!/usr/bin/env python3
"""Coherent DMDC under external invalidation traffic (paper Section 6.2.4).

In a multiprocessor, external invalidations must enforce write
serialization.  Coherent DMDC extends the checking table with INV bits and
adds a cache-line-interleaved YLA set to bound invalidation windows.  This
example injects random invalidations at increasing rates and reports how
the design degrades — gracefully up to ~1 invalidation per 10 cycles, as
the paper found.
"""

import sys

from repro import CONFIG2, SchemeConfig, get_workload
from repro.sim.runner import run_workload
from repro.stats.report import format_table


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    workload_name = sys.argv[2] if len(sys.argv) > 2 else "gzip"
    workload = get_workload(workload_name)
    coherent = SchemeConfig(kind="dmdc", coherence=True)

    baseline = run_workload(CONFIG2, workload, max_instructions=budget)
    rows = []
    for rate in (0.0, 1.0, 10.0, 100.0):
        cfg = CONFIG2.with_scheme(coherent).with_overrides(invalidation_rate=rate)
        r = run_workload(cfg, workload, max_instructions=budget)
        rows.append([
            f"{rate:g}",
            r.counters["inv.injected"],
            r.counters["inv.filtered"],
            r.counters["inv.promotions"],
            f"{r.checking_cycle_fraction:.1%}",
            f"{r.false_replays_per_minstr:.0f}",
            f"{r.cycles / baseline.cycles - 1:+.2%}",
        ])
    print(format_table(
        ["inv/1000cyc", "injected", "filtered by line-YLA", "INV promotions",
         "checking cycles", "false replays/Minstr", "slowdown vs baseline"],
        rows,
        title=f"Coherent DMDC under invalidation storms ({workload_name})",
    ))
    print("\n'filtered' invalidations hit lines with no in-flight loads and")
    print("cost nothing — the line-interleaved YLA set proves it instantly.")


if __name__ == "__main__":
    main()
