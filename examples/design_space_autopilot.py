#!/usr/bin/env python3
"""The design-space autopilot end to end (see docs/sweeps.md).

Declares a grid over scheme x checking-table size x YLA register count,
runs it to completion through the shared engine with a resumable JSONL
ledger, and pivots the ledger into the paper-figure-style report —
speedup and energy verdicts vs the injected conventional baseline.

Run it twice: the second invocation serves every point from the ledger
(hit rate 100%) and re-renders the identical report without simulating
anything.  Kill it midway and re-run: same story for the finished
points.  The CLI equivalent is::

    repro sweep --preset demo64 --ledger demo64.jsonl --json-out demo64.json
"""

import sys

from repro.sweeps import GridSpec, run_sweep

GRID = GridSpec(
    name="autopilot-demo",
    axes={
        "scheme": ["dmdc", "dmdc-local"],
        "table": [512, 2048],
        "regs": [1, 4],
        "workload": ["gzip", "mcf"],
    },
    base={"config": "config2", "instructions": 4000, "seed": 1},
    baseline="conventional",
)


def main() -> None:
    ledger = sys.argv[1] if len(sys.argv) > 1 else "autopilot-demo.jsonl"

    def progress(done, total, point, source):
        print(f"  [{done:>2}/{total}] {source:7s} "
              f"{point['scheme']} / {point['workload']}", file=sys.stderr)

    outcome = run_sweep(GRID, ledger=ledger, progress=progress)
    print(outcome.accounting.format_block())
    print()
    print(outcome.report().render())
    print(f"\nledger: {outcome.ledger_path} — re-run me to see the "
          f"resume path serve every point for free.")


if __name__ == "__main__":
    main()
