#!/usr/bin/env python3
"""Design-space exploration of YLA filtering (paper Section 3 / Figure 2).

Sweeps the number of YLA registers and their address interleaving on a few
representative workloads and prints the fraction of LQ searches filtered,
plus a comparison against counting Bloom filters of equal "budget".

The whole grid goes through :func:`repro.api.sweep`, so every design
point is planned as one deduplicated, cached engine batch; the returned
:class:`~repro.api.SweepResult` carries the batch's cache accounting.
"""

import sys

from repro.api import format_table, sweep

WORKLOADS = ("gzip", "mcf", "swim", "art")


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000

    yla_points = [
        (f"{n} x {label}", f"yla-regs{n}-gran{gran}")
        for n in (1, 2, 4, 8, 16)
        for label, gran in (("quad-word", 8), ("cache-line", 128))
    ]
    grid = sweep(WORKLOADS, schemes=[scheme for _, scheme in yla_points],
                 instructions=budget)
    rows = [
        [title, *(f"{grid[scheme, name].safe_store_fraction:.1%}"
                  for name in WORKLOADS)]
        for title, scheme in yla_points
    ]
    print(format_table(["YLA configuration", *WORKLOADS], rows,
                       title="LQ searches filtered by YLA registers"))
    print(f"  ({grid.stats['unique']} design points, "
          f"{grid.stats['executed']} simulated, "
          f"cache hit rate {grid.stats['hit_rate']:.0%})")

    print()
    bloom_labels = [f"bloom-entries{entries}" for entries in (64, 256, 1024)]
    grid = sweep(WORKLOADS, schemes=bloom_labels, instructions=budget)
    rows = [
        [scheme.replace("-entries", " "),
         *(f"{grid[scheme][name].safe_store_fraction:.1%}"
           for name in WORKLOADS)]
        for scheme in bloom_labels
    ]
    print(format_table(["Bloom filter", *WORKLOADS], rows,
                       title="Address-only filtering for comparison (Figure 3)"))
    print("\nNote how one 64-bit YLA register rivals kilobit Bloom filters:")
    print("age beats address when memory issue is nearly in order.")


if __name__ == "__main__":
    main()
