#!/usr/bin/env python3
"""Design-space exploration of YLA filtering (paper Section 3 / Figure 2).

Sweeps the number of YLA registers and their address interleaving on a few
representative workloads and prints the fraction of LQ searches filtered,
plus a comparison against counting Bloom filters of equal "budget".
"""

import sys

from repro import CONFIG2, SchemeConfig, get_workload, run_workload
from repro.stats.report import format_table

WORKLOADS = ("gzip", "mcf", "swim", "art")


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000

    rows = []
    for n in (1, 2, 4, 8, 16):
        for label, gran in (("quad-word", 8), ("cache-line", 128)):
            cfg = CONFIG2.with_scheme(
                SchemeConfig(kind="yla", yla_registers=n, yla_granularity=gran)
            )
            cells = [f"{n} x {label}"]
            for name in WORKLOADS:
                r = run_workload(cfg, get_workload(name), max_instructions=budget)
                cells.append(f"{r.safe_store_fraction:.1%}")
            rows.append(cells)
    print(format_table(["YLA configuration", *WORKLOADS], rows,
                       title="LQ searches filtered by YLA registers"))

    print()
    rows = []
    for entries in (64, 256, 1024):
        cfg = CONFIG2.with_scheme(SchemeConfig(kind="bloom", bloom_entries=entries))
        cells = [f"bloom {entries}"]
        for name in WORKLOADS:
            r = run_workload(cfg, get_workload(name), max_instructions=budget)
            cells.append(f"{r.safe_store_fraction:.1%}")
        rows.append(cells)
    print(format_table(["Bloom filter", *WORKLOADS], rows,
                       title="Address-only filtering for comparison (Figure 3)"))
    print("\nNote how one 64-bit YLA register rivals kilobit Bloom filters:")
    print("age beats address when memory issue is nearly in order.")


if __name__ == "__main__":
    main()
