#!/usr/bin/env python3
"""Anatomy of a memory-ordering violation, instruction by instruction.

Hand-builds a five-instruction scenario — a store whose address resolves
late, shadowing an eager younger load to the same address — and runs it
under the conventional scheme (execution-time detection) and under DMDC
(commit-time detection), printing the pipeline events that differ.

This is the smallest program that exercises the entire machinery the
paper is about.
"""

from repro.api import InstrClass, MicroOp, Processor, SchemeConfig, Trace, small_config


def build_scenario() -> Trace:
    trace = Trace("violation-demo")
    pc = 0x1000

    def emit(cls, **kw):
        nonlocal pc
        trace.append(MicroOp(pc, cls, **kw))
        pc += 4

    for i in range(4):                      # warm the pipeline
        emit(InstrClass.IALU, srcs=(28,), dst=1 + i)
    emit(InstrClass.IDIV, srcs=(28,), dst=10)          # slow address producer
    emit(InstrClass.STORE, srcs=(10,), mem_addr=0x800,  # pointer store: late
         mem_size=8, data_src=28)
    emit(InstrClass.LOAD, srcs=(29,), dst=11,           # eager younger load
         mem_addr=0x800, mem_size=8)
    for i in range(24):
        emit(InstrClass.IALU, srcs=(28,), dst=1 + i % 8)
    return trace


def run(scheme: SchemeConfig) -> None:
    config = small_config(wrongpath_loads=False).with_scheme(scheme)
    trace = build_scenario()
    proc = Processor(config, trace)
    result = proc.run(len(trace))
    c = result.counters
    print(f"--- scheme: {proc.scheme.name}")
    print(f"    ground-truth violations observed : {c['groundtruth.violations']}")
    print(f"    replays at store resolution      : {c['replays.execution_time']}")
    print(f"    replays at commit (DMDC)         : {c['replays.commit_time']}")
    print(f"    LQ associative searches          : {c['lq.searches_assoc']}")
    print(f"    cycles                           : {result.cycles}")
    print(f"    all {result.committed} instructions committed correctly")


def main() -> None:
    print(__doc__)
    print("The premature load issues while the store's address is still")
    print("being divided; when the store finally resolves, the damage is")
    print("already architectural unless the checker intervenes.\n")
    run(SchemeConfig(kind="conventional"))
    print()
    run(SchemeConfig(kind="dmdc"))
    print()
    run(SchemeConfig(kind="dmdc", checking_queue_entries=8))


if __name__ == "__main__":
    main()
