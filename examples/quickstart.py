#!/usr/bin/env python3
"""Quickstart: conventional LQ vs DMDC on one workload.

Runs the same synthetic benchmark under the paper's baseline (associative
load queue) and under DMDC on machine config2, then prints performance,
filtering, and energy side by side — the paper's headline claim in one
screen.

Usage::

    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro.api import CONFIG2, EnergyModel, compare, format_table, get_workload


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    workload = get_workload(workload_name)

    print(f"Running {workload_name} ({workload.group}) for {budget} instructions "
          f"on {CONFIG2.name} ...")
    report = compare(workload_name, scheme="dmdc", instructions=budget)
    baseline, dmdc = report.baseline, report.candidate

    model = EnergyModel(CONFIG2)
    e_base = model.evaluate(baseline)
    e_dmdc = model.evaluate(dmdc)

    rows = [
        ["IPC", f"{baseline.ipc:.2f}", f"{dmdc.ipc:.2f}"],
        ["cycles", baseline.cycles, dmdc.cycles],
        ["LQ associative searches", baseline.counters["lq.searches_assoc"],
         dmdc.counters["lq.searches_assoc"]],
        ["stores classified safe", "-", f"{dmdc.safe_store_fraction:.1%}"],
        ["safe loads", f"{baseline.safe_load_fraction:.1%}", f"{dmdc.safe_load_fraction:.1%}"],
        ["replays", baseline.counters["replays"], dmdc.counters["replays"]],
        ["cycles in checking mode", "-", f"{dmdc.checking_cycle_fraction:.1%}"],
        ["LQ energy (abstract units)", f"{e_base.lq:.0f}", f"{e_dmdc.lq:.0f}"],
        ["total core energy", f"{e_base.total:.0f}", f"{e_dmdc.total:.0f}"],
    ]
    print(format_table(["metric", "conventional", "DMDC"], rows))
    print()
    print(f"LQ energy savings:        {report.lq_savings:.1%}")
    print(f"Processor-wide savings:   {report.net_savings:.1%}")
    print(f"Slowdown:                 {report.slowdown:+.2%}")


if __name__ == "__main__":
    main()
