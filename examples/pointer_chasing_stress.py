#!/usr/bin/env python3
"""Stress scenario: a pointer-chasing, alias-heavy workload (mcf-like).

Pointer codes are the worst case for age-based filtering: store addresses
resolve late (they come from loads), so more stores are unsafe, checking
windows are longer, and more false replays occur.  This example builds a
custom :class:`WorkloadSpec` far nastier than anything in SPEC and shows
how each scheme copes.
"""

import sys

from repro.api import WorkloadSpec, format_table, run


def make_stress_workload() -> WorkloadSpec:
    """An adversarial pointer chaser with frequent genuine aliasing."""
    return WorkloadSpec(
        name="chase-stress",
        group="INT",
        load_fraction=0.32,
        store_fraction=0.14,
        working_set_kb=4096,
        hot_fraction=0.6,
        pattern_weights={"stream": 0.05, "strided": 0.05, "random": 0.4, "chase": 0.5},
        store_addr_dep_load=0.35,      # pointer stores everywhere
        store_addr_dep_alu=0.4,
        conflict_per_kinstr=2.0,       # real violations well above SPEC rates
        rmw_fraction=0.2,
        branch_bias=0.85,
        seed=97,
    )


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    workload = make_stress_workload()
    schemes = ("conventional", "yla-regs8", "dmdc", "dmdc-local")
    rows = []
    base_cycles = None
    for scheme in schemes:
        result = run(workload, scheme=scheme, instructions=budget)
        if base_cycles is None:
            base_cycles = result.cycles
        rows.append([
            scheme,
            f"{result.ipc:.2f}",
            f"{result.cycles / base_cycles - 1:+.2%}",
            result.counters["groundtruth.violations"],
            result.counters["replays"],
            f"{result.safe_store_fraction:.1%}",
            f"{result.checking_cycle_fraction:.1%}",
            f"{result.mean_window_instrs:.0f}" if result.window_instrs.count else "-",
        ])
    print(format_table(
        ["scheme", "IPC", "slowdown", "true violations", "replays",
         "stores safe", "checking cycles", "window size"],
        rows,
        title=f"Pointer-chasing stress test ({budget} instructions)",
    ))
    print("\nEven here every scheme catches every true violation; DMDC pays")
    print("with a few extra (false) replays and longer checking windows.")


if __name__ == "__main__":
    main()
