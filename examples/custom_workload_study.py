#!/usr/bin/env python3
"""Build a custom workload and analyse a scheme sweep over it.

Shows the full user-facing loop: define a :class:`WorkloadSpec`, sweep a
parameter (here: how often store addresses depend on loads — "pointer
intensity"), run several schemes, and use :mod:`repro.analysis` to
compare them.  The output demonstrates the paper's central sensitivity:
the later store addresses resolve, the more the conventional LQ gets
searched — and the more DMDC's filtering matters.
"""

import sys

from repro import CONFIG2, SchemeConfig
from repro.analysis import compare_results, per_workload_table, speedup_summary
from repro.sim.runner import run_workload
from repro.stats.report import format_table
from repro.workloads import SyntheticWorkload, WorkloadSpec


def sweep_pointer_intensity(budget: int):
    """One workload per pointer-intensity level, run under two schemes."""
    levels = (0.0, 0.05, 0.15, 0.30)
    base_results, dmdc_results = {}, {}
    dmdc_cfg = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
    for level in levels:
        spec = WorkloadSpec(
            name=f"ptr-{int(100 * level):02d}",
            group="INT",
            store_addr_dep_load=level,
            pattern_weights={"stream": 0.2, "strided": 0.1, "random": 0.4,
                             "chase": 0.3},
            seed=101,
        )
        workload = SyntheticWorkload(spec)
        base_results[spec.name] = run_workload(CONFIG2, workload,
                                               max_instructions=budget)
        dmdc_results[spec.name] = run_workload(dmdc_cfg, workload,
                                               max_instructions=budget)
    return base_results, dmdc_results


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    base, dmdc = sweep_pointer_intensity(budget)

    print(per_workload_table(
        dmdc,
        title="DMDC under rising pointer intensity (store addresses from loads)",
    ))
    print()

    rows = []
    for name in sorted(base):
        b, d = base[name], dmdc[name]
        rows.append([
            name,
            b.counters["lq.searches_assoc"],
            f"{d.safe_store_fraction:.1%}",
            f"{d.checking_cycle_fraction:.1%}",
            f"{d.false_replays_per_minstr:.0f}",
        ])
    print(format_table(
        ["workload", "baseline LQ searches", "DMDC stores safe",
         "checking cycles", "false replays/Minstr"],
        rows,
        title="Pointer intensity drives everything the paper measures",
    ))
    print()
    speedups = speedup_summary(base, dmdc)
    for group, s in speedups.items():
        print(f"geomean DMDC speedup vs baseline ({group}): {s:.3f}x")
    worst = min(compare_results(base, dmdc, lambda r: float(r.cycles)),
                key=lambda c: c.baseline / max(c.candidate, 1))
    print(f"largest slowdown: {worst.workload} ({worst.delta_pct:+.2f}% cycles)")


if __name__ == "__main__":
    main()
