#!/usr/bin/env python3
"""Build a custom workload and analyse a scheme sweep over it.

Shows the full user-facing loop: define a :class:`WorkloadSpec`, sweep a
parameter (here: how often store addresses depend on loads — "pointer
intensity"), run several schemes through :mod:`repro.api`, and use the
analysis helpers to compare them.  The output demonstrates the paper's
central sensitivity: the later store addresses resolve, the more the
conventional LQ gets searched — and the more DMDC's filtering matters.
"""

import sys

from repro.api import (
    WorkloadSpec,
    compare_results,
    format_table,
    per_workload_table,
    speedup_summary,
    sweep,
)


def sweep_pointer_intensity(budget: int):
    """One workload per pointer-intensity level, run under two schemes."""
    levels = (0.0, 0.05, 0.15, 0.30)
    workloads = [
        WorkloadSpec(
            name=f"ptr-{int(100 * level):02d}",
            group="INT",
            store_addr_dep_load=level,
            pattern_weights={"stream": 0.2, "strided": 0.1, "random": 0.4,
                             "chase": 0.3},
            seed=101,
        )
        for level in levels
    ]
    grid = sweep(workloads, schemes=("conventional", "dmdc"),
                 instructions=budget)
    print(f"swept {grid.stats['unique']} design points "
          f"({grid.stats['executed']} simulated, "
          f"hit rate {grid.stats['hit_rate']:.0%})\n")
    print(grid.table())
    print()
    return grid["conventional"], grid["dmdc"]


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    base, dmdc = sweep_pointer_intensity(budget)

    print(per_workload_table(
        dmdc,
        title="DMDC under rising pointer intensity (store addresses from loads)",
    ))
    print()

    rows = []
    for name in sorted(base):
        b, d = base[name], dmdc[name]
        rows.append([
            name,
            b.counters["lq.searches_assoc"],
            f"{d.safe_store_fraction:.1%}",
            f"{d.checking_cycle_fraction:.1%}",
            f"{d.false_replays_per_minstr:.0f}",
        ])
    print(format_table(
        ["workload", "baseline LQ searches", "DMDC stores safe",
         "checking cycles", "false replays/Minstr"],
        rows,
        title="Pointer intensity drives everything the paper measures",
    ))
    print()
    speedups = speedup_summary(base, dmdc)
    for group, s in speedups.items():
        print(f"geomean DMDC speedup vs baseline ({group}): {s:.3f}x")
    worst = min(compare_results(base, dmdc, lambda r: float(r.cycles)),
                key=lambda c: c.baseline / max(c.candidate, 1))
    print(f"largest slowdown: {worst.workload} ({worst.delta_pct:+.2f}% cycles)")


if __name__ == "__main__":
    main()
