"""Table 5 -- false-replay taxonomy under local DMDC (config2).

Expected shape: fewer replays than Table 3, mostly out of the
merged-window (Y) categories.
"""

from repro.experiments.registry import run_experiment


def test_table5(run_once, record_experiment):
    data, text = run_once(run_experiment, "table5")
    assert data["rows"], "experiment produced no rows"
    record_experiment("table5", text)
