"""Section 6.2.3 -- hash table vs associative checking queue.

Expected shape: small queues trade hash conflicts for overflow replays;
a ~16-entry queue roughly matches a 2K-entry table.
"""

from repro.experiments.registry import run_experiment


def test_checking_queue(run_once, record_experiment):
    data, text = run_once(run_experiment, "checking_queue")
    assert data["rows"], "experiment produced no rows"
    record_experiment("checking_queue", text)
