"""Section 7 -- DMDC vs the related-work design space.

Expected shape: DMDC's LQ-functionality energy is the lowest; Garg's
age-hash table sits in between (unfiltered wide-entry traffic); naive
value-based checking trades the LQ for a cache re-access per load.
"""

from repro.experiments.registry import run_experiment


def test_related_work(run_once, record_experiment):
    data, text = run_once(run_experiment, "related_work")
    assert data["rows"], "experiment produced no rows"
    record_experiment("related_work", text)
