"""Figure 3 -- YLA filtering vs counting Bloom filters (32-1024 entries, H0).

Expected shape: one YLA register rivals even large Bloom filters;
8 registers dominate everywhere (age beats address).
"""

from repro.experiments.registry import run_experiment


def test_fig3(run_once, record_experiment):
    data, text = run_once(run_experiment, "fig3")
    assert data["rows"], "experiment produced no rows"
    record_experiment("fig3", text)
