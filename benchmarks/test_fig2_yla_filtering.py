"""Figure 2 -- percentage of LQ searches filtered by 1-16 YLA registers,
quad-word vs cache-line interleaving.

Expected shape: monotonic rise with register count; quad-word beats
cache-line; FP above INT; ~95-98% filtered at 8 quad-word registers.
"""

from repro.experiments.registry import run_experiment


def test_fig2(run_once, record_experiment):
    data, text = run_once(run_experiment, "fig2")
    assert data["rows"], "experiment produced no rows"
    record_experiment("fig2", text)
