"""Extension -- store-set dependence prediction on top of DMDC.

Expected shape: negligible effect at suite violation rates (validating the
paper's decision not to model prediction); large true-replay suppression
on the engineered alias-heavy stress workload.
"""

from repro.experiments.registry import run_experiment


def test_ablation_storesets(run_once, record_experiment):
    data, text = run_once(run_experiment, "ablation_storesets")
    assert data["rows"], "experiment produced no rows"
    record_experiment("ablation_storesets", text)
