"""Section 6.1 -- LQ and processor-wide energy effect of YLA filtering alone.

Expected shape: ~32% LQ energy savings, ~1-2% processor-wide, no slowdown.
"""

from repro.experiments.registry import run_experiment


def test_yla_energy(run_once, record_experiment):
    data, text = run_once(run_experiment, "yla_energy")
    assert data["rows"], "experiment produced no rows"
    record_experiment("yla_energy", text)
