"""Table 3 -- false-replay taxonomy under global DMDC (config2).

Expected shape: address-match (timing-approximation) replays dominate;
hash conflicts are the minority; INT rates exceed FP.
"""

from repro.experiments.registry import run_experiment


def test_table3(run_once, record_experiment):
    data, text = run_once(run_experiment, "table3")
    assert data["rows"], "experiment produced no rows"
    record_experiment("table3", text)
