"""Ablation -- checking-table size sweep under global DMDC.

Expected shape: false replays fall as the table grows but saturate around
the paper's 2K entries, because hash conflicts are not the dominant
replay cause (the timing approximation is).
"""

from repro.experiments.registry import run_experiment


def test_ablation_table_size(run_once, record_experiment):
    data, text = run_once(run_experiment, "ablation_table_size")
    assert data["rows"], "experiment produced no rows"
    record_experiment("ablation_table_size", text)
