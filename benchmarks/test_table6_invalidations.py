"""Table 6 -- coherent DMDC under injected invalidations
(0/1/10/100 per 1000 cycles).

Expected shape: graceful degradation up to 10/1000 cycles; visible
stress at 100 but slowdown still near 1%.
"""

from repro.experiments.registry import run_experiment


def test_table6(run_once, record_experiment):
    data, text = run_once(run_experiment, "table6")
    assert data["rows"], "experiment produced no rows"
    record_experiment("table6", text)
