"""Ablation -- wrong-path load corruption of YLA registers.

Expected shape: filtering effectiveness degrades monotonically with
wrong-path intensity, more steeply for INT (more mispredictions), showing
why the paper's reset-on-recovery remedy is needed.
"""

from repro.experiments.registry import run_experiment


def test_ablation_wrongpath(run_once, record_experiment):
    data, text = run_once(run_experiment, "ablation_wrongpath")
    assert data["rows"], "experiment produced no rows"
    record_experiment("ablation_wrongpath", text)
