"""Section 3 -- SQ-search filtering by an oldest-store-age register.

Expected shape: a measurable fraction of loads skip the SQ search (the
paper reports ~20%; this model sees less because its SQ rarely empties).
"""

from repro.experiments.registry import run_experiment


def test_sq_filter(run_once, record_experiment):
    data, text = run_once(run_experiment, "sq_filter")
    assert data["rows"], "experiment produced no rows"
    record_experiment("sq_filter", text)
