"""Benchmark harness support.

Each benchmark regenerates one table/figure of the paper via the
corresponding :mod:`repro.experiments` module, timed by pytest-benchmark
(single round — these are full experiment sweeps, not microbenchmarks).
Rendered tables are printed and archived under ``benchmarks/results/`` so
``pytest benchmarks/ --benchmark-only`` leaves the reproduced artifacts on
disk.

Scaling knobs (environment):

* ``REPRO_INSTRUCTIONS``       instructions per simulation (default 12000)
* ``REPRO_WORKLOADS_PER_GROUP`` suite subset size (default: all 26)
* ``REPRO_PARALLEL=0``          disable the process pool
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_experiment(capsys):
    """Print and archive one experiment's rendered table."""

    def _record(exp_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
