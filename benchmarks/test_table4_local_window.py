"""Table 4 -- checking-window statistics under local DMDC (config2).

Expected shape: windows noticeably shorter than Table 2 (global).
"""

from repro.experiments.registry import run_experiment


def test_table4(run_once, record_experiment):
    data, text = run_once(run_experiment, "table4")
    assert data["rows"], "experiment produced no rows"
    record_experiment("table4", text)
