"""Figure 5 -- slowdown of global vs local DMDC across configurations.

Expected shape: both variants within ~1% mean slowdown; the local
variant improves the worst case.
"""

from repro.experiments.registry import run_experiment


def test_fig5(run_once, record_experiment):
    data, text = run_once(run_experiment, "fig5")
    assert data["rows"], "experiment produced no rows"
    record_experiment("fig5", text)
