"""Section 6.2.2 -- safe-load fraction and its effect on false replays.

Expected shape: a large safe-load majority; disabling the optimisation
multiplies false replays.
"""

from repro.experiments.registry import run_experiment


def test_safe_loads(run_once, record_experiment):
    data, text = run_once(run_experiment, "safe_loads")
    assert data["rows"], "experiment produced no rows"
    record_experiment("safe_loads", text)
