"""Table 2 -- checking-window statistics under global DMDC (config2).

Expected shape: windows of tens of instructions, roughly a quarter of
which are loads; INT spends more cycles in checking mode than FP.
"""

from repro.experiments.registry import run_experiment


def test_table2(run_once, record_experiment):
    data, text = run_once(run_experiment, "table2")
    assert data["rows"], "experiment produced no rows"
    record_experiment("table2", text)
