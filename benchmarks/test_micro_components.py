"""Microbenchmarks of the paper's hardware-structure models.

These time the primitive operations the architectural argument is about:
a YLA compare (the filter), a checking-table index (DMDC's check), a
bloom probe (the rival filter), and a conventional LQ CAM search (what
they all replace).  They also document simulator throughput.
"""

import pytest

from repro.backend.dyninst import DynInstr
from repro.core.bloom import CountingBloomFilter
from repro.core.checking_table import CheckingTable
from repro.core.yla import YlaFile
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.lsq.queues import LoadQueue
from repro.sim.config import small_config
from repro.sim.processor import Processor
from repro.workloads import get_workload

ADDRS = [0x1000_0000 + 8 * i for i in range(256)]


def test_yla_store_check(benchmark):
    yla = YlaFile(8)
    for i, addr in enumerate(ADDRS):
        yla.observe_load_issue(addr, i)

    def probe():
        for i, addr in enumerate(ADDRS):
            yla.store_is_safe(addr, i)

    benchmark(probe)


def test_checking_table_load_check(benchmark):
    table = CheckingTable(2048)
    for addr in ADDRS[::4]:
        table.mark_store(addr, 8)

    def probe():
        for addr in ADDRS:
            table.check_load(addr, 8)

    benchmark(probe)


def test_bloom_probe(benchmark):
    bloom = CountingBloomFilter(1024)
    for addr in ADDRS[::2]:
        bloom.insert(addr)

    def probe():
        for addr in ADDRS:
            bloom.may_contain(addr)

    benchmark(probe)


def test_lq_associative_search(benchmark):
    lq = LoadQueue(96)
    for i, addr in enumerate(ADDRS[:90]):
        uop = MicroOp(0x100, InstrClass.LOAD, mem_addr=addr, mem_size=8, dst=1)
        load = DynInstr(uop, i, i, False)
        load.issue_cycle = 1
        lq.allocate(load)
    store_uop = MicroOp(0x200, InstrClass.STORE, mem_addr=ADDRS[45], mem_size=8)
    store = DynInstr(store_uop, 3, 3, False)

    def probe():
        for _ in range(64):
            lq.search_younger_issued(store)

    benchmark(probe)


@pytest.mark.parametrize("scheme", ["conventional", "dmdc"])
def test_simulator_throughput(benchmark, scheme):
    """End-to-end simulated instructions per wall-clock benchmark round."""
    from repro.sim.config import SchemeConfig

    trace = get_workload("gzip").generate(4000)
    config = small_config().with_scheme(SchemeConfig(kind=scheme))

    def simulate():
        Processor(config, trace).run(3000)

    benchmark.pedantic(simulate, rounds=3, iterations=1, warmup_rounds=0)
