"""Figure 4 -- DMDC main results: LQ energy savings, slowdown, and net
processor-wide savings across config1/2/3.

Expected shape: ~90-95% LQ savings; slowdown well under 1%; net savings
growing from ~3% (config1) to ~8% (config3).
"""

from repro.experiments.registry import run_experiment


def test_fig4(run_once, record_experiment):
    data, text = run_once(run_experiment, "fig4")
    assert data["rows"], "experiment produced no rows"
    record_experiment("fig4", text)
