"""Tests for post-run analysis helpers."""

import pytest

from repro.analysis import (
    Comparison,
    compare_results,
    counter_diff,
    outliers,
    per_workload_table,
    speedup_summary,
)
from repro.sim.result import SimulationResult
from repro.stats.counters import CounterSet


def mk(name, group="INT", cycles=1000, committed=500, **counters):
    c = CounterSet()
    for key, value in counters.items():
        c[key.replace("__", ".")] = value
    return SimulationResult(name, group, "cfg", "scheme", cycles, committed, c)


class TestComparison:
    def test_ratio_and_delta(self):
        c = Comparison("w", baseline=200.0, candidate=150.0)
        assert c.ratio == pytest.approx(0.75)
        assert c.delta_pct == pytest.approx(-25.0)

    def test_zero_baseline(self):
        assert Comparison("w", 0.0, 5.0).ratio == float("inf")

    def test_compare_results_intersects(self):
        base = {"a": mk("a", cycles=100), "b": mk("b", cycles=100)}
        cand = {"a": mk("a", cycles=90)}
        comps = compare_results(base, cand, lambda r: float(r.cycles))
        assert len(comps) == 1 and comps[0].workload == "a"
        assert comps[0].ratio == pytest.approx(0.9)


class TestSpeedup:
    def test_geomean_per_group(self):
        base = {"a": mk("a", cycles=100), "b": mk("b", cycles=400),
                "f": mk("f", group="FP", cycles=100)}
        cand = {"a": mk("a", cycles=50), "b": mk("b", cycles=200),
                "f": mk("f", group="FP", cycles=100)}
        out = speedup_summary(base, cand)
        assert out["INT"] == pytest.approx(2.0)
        assert out["FP"] == pytest.approx(1.0)


class TestCounterDiff:
    def test_reports_large_changes_sorted(self):
        a = mk("a", x=100, y=100, z=0)
        b = mk("a", x=101, y=300, z=50)
        rows = counter_diff(a, b, min_relative=0.05)
        names = [r[0] for r in rows]
        assert "y" in names and "z" in names and "x" not in names
        assert names[0] == "z"  # 100% relative change sorts first

    def test_identical_runs_empty(self):
        a = mk("a", x=10)
        assert counter_diff(a, a) == []


class TestTables:
    def test_per_workload_table_renders(self):
        results = {"gzip": mk("gzip", commit__loads=10),
                   "swim": mk("swim", group="FP")}
        text = per_workload_table(results)
        assert "gzip" in text and "swim" in text and "IPC" in text

    def test_custom_metrics(self):
        results = {"a": mk("a", cycles=123)}
        text = per_workload_table(results, metrics={"cyc": lambda r: r.cycles})
        assert "123.00" in text and "cyc" in text


class TestOutliers:
    def test_high_and_low(self):
        results = {f"w{i}": mk(f"w{i}", cycles=100 * (i + 1)) for i in range(6)}
        out = outliers(results, lambda r: float(r.cycles), k=2)
        assert [n for n, _ in out["lowest"]] == ["w0", "w1"]
        assert [n for n, _ in out["highest"]] == ["w5", "w4"]
