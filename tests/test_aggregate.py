"""Unit tests for group aggregation and table rendering."""

import pytest

from repro.stats.aggregate import GroupSummary, geometric_mean, summarize
from repro.stats.report import format_percent, format_table


class TestSummarize:
    def test_groups_split(self):
        values = {"a": 1.0, "b": 3.0, "c": 10.0}
        groups = {"a": "INT", "b": "INT", "c": "FP"}
        out = summarize(values, groups)
        assert out["INT"].mean == 2.0
        assert out["INT"].min == 1.0 and out["INT"].max == 3.0
        assert out["FP"].count == 1

    def test_unknown_workloads_ignored(self):
        out = summarize({"a": 1.0, "zzz": 9.0}, {"a": "INT"})
        assert set(out) == {"INT"}

    def test_str(self):
        s = GroupSummary("INT", 1.0, 0.5, 1.5, 3)
        assert "INT" in str(s) and "n=3" in str(s)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # all rows equal width
        assert len({len(l) for l in lines[1:]}) <= 2

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_format_percent(self):
        assert format_percent(0.5) == "50.0%"
        assert format_percent(0.1234, digits=2) == "12.34%"
