"""Unit tests for conventional/filtered dependence-checking schemes."""

import pytest

from repro.backend.dyninst import DynInstr
from repro.core.schemes.conventional import (
    BloomFilteredScheme,
    ConventionalScheme,
    YlaFilteredScheme,
)
from repro.errors import SimulationError
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.lsq.queues import LoadQueue, StoreQueue


def mk_store(seq, addr, size=8):
    uop = MicroOp(0x100, InstrClass.STORE, mem_addr=addr, mem_size=size, data_src=1)
    d = DynInstr(uop, seq, seq, False)
    d.resolve_cycle = 1
    return d


def mk_load(seq, addr, size=8, issued=True):
    uop = MicroOp(0x200, InstrClass.LOAD, mem_addr=addr, mem_size=size, dst=2)
    d = DynInstr(uop, seq, seq, False)
    if issued:
        d.issue_cycle = 1
    return d


def attach(scheme):
    lq, sq = LoadQueue(16), StoreQueue(8)
    scheme.attach(lq, sq, 128)
    return lq, sq


class TestConventional:
    def test_unattached_raises(self):
        with pytest.raises(SimulationError):
            ConventionalScheme().on_store_resolve(mk_store(1, 0), 0)

    def test_always_searches(self):
        s = ConventionalScheme()
        lq, _ = attach(s)
        s.on_store_resolve(mk_store(1, 0x100), 0)
        assert lq.searches == 1 and lq.searches_filtered == 0

    def test_detects_premature_load(self):
        s = ConventionalScheme()
        lq, _ = attach(s)
        victim = mk_load(5, 0x100)
        lq.allocate(victim)
        assert s.on_store_resolve(mk_store(2, 0x100), 0) is victim
        assert s.stats["replay.execution_time"] == 1

    def test_no_coherence_hooks_by_default(self):
        s = ConventionalScheme(coherence=False)
        lq, _ = attach(s)
        s.on_invalidation(0x1000, 128, 0, 0)
        assert lq.inv_searches == 0


class TestConventionalCoherence:
    def test_invalidation_marks_issued_loads(self):
        s = ConventionalScheme(coherence=True)
        lq, _ = attach(s)
        in_line = mk_load(5, 0x1040)
        other = mk_load(6, 0x2000)
        lq.allocate(in_line)
        lq.allocate(other)
        s.on_invalidation(0x1000, 128, 0, 0)
        assert in_line.inv_marked and not other.inv_marked

    def test_load_issue_replays_younger_marked_same_line(self):
        s = ConventionalScheme(coherence=True)
        lq, _ = attach(s)
        younger = mk_load(7, 0x1040)
        younger.inv_marked = True
        lq.allocate(younger)
        victim = s.on_load_issue(mk_load(3, 0x1000), 0)
        assert victim is younger
        assert s.stats["replay.coherence"] == 1

    def test_no_replay_for_unmarked(self):
        s = ConventionalScheme(coherence=True)
        lq, _ = attach(s)
        lq.allocate(mk_load(7, 0x1040))
        assert s.on_load_issue(mk_load(3, 0x1000), 0) is None


class TestYlaFiltered:
    def test_filters_when_no_younger_load(self):
        s = YlaFilteredScheme(num_registers=8)
        lq, _ = attach(s)
        s.on_load_issue(mk_load(3, 0x100), 0)
        s.on_store_resolve(mk_store(5, 0x100), 0)   # store younger: safe
        assert lq.searches == 0 and lq.searches_filtered == 1
        assert s.stats["stores.safe"] == 1

    def test_searches_when_younger_load_issued(self):
        s = YlaFilteredScheme(num_registers=8)
        lq, _ = attach(s)
        s.on_load_issue(mk_load(9, 0x100), 0)
        s.on_store_resolve(mk_store(5, 0x100), 0)
        assert lq.searches == 1

    def test_wrongpath_corruption_and_recovery(self):
        s = YlaFilteredScheme(num_registers=1)
        lq, _ = attach(s)
        s.on_wrongpath_load(age=50, addr=0x100)
        s.on_store_resolve(mk_store(10, 0x100), 0)
        assert lq.searches == 1  # corrupted: conservative search
        s.on_recovery(last_kept_seq=10)
        s.on_store_resolve(mk_store(11, 0x100), 0)
        assert lq.searches_filtered == 1  # repaired

    def test_squash_rolls_back(self):
        s = YlaFilteredScheme(num_registers=1)
        attach(s)
        s.on_load_issue(mk_load(30, 0x100), 0)
        s.on_squash(last_kept_seq=20, squashed_loads=[])
        assert s.yla.youngest_for(0x100) == 20

    def test_collect_exports_counters(self):
        s = YlaFilteredScheme()
        attach(s)
        s.on_load_issue(mk_load(1, 0), 0)
        s.collect()
        assert s.stats["yla.updates"] == 1


class TestBloomFiltered:
    def test_filters_unknown_address(self):
        s = BloomFilteredScheme(entries=256)
        lq, _ = attach(s)
        s.on_load_issue(mk_load(3, 0x100), 0)
        s.on_store_resolve(mk_store(5, 0x9990 * 8), 0)
        assert lq.searches_filtered == 1

    def test_searches_on_aliasing_load_even_if_older(self):
        """The BF has no age information: an *older* issued load to the
        address forces the search (the weakness Figure 3 quantifies)."""
        s = BloomFilteredScheme(entries=256)
        lq, _ = attach(s)
        s.on_load_issue(mk_load(3, 0x100), 0)
        s.on_store_resolve(mk_store(5, 0x100), 0)
        assert lq.searches == 1

    def test_commit_removes_from_filter(self):
        s = BloomFilteredScheme(entries=256)
        lq, _ = attach(s)
        load = mk_load(3, 0x100)
        s.on_load_issue(load, 0)
        s.on_commit(load, 1)
        s.on_store_resolve(mk_store(5, 0x100), 0)
        assert lq.searches_filtered == 1

    def test_squash_removes_issued_loads(self):
        s = BloomFilteredScheme(entries=256)
        lq, _ = attach(s)
        load = mk_load(9, 0x100)
        s.on_load_issue(load, 0)
        s.on_squash(5, [load])
        s.on_store_resolve(mk_store(6, 0x100), 0)
        assert lq.searches_filtered == 1

    def test_wrongpath_phantoms_removed_at_recovery(self):
        s = BloomFilteredScheme(entries=256)
        lq, _ = attach(s)
        s.on_wrongpath_load(50, 0x100)
        s.on_recovery(10)
        s.on_store_resolve(mk_store(11, 0x100), 0)
        assert lq.searches_filtered == 1

    def test_collect(self):
        s = BloomFilteredScheme(entries=256)
        attach(s)
        s.on_load_issue(mk_load(1, 0), 0)
        s.collect()
        assert s.stats["bloom.inserts"] == 1
        assert s.stats["bloom.entries"] == 256
