"""GridSpec expansion semantics (PR: design-space autopilot).

The contract under test: expansion is **deterministic** (declaration
order, last axis fastest), **canonical** (every point renders through
the one codec, so grid identity is content-address identity), and
**accounted** (raw product = kept + excluded + collapsed, with baselines
injected once per machine slice at the tail).
"""

import pytest

from repro.sim.config import CONFIG2, SchemeConfig
from repro.sweeps import (
    PRESETS,
    GridError,
    GridSpec,
    get_preset,
    normalize_point,
    point_for_request,
)

BUDGET = 600


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(GridError, match="unknown axis"):
            GridSpec(axes={"speed": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(GridError, match="non-empty"):
            GridSpec(axes={"workload": []})

    def test_no_axes_rejected(self):
        with pytest.raises(GridError, match="at least one axis"):
            GridSpec(axes={})

    def test_unknown_base_field_rejected(self):
        with pytest.raises(GridError, match="unknown base field"):
            GridSpec(axes={"workload": ["gzip"]}, base={"speed": 9})

    def test_bad_baseline_label_fails_fast(self):
        with pytest.raises(Exception):
            GridSpec(axes={"workload": ["gzip"]}, baseline="magic")

    def test_missing_workload_caught_at_expand(self):
        spec = GridSpec(axes={"scheme": ["dmdc"]},
                        base={"instructions": BUDGET})
        with pytest.raises(GridError, match="workload"):
            spec.expand()

    def test_bad_scheme_knob_value_rejected(self):
        spec = GridSpec(axes={"workload": ["gzip"], "table": [0]},
                        base={"scheme": "dmdc", "instructions": BUDGET})
        with pytest.raises(GridError, match="positive int"):
            spec.expand()


class TestExpansion:
    def test_declaration_order_last_axis_fastest(self):
        spec = GridSpec(
            axes={"scheme": ["conventional", "dmdc"],
                  "workload": ["gzip", "mcf"]},
            base={"instructions": BUDGET})
        expansion = spec.expand()
        coords = [(p["scheme"], p["workload"]) for p in expansion.points]
        assert coords == [("conventional", "gzip"), ("conventional", "mcf"),
                          ("dmdc", "gzip"), ("dmdc", "mcf")]
        assert expansion.raw_points == 4
        assert expansion.excluded == expansion.collapsed == 0

    def test_scheme_knob_axes_land_in_the_label(self):
        spec = GridSpec(
            axes={"table": [512, 1024], "regs": [2]},
            base={"scheme": "dmdc", "workload": "gzip",
                  "instructions": BUDGET})
        labels = [p["scheme"] for p in spec.expand().points]
        assert labels == ["dmdc-table512-regs2", "dmdc-table1024-regs2"]

    def test_machine_field_axes_become_overrides(self):
        spec = GridSpec(
            axes={"width": [4, 8, 16]},
            base={"workload": "gzip", "instructions": BUDGET})
        expansion = spec.expand()
        # width=8 IS config2's default, so the canonical (minimal) point
        # drops the no-op override.
        assert [p.get("overrides") for p in expansion.points] == [
            {"width": 4}, None, {"width": 16}]
        assert [r.config.width for r in expansion.requests] == [4, 8, 16]

    def test_duplicate_points_collapse_by_content_address(self):
        spec = GridSpec(
            axes={"workload": ["gzip", "gzip"]},
            base={"instructions": BUDGET})
        expansion = spec.expand()
        assert len(expansion) == 1
        assert expansion.raw_points == 2
        assert expansion.collapsed == 1

    def test_include_and_exclude_predicates_prune(self):
        spec = GridSpec(
            axes={"workload": ["gzip", "mcf"], "width": [4, 8]},
            base={"instructions": BUDGET},
            include=lambda ctx: ctx["workload"] == "gzip",
            exclude=lambda ctx: ctx["width"] == 8)
        expansion = spec.expand()
        assert len(expansion) == 1
        assert expansion.excluded == 3
        point = expansion.points[0]
        assert point["workload"] == "gzip"
        assert point["overrides"] == {"width": 4}

    def test_baseline_injected_once_per_machine_slice(self):
        spec = GridSpec(
            axes={"scheme": ["dmdc", "yla"], "workload": ["gzip", "mcf"]},
            base={"instructions": BUDGET},
            baseline="conventional")
        expansion = spec.expand()
        # 4 candidate points + one conventional point per workload slice.
        assert len(expansion) == 6
        assert expansion.baseline_added == 2
        tail = [p["scheme"] for p in expansion.points[-2:]]
        assert tail == ["conventional", "conventional"]

    def test_baseline_already_in_grid_is_not_duplicated(self):
        spec = GridSpec(
            axes={"scheme": ["conventional", "dmdc"], "workload": ["gzip"]},
            base={"instructions": BUDGET},
            baseline="conventional")
        expansion = spec.expand()
        assert len(expansion) == 2
        assert expansion.baseline_added == 0

    def test_every_point_round_trips_through_the_codec(self):
        expansion = get_preset("ci-smoke").expand()
        for point, request, key in zip(expansion.points, expansion.requests,
                                       expansion.keys):
            assert request.cache_key() == key
            assert normalize_point(point).cache_key() == key
            assert point_for_request(request) == point


class TestDigest:
    def test_digest_is_stable(self):
        assert get_preset("ci-smoke").digest() == \
            get_preset("ci-smoke").digest()

    def test_digest_covers_grid_shape(self):
        small = GridSpec(axes={"workload": ["gzip"]},
                         base={"instructions": BUDGET})
        large = GridSpec(axes={"workload": ["gzip", "mcf"]},
                         base={"instructions": BUDGET})
        assert small.digest() != large.digest()

    def test_digest_covers_the_budget(self):
        a = GridSpec(axes={"workload": ["gzip"]},
                     base={"instructions": BUDGET})
        b = GridSpec(axes={"workload": ["gzip"]},
                     base={"instructions": BUDGET + 1})
        assert a.digest() != b.digest()


class TestFromKwargs:
    def test_matches_the_legacy_vocabulary(self):
        spec = GridSpec.from_kwargs(
            ["gzip", "mcf"], schemes=("conventional", "dmdc"),
            instructions=BUDGET, seed=3)
        expansion = spec.expand()
        # Scheme-major, exactly the order legacy callers submitted.
        coords = [(p["scheme"], p["workload"]) for p in expansion.points]
        assert coords == [("conventional", "gzip"), ("conventional", "mcf"),
                          ("dmdc", "gzip"), ("dmdc", "mcf")]
        assert all(p["seed"] == 3 for p in expansion.points)

    def test_scheme_objects_and_default_budget(self):
        scheme = SchemeConfig(kind="dmdc", table_entries=512)
        spec = GridSpec.from_kwargs(["gzip"], schemes=(scheme,))
        expansion = spec.expand()
        assert expansion.points[0]["scheme"] == "dmdc-table512"
        assert expansion.points[0]["instructions"] > 0  # env default applied

    def test_machine_config_decomposes_to_named_plus_overrides(self):
        machine = CONFIG2.with_overrides(lq_size=48)
        spec = GridSpec.from_kwargs(["gzip"], schemes=("conventional",),
                                    config=machine, instructions=BUDGET)
        point = spec.expand().points[0]
        assert point["config"] == "config2"
        assert point["overrides"] == {"lq_size": 48}

    def test_explicit_overrides_win_over_derived_ones(self):
        machine = CONFIG2.with_overrides(lq_size=48)
        spec = GridSpec.from_kwargs(["gzip"], schemes=("conventional",),
                                    config=machine, instructions=BUDGET,
                                    overrides={"lq_size": 16})
        assert spec.expand().points[0]["overrides"] == {"lq_size": 16}


class TestPresets:
    def test_every_preset_expands(self):
        for name in PRESETS:
            expansion = get_preset(name).expand()
            assert len(expansion) > 0, name
            assert expansion.name == name

    def test_demo64_is_the_committed_64_point_grid(self):
        expansion = get_preset("demo64").expand()
        assert expansion.raw_points >= 64
        assert len(expansion) >= 64
        assert expansion.baseline_added > 0  # denominators for the report

    def test_width_scaling_exercises_exclusion(self):
        expansion = get_preset("width-scaling").expand()
        assert expansion.excluded > 0
        for point in expansion.points:
            if point["config"] == "config1":
                assert point.get("overrides", {}).get("width") != 16

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(GridError, match="choices"):
            get_preset("nope")
