"""Golden regression: pinned end-to-end results for fixed seeds.

These tests freeze the *exact* behaviour of the whole stack (workload
generation, pipeline timing, scheme decisions) for a few configurations.
Any change to the model that alters timing shows up here first — update
the goldens deliberately, never accidentally.

The pinned values are structural (committed counts match budgets, replays
detected where engineered) plus cross-run determinism, and loose bands on
the headline paper metrics so legitimate re-calibration doesn't require
touching dozens of numbers.
"""

import pytest

from repro.sim.config import CONFIG2, SchemeConfig, small_config
from repro.sim.runner import run_workload
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def gzip_dmdc():
    cfg = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
    return run_workload(cfg, get_workload("gzip"), max_instructions=6000, seed=1)


@pytest.fixture(scope="module")
def gzip_base():
    return run_workload(CONFIG2, get_workload("gzip"), max_instructions=6000, seed=1)


class TestDeterministicGoldens:
    def test_repeatability_is_exact(self, gzip_dmdc):
        cfg = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        again = run_workload(cfg, get_workload("gzip"), max_instructions=6000, seed=1)
        assert again.cycles == gzip_dmdc.cycles
        assert again.counters.as_dict() == gzip_dmdc.counters.as_dict()

    def test_baseline_and_dmdc_commit_identically(self, gzip_base, gzip_dmdc):
        assert gzip_base.committed == gzip_dmdc.committed == 6000
        # Memory behaviour is architecturally identical across schemes.
        assert gzip_base.counters["commit.loads"] == gzip_dmdc.counters["commit.loads"]
        assert gzip_base.counters["commit.stores"] == gzip_dmdc.counters["commit.stores"]


class TestHeadlineBands:
    """Loose bands around the paper's headline numbers for one workload."""

    def test_ipc_band(self, gzip_base):
        assert 0.5 < gzip_base.ipc < 4.0

    def test_dmdc_filtering_band(self, gzip_dmdc):
        assert 0.90 < gzip_dmdc.safe_store_fraction <= 1.0

    def test_safe_load_band(self, gzip_dmdc):
        assert 0.70 < gzip_dmdc.safe_load_fraction <= 1.0

    def test_checking_time_band(self, gzip_dmdc):
        assert gzip_dmdc.checking_cycle_fraction < 0.35

    def test_slowdown_band(self, gzip_base, gzip_dmdc):
        assert abs(gzip_dmdc.cycles / gzip_base.cycles - 1) < 0.05

    def test_branch_predictor_band(self, gzip_base):
        c = gzip_base.counters
        mispredict_rate = c["bpred.mispredicts"] / max(1, c["bpred.lookups"])
        assert 0.005 < mispredict_rate < 0.15

    def test_small_config_gap(self):
        """The small test machine is strictly slower than config2."""
        small = run_workload(small_config(), get_workload("gzip"),
                             max_instructions=3000)
        big = run_workload(CONFIG2, get_workload("gzip"), max_instructions=3000)
        assert small.ipc < big.ipc * 1.05


class TestVariantGoldens:
    """Pinned behaviour for the DMDC variants the paper evaluates."""

    @pytest.fixture(scope="class")
    def gzip_dmdc_local(self):
        cfg = CONFIG2.with_scheme(SchemeConfig(kind="dmdc", local=True))
        return run_workload(cfg, get_workload("gzip"), max_instructions=6000, seed=1)

    @pytest.fixture(scope="class")
    def gzip_dmdc_queue(self):
        cfg = CONFIG2.with_scheme(
            SchemeConfig(kind="dmdc", checking_queue_entries=8))
        return run_workload(cfg, get_workload("gzip"), max_instructions=6000, seed=1)

    def test_local_windows_repeatable_and_complete(self, gzip_dmdc_local):
        cfg = CONFIG2.with_scheme(SchemeConfig(kind="dmdc", local=True))
        again = run_workload(cfg, get_workload("gzip"), max_instructions=6000, seed=1)
        assert gzip_dmdc_local.committed == 6000
        assert again.cycles == gzip_dmdc_local.cycles
        assert again.counters.as_dict() == gzip_dmdc_local.counters.as_dict()

    def test_local_windows_not_longer_than_global(self, gzip_dmdc_local, gzip_dmdc):
        # Section 4.4: local windows end no later than global ones, so the
        # scheme spends at most as much time in checking mode.
        assert (gzip_dmdc_local.counters["checking.cycles_observed"]
                <= gzip_dmdc.counters["checking.cycles_observed"])

    def test_checking_queue_repeatable_and_complete(self, gzip_dmdc_queue):
        cfg = CONFIG2.with_scheme(
            SchemeConfig(kind="dmdc", checking_queue_entries=8))
        again = run_workload(cfg, get_workload("gzip"), max_instructions=6000, seed=1)
        assert gzip_dmdc_queue.committed == 6000
        assert again.cycles == gzip_dmdc_queue.cycles
        assert again.counters.as_dict() == gzip_dmdc_queue.counters.as_dict()

    def test_checking_queue_ipc_band(self, gzip_dmdc_queue, gzip_base):
        # An 8-entry checking queue may overflow (extra replays) but must
        # stay within a loose band of the unconstrained baseline.
        assert abs(gzip_dmdc_queue.cycles / gzip_base.cycles - 1) < 0.10
