"""Tier-1 tests for the shard pool (PR: sharded service backend).

The routing invariant under test: **one content key -> one shard,
always**.  Everything else — shard-local coalescing, atomic cross-shard
sweep admission, per-shard metrics, adaptive Retry-After, and response
bit-identity across shard counts — follows from it.
"""

import threading

import pytest

from repro.exec.engine import EngineStats
from repro.exec.options import EngineOptions
from repro.service import (
    Draining,
    MicroBatcher,
    Saturated,
    ServiceClient,
    ServiceConfig,
    ServiceMetrics,
    Shard,
    ShardPool,
    create_server,
    parse_run_payload,
    shard_for_key,
)

BUDGET = 600


def make_request(seed: int = 1, scheme: str = "conventional",
                 workload: str = "gzip", instructions: int = BUDGET):
    return parse_run_payload({
        "workload": workload, "scheme": scheme,
        "instructions": instructions, "seed": seed,
    })


class StallEngine:
    """Engine stub whose ``run`` blocks until the test opens the gate."""

    def __init__(self, result=None) -> None:
        self.gate = threading.Event()
        self.stats = EngineStats()
        self._result = result

    def run(self, requests):
        assert self.gate.wait(timeout=30.0), "test never opened the gate"
        self.stats.executed += len(requests)
        return [self._result for _ in requests]


def make_stub_pool(count: int, max_queue: int = 4,
                   batch_window: float = 5.0) -> ShardPool:
    """A pool of ``count`` shards over stub engines, built by hand (the
    ``build`` classmethod rightly refuses a shared engine across shards)."""
    shards = []
    for index in range(count):
        engine = StallEngine()
        metrics = ServiceMetrics()
        batcher = MicroBatcher(engine, max_queue=max_queue,
                               batch_window=batch_window, metrics=metrics,
                               name=f"repro-batcher-{index}")
        shards.append(Shard(index, engine, batcher, metrics))
    return ShardPool(shards)


def open_gates_and_close(pool: ShardPool) -> None:
    for shard in pool.shards:
        shard.engine.gate.set()
    pool.close(timeout=5.0)


def seeds_for_shard(pool: ShardPool, index: int, count: int,
                    start: int = 0) -> list:
    """The first ``count`` seeds whose content keys route to shard ``index``."""
    seeds, seed = [], start
    while len(seeds) < count:
        if pool.route(make_request(seed=seed).cache_key()) == index:
            seeds.append(seed)
        seed += 1
    return seeds


class TestRouting:
    def test_shard_for_key_is_deterministic_and_in_range(self):
        keys = [make_request(seed=seed).cache_key() for seed in range(64)]
        for shards in (1, 2, 3, 4, 7):
            placements = [shard_for_key(key, shards) for key in keys]
            assert placements == [shard_for_key(key, shards) for key in keys]
            assert all(0 <= index < shards for index in placements)
        assert all(shard_for_key(key, 1) == 0 for key in keys)
        # 64 uniform sha256 keys over 4 shards: every shard is populated.
        assert set(shard_for_key(key, 4) for key in keys) == {0, 1, 2, 3}

    def test_build_refuses_shared_engine_across_shards(self):
        with pytest.raises(ValueError, match="one shard"):
            ShardPool.build(2, EngineOptions(cache_enabled=False),
                            max_queue=8, max_batch=8, batch_window=0.01,
                            engine=StallEngine())
        with pytest.raises(ValueError, match="positive"):
            ShardPool.build(0, EngineOptions(cache_enabled=False),
                            max_queue=8, max_batch=8, batch_window=0.01)

    def test_coalescing_stays_on_the_home_shard(self):
        pool = make_stub_pool(2)
        try:
            request = make_request(seed=seeds_for_shard(pool, 1, 1)[0])
            home = pool.route(request.cache_key())
            first = pool.submit(request)
            second = pool.submit(request)
            assert first is second
            assert pool.shards[home].metrics.received == 2
            assert pool.shards[home].metrics.coalesced_inflight == 1
            other = pool.shards[1 - home].metrics
            assert other.received == 0
            # The aggregate view folds both shards.
            assert pool.metrics.received == 2
            assert pool.metrics.coalesced_inflight == 1
        finally:
            open_gates_and_close(pool)


class TestSweepAdmission:
    def test_cross_shard_sweep_is_all_or_nothing(self):
        pool = make_stub_pool(2, max_queue=2)
        try:
            # Fill shard 0 to its bound with two distinct in-flight keys.
            shard0_seeds = seeds_for_shard(pool, 0, 3)
            for seed in shard0_seeds[:2]:
                pool.submit(make_request(seed=seed))
            overflow = shard0_seeds[2]
            roomy = seeds_for_shard(pool, 1, 1)[0]
            # One point fits (shard 1 is empty), one does not (shard 0 is
            # full): the whole sweep must bounce with nothing admitted.
            with pytest.raises(Saturated, match="shard 0"):
                pool.submit_many([make_request(seed=overflow),
                                  make_request(seed=roomy)])
            assert pool.shards[1].depth() == (0, 0)
            assert pool.shards[0].metrics.rejected_saturation == 1
            assert pool.shards[1].metrics.rejected_saturation == 1
            # A sweep that coalesces onto in-flight keys still fits.
            tickets = pool.submit_many([make_request(seed=shard0_seeds[0]),
                                        make_request(seed=roomy)])
            assert len(tickets) == 2
        finally:
            open_gates_and_close(pool)

    def test_sweep_tickets_come_back_in_request_order(self):
        pool = make_stub_pool(3, max_queue=8)
        try:
            seeds = [seeds_for_shard(pool, index, 1)[0] for index in (2, 0, 1)]
            requests = [make_request(seed=seed) for seed in seeds]
            tickets = pool.submit_many(requests)
            assert len(tickets) == 3
            # Resubmitting the same points coalesces ticket-for-ticket,
            # proving the order mapping key -> ticket held.
            again = pool.submit_many(requests)
            assert all(a is b for a, b in zip(tickets, again))
        finally:
            open_gates_and_close(pool)

    def test_draining_pool_rejects_everywhere(self):
        pool = make_stub_pool(2)
        for shard in pool.shards:
            shard.engine.gate.set()
        try:
            assert pool.drain(timeout=5.0)
            assert pool.draining
            with pytest.raises(Draining):
                pool.submit(make_request(seed=1))
            with pytest.raises(Draining):
                pool.submit_many([make_request(seed=2), make_request(seed=3)])
        finally:
            pool.close(timeout=5.0)


class TestRetryAfterHint:
    def _pool_with(self, depth, rate):
        pool = make_stub_pool(1)
        pool.depth = lambda: depth
        merged = ServiceMetrics()
        merged.drain_rate = lambda now=None, window=None: rate
        pool.merged_metrics = lambda: merged
        return pool

    def test_empty_queue_hints_the_floor(self):
        pool = self._pool_with((0, 0), 100.0)
        try:
            assert pool.retry_after_hint() == 1
        finally:
            open_gates_and_close(pool)

    def test_no_drain_evidence_hints_the_floor(self):
        pool = self._pool_with((10, 2), 0.0)
        try:
            assert pool.retry_after_hint() == 1
        finally:
            open_gates_and_close(pool)

    def test_hint_is_depth_over_rate_rounded_up(self):
        pool = self._pool_with((7, 3), 2.0)  # 10 points at 2/s -> 5s
        try:
            assert pool.retry_after_hint() == 5
        finally:
            open_gates_and_close(pool)

    def test_hint_clamps_to_the_ceiling(self):
        pool = self._pool_with((1000, 0), 0.5)
        try:
            assert pool.retry_after_hint() == 60
        finally:
            open_gates_and_close(pool)


class TestShardedServer:
    def _start(self, shards: int):
        config = ServiceConfig(
            port=0, batch_window=0.01, max_queue=64,
            request_timeout=60.0, drain_timeout=60.0,
            engine_options=EngineOptions(cache_enabled=False, max_workers=1),
            shards=shards,
            offload=False,  # in-process execution keeps the test fast
        )
        server = create_server(config)
        thread = threading.Thread(target=server.serve_forever,
                                  name="test-serve", daemon=True)
        thread.start()
        client = ServiceClient(port=server.server_address[1], timeout=60.0)
        return server, thread, client

    def _stop(self, server, thread):
        server.shutdown()
        server.batcher.close(timeout=5.0)
        thread.join(timeout=5.0)
        server.server_close()

    def test_metrics_grows_per_shard_blocks(self):
        server, thread, client = self._start(shards=2)
        try:
            client.run("gzip", instructions=BUDGET, seed=1)
            snapshot = client.metrics()
            assert set(snapshot) >= {"service", "batching", "latency",
                                     "engine", "shards"}
            assert [entry["shard"] for entry in snapshot["shards"]] == [0, 1]
            for entry in snapshot["shards"]:
                assert set(entry) >= {"shard", "service", "batching",
                                      "latency", "simulator", "engine"}
            # Aggregate totals equal the per-shard sums.
            assert snapshot["service"]["received"] == sum(
                entry["service"]["received"] for entry in snapshot["shards"])
            assert snapshot["engine"]["executed"] == sum(
                entry["engine"]["executed"] for entry in snapshot["shards"])
        finally:
            self._stop(server, thread)

    def test_accounting_lands_on_the_predicted_shard(self):
        server, thread, client = self._start(shards=2)
        try:
            expected = [0, 0]
            for seed in range(6):
                request = make_request(seed=seed)
                expected[shard_for_key(request.cache_key(), 2)] += 1
                client.run("gzip", instructions=BUDGET, seed=seed)
            snapshot = client.metrics()
            observed = [entry["service"]["received"]
                        for entry in snapshot["shards"]]
            assert observed == expected
            simulated = [entry["simulator"]["runs"]
                         for entry in snapshot["shards"]]
            assert simulated == expected
        finally:
            self._stop(server, thread)

    def test_responses_bit_identical_across_shard_counts(self):
        """The tentpole's correctness bar: sharding must be invisible —
        the same design points answer byte-for-byte the same whether one
        shard or several served them."""
        points = [{"workload": workload, "scheme": scheme,
                   "instructions": BUDGET, "seed": 7}
                  for workload in ("gzip", "mcf")
                  for scheme in ("conventional", "dmdc")]
        by_shards = {}
        for shards in (1, 2):
            server, thread, client = self._start(shards=shards)
            try:
                by_shards[shards] = [client.run_point(point, counters=True)
                                     for point in points]
            finally:
                self._stop(server, thread)
        assert by_shards[1] == by_shards[2]

    def test_sweep_spans_shards_and_preserves_order(self):
        server, thread, client = self._start(shards=2)
        try:
            body = client.sweep(
                points=[{"seed": seed} for seed in range(5)],
                defaults={"workload": "gzip", "instructions": BUDGET},
            )
            assert body["count"] == 5
            assert [point["seed"] for point in body["points"]] == list(range(5))
            snapshot = client.metrics()
            assert sum(entry["service"]["received"]
                       for entry in snapshot["shards"]) == 5
        finally:
            self._stop(server, thread)
