"""Shared fixtures and trace-building helpers for the test suite."""

import pytest

from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.isa.trace import Trace
from repro.sim.config import MachineConfig, SchemeConfig, small_config


class TraceBuilder:
    """Fluent helper for hand-crafting traces in tests.

    Registers 28-31 are never written (always-ready base pointers), so
    ``srcs=(28,)`` means "ready at dispatch".
    """

    def __init__(self, name: str = "crafted", group: str = "INT"):
        self.trace = Trace(name, group=group)
        self._pc = 0x1000

    def _next_pc(self) -> int:
        pc = self._pc
        self._pc += 4
        return pc

    def alu(self, dst=1, srcs=(28,), cls=InstrClass.IALU):
        self.trace.append(MicroOp(self._next_pc(), cls, srcs=tuple(srcs), dst=dst))
        return self

    def load(self, addr, dst=2, srcs=(28,), size=8):
        self.trace.append(
            MicroOp(self._next_pc(), InstrClass.LOAD, srcs=tuple(srcs), dst=dst,
                    mem_addr=addr, mem_size=size)
        )
        return self

    def store(self, addr, srcs=(28,), data_src=29, size=8):
        self.trace.append(
            MicroOp(self._next_pc(), InstrClass.STORE, srcs=tuple(srcs),
                    mem_addr=addr, mem_size=size, data_src=data_src)
        )
        return self

    def branch(self, taken=False, srcs=(28,), pc=None):
        branch_pc = pc if pc is not None else self._next_pc()
        self.trace.append(
            MicroOp(branch_pc, InstrClass.BRANCH, srcs=tuple(srcs),
                    taken=taken, target=self._pc + 4)
        )
        return self

    def fill(self, n, dst_base=3):
        """Append n independent single-cycle ALU ops."""
        for i in range(n):
            self.alu(dst=dst_base + (i % 8))
        return self

    def build(self) -> Trace:
        return self.trace


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the execution engine's disk cache at a per-test directory.

    Keeps tests from reading or polluting ``~/.cache/repro``, and makes
    every test start from a cold cache.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def builder():
    return TraceBuilder()


@pytest.fixture
def tiny_config() -> MachineConfig:
    """Small machine with wrong-path modelling off (deterministic tests)."""
    return small_config(wrongpath_loads=False)


@pytest.fixture
def dmdc_config(tiny_config) -> MachineConfig:
    return tiny_config.with_scheme(SchemeConfig(kind="dmdc"))
