"""Unit tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.utils.bitops import (
    align_down,
    bit_select,
    contains,
    fold_xor,
    is_power_of_two,
    log2_exact,
    overlap,
)


class TestPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -1, -4, 3, 6, 12, 100):
            assert not is_power_of_two(n)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(2048) == 11

    def test_log2_rejects_non_power(self):
        with pytest.raises(ConfigError):
            log2_exact(12)


class TestAlignSelect:
    def test_align_down(self):
        assert align_down(0x1237, 8) == 0x1230
        assert align_down(0x1238, 8) == 0x1238
        assert align_down(5, 1) == 5

    def test_bit_select(self):
        assert bit_select(0b1011_0110, 1, 3) == 0b011
        assert bit_select(0xFF00, 8, 8) == 0xFF

    @given(st.integers(min_value=0, max_value=1 << 48), st.sampled_from([1, 2, 4, 8, 64]))
    def test_align_idempotent(self, addr, gran):
        aligned = align_down(addr, gran)
        assert aligned % gran == 0
        assert align_down(aligned, gran) == aligned
        assert 0 <= addr - aligned < gran


class TestFoldXor:
    def test_within_range(self):
        for addr in (0, 1, 0xDEADBEEF, (1 << 40) - 1):
            assert 0 <= fold_xor(addr, 10) < 1024

    def test_distinguishes_low_bits(self):
        assert fold_xor(0x10, 8) != fold_xor(0x11, 8)

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1), st.integers(min_value=1, max_value=16))
    def test_deterministic_and_bounded(self, value, width):
        a = fold_xor(value, width)
        assert a == fold_xor(value, width)
        assert 0 <= a < (1 << width)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_identity_for_narrow_values(self, value):
        # A value narrower than the fold width folds to itself.
        assert fold_xor(value, 16) == value


class TestOverlap:
    def test_basic_overlap(self):
        assert overlap(0, 8, 4, 8)
        assert overlap(4, 8, 0, 8)
        assert overlap(0, 8, 0, 1)

    def test_adjacent_ranges_do_not_overlap(self):
        assert not overlap(0, 8, 8, 8)
        assert not overlap(8, 8, 0, 8)

    @given(st.integers(0, 1000), st.sampled_from([1, 2, 4, 8]),
           st.integers(0, 1000), st.sampled_from([1, 2, 4, 8]))
    def test_symmetry(self, a, sa, b, sb):
        assert overlap(a, sa, b, sb) == overlap(b, sb, a, sa)

    @given(st.integers(0, 1000), st.sampled_from([1, 2, 4, 8]),
           st.integers(0, 1000), st.sampled_from([1, 2, 4, 8]))
    def test_contains_implies_overlap(self, a, sa, b, sb):
        if contains(a, sa, b, sb):
            assert overlap(a, sa, b, sb)

    def test_contains_exact(self):
        assert contains(0, 8, 0, 8)
        assert contains(0, 8, 4, 4)
        assert not contains(0, 8, 4, 8)
        assert not contains(4, 4, 0, 8)
