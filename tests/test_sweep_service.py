"""Local-vs-service sweep equivalence (PR: design-space autopilot).

The acceptance bar from the issue: the **same GridSpec** executed
through the local engine and through a running 2-shard service must
produce **bit-identical ledgers** — sharding, batching, and the HTTP
wire are invisible to the autopilot's artifact.
"""

import threading

import pytest

from repro.exec.engine import ExecutionEngine
from repro.exec.options import EngineOptions
from repro.service import ServiceClient, ServiceConfig, create_server
from repro.sweeps import GridSpec, SweepError, run_sweep

BUDGET = 600


def small_grid() -> GridSpec:
    return GridSpec(
        name="service-parity",
        axes={"scheme": ["conventional", "dmdc"], "workload": ["gzip", "mcf"]},
        base={"instructions": BUDGET, "seed": 1},
    )


@pytest.fixture(scope="module")
def service():
    config = ServiceConfig(
        port=0, batch_window=0.01, max_queue=64,
        request_timeout=60.0, drain_timeout=60.0,
        engine_options=EngineOptions(cache_enabled=False, max_workers=1),
        shards=2,
        offload=False,  # in-process execution keeps the test fast
    )
    server = create_server(config)
    thread = threading.Thread(target=server.serve_forever,
                              name="test-sweep-serve", daemon=True)
    thread.start()
    try:
        yield ServiceClient(port=server.server_address[1], timeout=60.0)
    finally:
        server.shutdown()
        server.batcher.close(timeout=5.0)
        thread.join(timeout=5.0)
        server.server_close()


class TestServiceBackend:
    def test_ledgers_bit_identical_local_vs_two_shard_service(
            self, service, tmp_path):
        local_path = str(tmp_path / "local.jsonl")
        service_path = str(tmp_path / "service.jsonl")

        local = run_sweep(small_grid(), engine=ExecutionEngine(max_workers=1),
                          ledger=local_path)
        remote = run_sweep(small_grid(), client=service, ledger=service_path)

        assert local.complete and remote.complete
        assert remote.accounting.mode == "service"
        assert open(local_path, "rb").read() == open(service_path, "rb").read()
        # Same artifact, therefore the same report.
        assert remote.report().to_dict() == local.report().to_dict()

    def test_service_accounting_comes_from_metrics_deltas(
            self, service, tmp_path):
        grid = GridSpec(
            name="service-acct",
            axes={"scheme": ["dmdc"], "workload": ["parser"]},
            base={"instructions": BUDGET, "seed": 2},
        )
        outcome = run_sweep(grid, client=service)
        assert outcome.complete
        assert outcome.accounting.submitted == 1
        # The shard engines report real execution counts over the wire.
        assert outcome.accounting.executed == 1

    def test_chunking_spans_service_requests(self, service):
        outcome = run_sweep(small_grid(), client=service, chunk=2)
        assert outcome.complete
        assert len(outcome.entries) == 4

    def test_progress_labels_service_points(self, service):
        sources = []
        run_sweep(small_grid(), client=service,
                  progress=lambda done, total, point, source:
                  sources.append(source))
        assert sources == ["service"] * 4


class _WrongKeyClient:
    """A service stub that answers with a foreign content address (the
    symptom of client and server running different simulator sources)."""

    def sweep(self, points, defaults=None, counters=False):
        return {"points": [{"key": "f" * 64, "summary": {}, "counters": {}}
                           for _ in points],
                "count": len(points)}

    def metrics(self):
        return {}


class TestKeyCrossCheck:
    def test_simulator_mismatch_is_refused(self):
        with pytest.raises(SweepError, match="different simulator"):
            run_sweep(small_grid(), client=_WrongKeyClient())

    def test_short_response_is_refused(self):
        class Short(_WrongKeyClient):
            def sweep(self, points, defaults=None, counters=False):
                return {"points": [], "count": 0}

        with pytest.raises(SweepError, match="0 results"):
            run_sweep(small_grid(), client=Short())
