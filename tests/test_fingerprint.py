"""Source-fingerprint exclusion policy (cache-invalidation regression).

PR 3 moved ``analysis.py`` into the ``analysis/`` package; until the
exclusion list followed, every lint-rule or sanitizer edit rotated
``simulator_fingerprint()`` and silently invalidated the entire disk
cache.  These tests pin the policy on a copy of the real source tree:
editing tooling must not move the fingerprint, editing the model must.
"""

import shutil
from pathlib import Path

import pytest

import repro
from repro.exec.request import _NON_SIMULATION_PARTS, fingerprint_tree


@pytest.fixture
def src_copy(tmp_path) -> Path:
    root = tmp_path / "repro"
    shutil.copytree(Path(repro.__file__).parent, root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return root


def _touch(root: Path, rel: str) -> None:
    path = root / rel
    assert path.exists(), f"expected {rel} in the source tree"
    with path.open("a") as fh:
        fh.write("\n# fingerprint regression probe\n")


class TestExclusions:
    def test_tooling_packages_are_excluded(self):
        # The concrete regression: analysis/ (lint + sanitizer), perf/
        # (bench harness), and service/ (HTTP daemon) are tooling around
        # the simulator, not part of it.
        for part in ("analysis", "perf", "service", "exec", "experiments",
                     "api", "sweeps"):
            assert part in _NON_SIMULATION_PARTS
        # Pre-refactor module names must not linger: they match nothing.
        assert "analysis.py" not in _NON_SIMULATION_PARTS
        assert "api.py" not in _NON_SIMULATION_PARTS

    def test_editing_a_lint_rule_keeps_the_fingerprint(self, src_copy):
        before = fingerprint_tree(src_copy)
        _touch(src_copy, "analysis/lint/rules.py")
        assert fingerprint_tree(src_copy) == before

    def test_editing_sanitizer_bench_service_cli_keeps_the_fingerprint(
            self, src_copy):
        before = fingerprint_tree(src_copy)
        for rel in ("analysis/sanitizer.py", "perf/bench.py",
                    "service/server.py", "cli.py", "api/__init__.py",
                    "api/advanced.py", "sweeps/grid.py",
                    "sweeps/orchestrator.py"):
            _touch(src_copy, rel)
        assert fingerprint_tree(src_copy) == before

    def test_editing_the_model_rotates_the_fingerprint(self, src_copy):
        before = fingerprint_tree(src_copy)
        _touch(src_copy, "sim/processor.py")
        after = fingerprint_tree(src_copy)
        assert after != before

    def test_editing_core_scheme_rotates_the_fingerprint(self, src_copy):
        before = fingerprint_tree(src_copy)
        _touch(src_copy, "core/yla.py")
        assert fingerprint_tree(src_copy) != before
