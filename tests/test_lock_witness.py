"""Runtime lock-order witness tests (dynamic half of REPRO008).

Three layers:

* the witness mechanism itself — edge recording, cycle detection,
  ascending-index discipline, and the ``make_lock`` seam contract;
* seeded misuse — a deliberate runtime inversion and a two-lock cycle
  must be caught;
* cross-validation against the static model — a real sharded pool is
  exercised under the witness and every observed edge must have been
  predicted by ``analyze_paths(["src/repro/service", "src/repro/exec"])``,
  so a hole in the static analyzer fails the suite here.
"""

import threading

import pytest

from repro.analysis.conc import LockOrderWitness, analyze_paths
from repro.analysis.conc.witness import WitnessEdge
from repro.service import MicroBatcher, ServiceMetrics, Shard, ShardPool
from repro.utils.sync import (holds, install_lock_factory, make_lock,
                              uninstall_lock_factory)
from tests.test_service_shards import StallEngine, make_request


def make_witnessed_pool(count: int, max_queue: int = 64) -> ShardPool:
    """A stub-engine pool whose batchers carry their shard index (the
    hand-built equivalent of ``ShardPool.build``).

    ``max_queue`` is generous because content-address routing depends on
    the simulator fingerprint: any source edit reshuffles which shard
    each seed lands on, and these tests are about lock order, not
    admission capacity.
    """
    shards = []
    for index in range(count):
        engine = StallEngine()
        metrics = ServiceMetrics()
        batcher = MicroBatcher(engine, max_queue=max_queue,
                               batch_window=5.0, metrics=metrics,
                               name=f"repro-batcher-{index}",
                               shard_index=index)
        shards.append(Shard(index, engine, batcher, metrics))
    return ShardPool(shards)


def finish(pool: ShardPool) -> None:
    for shard in pool.shards:
        shard.engine.gate.set()
    pool.close(timeout=5.0)


class TestSeam:
    def test_make_lock_defaults_to_plain_lock(self):
        lock = make_lock("X._lock")
        assert isinstance(lock, type(threading.Lock()))

    def test_install_is_exclusive_and_checked(self):
        with LockOrderWitness() as witness:
            with pytest.raises(RuntimeError):
                install_lock_factory(LockOrderWitness())
            with pytest.raises(RuntimeError):
                uninstall_lock_factory(LockOrderWitness())
            lock = make_lock("X._lock", index=3)
            assert lock.label == "X._lock" and lock.index == 3
        # Uninstalled on exit: back to plain locks.
        assert isinstance(make_lock("X._lock"), type(threading.Lock()))
        assert witness.acquisitions() == {}

    def test_holds_is_a_runtime_noop_that_marks_the_function(self):
        @holds("_lock", "_other")
        def helper():
            return 41

        assert helper() == 41
        assert helper.__repro_holds__ == ("_lock", "_other")


class TestWitnessMechanism:
    def test_nested_acquisition_records_one_edge(self):
        witness = LockOrderWitness()
        a = witness.lock("A._lock", None)
        b = witness.lock("B._lock", None)
        with a:
            with b:
                pass
        # Sequential (non-nested) acquisition adds nothing new.
        with b:
            pass
        assert witness.label_edges() == {("A._lock", "B._lock")}
        assert witness.cycle() is None
        assert witness.ordering_violations() == []
        assert witness.acquisitions() == {("A._lock", None): 1,
                                          ("B._lock", None): 2}

    def test_ascending_same_label_nesting_is_sanctioned(self):
        witness = LockOrderWitness()
        locks = [witness.lock("Shard._lock", i) for i in range(4)]
        for lock in locks:
            lock.acquire()
        for lock in reversed(locks):
            lock.release()
        assert witness.ordering_violations() == []
        assert witness.cycle() is None
        assert witness.label_edges() == {("Shard._lock", "Shard._lock")}

    def test_descending_same_label_nesting_is_flagged(self):
        witness = LockOrderWitness()
        hi = witness.lock("Shard._lock", 2)
        lo = witness.lock("Shard._lock", 1)
        with hi:
            with lo:
                pass
        assert witness.ordering_violations() == [
            WitnessEdge(("Shard._lock", 2), ("Shard._lock", 1))]

    def test_unindexed_same_label_nesting_is_flagged(self):
        witness = LockOrderWitness()
        first = witness.lock("M._lock", None)
        second = witness.lock("M._lock", None)
        with first:
            with second:
                pass
        assert len(witness.ordering_violations()) == 1

    def test_opposite_orders_make_a_cycle(self):
        witness = LockOrderWitness()
        a = witness.lock("A._lock", None)
        b = witness.lock("B._lock", None)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycle = witness.cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"A._lock", "B._lock"}

    def test_condition_over_witness_lock_records_no_spurious_edges(self):
        # Condition.wait releases through the wrapper, so the sleeping
        # thread's held stack is empty at re-acquire time; the notify
        # side's _is_owned probe (acquire(False) on a held lock) fails
        # and records nothing.
        witness = LockOrderWitness()
        lock = witness.lock("W._lock", None)
        cond = threading.Condition(lock)
        ready = []

        def waiter():
            with cond:
                while not ready:
                    cond.wait(timeout=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            ready.append(True)
            cond.notify_all()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert witness.label_edges() == set()
        assert witness.ordering_violations() == []

    def test_report_names_every_edge(self):
        witness = LockOrderWitness()
        with witness.lock("A._lock", None):
            with witness.lock("B._lock", 1):
                pass
        assert "A._lock -> B._lock[1]" in witness.report()
        assert "no nested acquisitions" in LockOrderWitness().report()


class TestServiceCrossValidation:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_paths(["src/repro/service", "src/repro/exec"])

    def test_static_model_predicts_the_sanctioned_graph(self, analysis):
        predicted = analysis.predicted_edges()
        assert ("MicroBatcher._lock", "ServiceMetrics._lock") in predicted
        assert ("MicroBatcher._lock", "MicroBatcher._lock") in predicted
        assert analysis.cycles() == []
        assert analysis.self_deadlocks() == []
        assert analysis.blocking_violations == []

    def test_exercised_pool_stays_inside_the_predicted_graph(self, analysis):
        with LockOrderWitness() as witness:
            pool = make_witnessed_pool(3)
            # Single-point admission, coalescing, and a cross-shard sweep.
            pool.submit(make_request(seed=1))
            pool.submit(make_request(seed=1))
            pool.submit_many([make_request(seed=seed)
                              for seed in range(2, 14)])
            pool.metrics.snapshot()
            assert not pool.draining
            finish(pool)

        # Coverage sanity: the exercise really took shard and metrics
        # locks on every shard.
        taken = witness.acquisitions()
        for index in range(3):
            assert taken.get(("MicroBatcher._lock", index), 0) > 0
        assert any(label == "ServiceMetrics._lock"
                   for label, _ in taken)

        # The witnessed graph obeys the discipline...
        assert witness.cycle() is None
        assert witness.ordering_violations() == []
        # ...and the static analyzer predicted every edge of it.  An
        # unpredicted edge is a hole in the model: fail loudly with the
        # full observed graph.
        unpredicted = witness.unpredicted_edges(analysis.predicted_edges())
        assert not unpredicted, witness.report()

    def test_witnessed_sweep_took_shard_locks_in_ascending_order(self,
                                                                 analysis):
        with LockOrderWitness() as witness:
            pool = make_witnessed_pool(4)
            pool.submit_many([make_request(seed=seed)
                              for seed in range(24)])
            finish(pool)
        same_label = [edge for edge in witness.edges()
                      if edge.src[0] == edge.dst[0] == "MicroBatcher._lock"]
        assert same_label, "sweep never nested two shard locks"
        assert all(edge.src[1] < edge.dst[1] for edge in same_label)
        assert witness.unpredicted_edges(analysis.predicted_edges()) == set()

    def test_seeded_inversion_is_caught_at_runtime(self):
        # The dynamic analogue of the REPRO008 snippet test: admit a
        # sweep through a wrapper that takes shard locks descending.
        with LockOrderWitness() as witness:
            pool = make_witnessed_pool(2)
            locks = [shard.batcher.admission for shard in pool.shards]
            with locks[1]:
                with locks[0]:
                    pass
            finish(pool)
        violations = witness.ordering_violations()
        assert violations == [WitnessEdge(("MicroBatcher._lock", 1),
                                          ("MicroBatcher._lock", 0))]
