"""Tests for report assembly."""

import pathlib

from repro.reporting import PAPER_REFERENCE, collect_report, write_report


class TestCollectReport:
    def test_all_experiments_have_references(self):
        from repro.experiments.registry import EXPERIMENTS
        for exp_id in EXPERIMENTS:
            assert exp_id in PAPER_REFERENCE, exp_id

    def test_includes_present_artifacts(self, tmp_path):
        (tmp_path / "fig2.txt").write_text("FIG2 TABLE CONTENT")
        text = collect_report(tmp_path)
        assert "FIG2 TABLE CONTENT" in text
        assert "## fig2" in text
        assert "Paper: 71%" in text

    def test_flags_missing_artifacts(self, tmp_path):
        text = collect_report(tmp_path)
        assert "not yet measured" in text
        assert "Missing artifacts" in text

    def test_write_report(self, tmp_path):
        (tmp_path / "table2.txt").write_text("T2")
        out = tmp_path / "report.md"
        text = write_report(tmp_path, str(out))
        assert out.read_text() == text
        assert "T2" in text

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "fig4.txt").write_text("FIG4")
        assert main(["report", "--results", str(tmp_path)]) == 0
        assert "FIG4" in capsys.readouterr().out
