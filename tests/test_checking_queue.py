"""Unit tests for the associative checking queue (Section 4.4)."""

import pytest

from repro.core.schemes.checking_queue import CheckingQueue
from repro.errors import ConfigError


class TestCheckingQueue:
    def test_insert_and_match(self):
        q = CheckingQueue(4)
        assert q.insert(1, 0x100, 8)
        assert q.check_load(0x100, 8) == 1
        assert q.check_load(0x104, 4) == 1   # overlapping bytes

    def test_no_match_for_disjoint(self):
        q = CheckingQueue(4)
        q.insert(1, 0x100, 8)
        assert q.check_load(0x108, 8) is None

    def test_exact_addresses_no_aliasing(self):
        """Unlike the hash table, distinct addresses never collide."""
        q = CheckingQueue(4)
        q.insert(1, 0x100, 8)
        for qw in range(2, 200):
            assert q.check_load(qw * 0x100, 8) is None

    def test_overflow_reported(self):
        q = CheckingQueue(2)
        assert q.insert(1, 0x100, 8)
        assert q.insert(2, 0x200, 8)
        assert not q.insert(3, 0x300, 8)
        assert q.overflows == 1
        assert q.occupancy == 2

    def test_clear(self):
        q = CheckingQueue(2)
        q.insert(1, 0x100, 8)
        q.clear()
        assert q.occupancy == 0
        assert q.check_load(0x100, 8) is None
        assert q.clears == 1

    def test_counters(self):
        q = CheckingQueue(2)
        q.insert(1, 0x100, 8)
        q.check_load(0x100, 8)
        assert q.writes == 1 and q.reads == 1

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            CheckingQueue(0)

    def test_partial_size_matching(self):
        q = CheckingQueue(4)
        q.insert(1, 0x100, 2)
        assert q.check_load(0x100, 8) == 1
        assert q.check_load(0x102, 2) is None
