"""Unit tests for load/store queues and the forwarding protocol."""

import pytest

from repro.backend.dyninst import DynInstr
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.lsq.queues import (
    SOA_CACHE,
    SOA_FORWARD,
    SOA_REJECT,
    ForwardAction,
    LoadQueue,
    StoreQueue,
    lq_violation_search_soa,
    sq_forward_search_soa,
    sq_has_unresolved_soa,
)


def mk_store(seq, addr, size=8, resolved=True, data_ready=True):
    uop = MicroOp(0x100 + 4 * seq, InstrClass.STORE, mem_addr=addr, mem_size=size,
                  data_src=1)
    d = DynInstr(uop, trace_idx=seq, seq=seq, fp_side=False)
    if resolved:
        d.resolve_cycle = 1
        d.issue_cycle = 1
    d.pending_data = 0 if data_ready else 1
    return d


def mk_load(seq, addr, size=8, issued=False):
    uop = MicroOp(0x200 + 4 * seq, InstrClass.LOAD, mem_addr=addr, mem_size=size, dst=2)
    d = DynInstr(uop, trace_idx=seq, seq=seq, fp_side=False)
    if issued:
        d.issue_cycle = 1
    return d


class TestForwarding:
    def test_no_older_stores_goes_to_cache(self):
        sq = StoreQueue(8)
        res = sq.search_for_forwarding(mk_load(5, 0x100))
        assert res.action == ForwardAction.CACHE
        assert res.all_older_resolved

    def test_full_cover_forwards(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(1, 0x100, size=8))
        res = sq.search_for_forwarding(mk_load(5, 0x100, size=4))
        assert res.action == ForwardAction.FORWARD
        assert res.store.seq == 1

    def test_partial_cover_rejects(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(1, 0x100, size=4))
        res = sq.search_for_forwarding(mk_load(5, 0x100, size=8))
        assert res.action == ForwardAction.REJECT

    def test_data_not_ready_rejects(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(1, 0x100, data_ready=False))
        res = sq.search_for_forwarding(mk_load(5, 0x100))
        assert res.action == ForwardAction.REJECT

    def test_youngest_older_store_wins(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(1, 0x100))
        sq.allocate(mk_store(2, 0x100))
        res = sq.search_for_forwarding(mk_load(5, 0x100))
        assert res.store.seq == 2

    def test_younger_stores_ignored(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(9, 0x100))
        res = sq.search_for_forwarding(mk_load(5, 0x100))
        assert res.action == ForwardAction.CACHE

    def test_unresolved_older_store_makes_speculative(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(1, 0x100, resolved=False))
        res = sq.search_for_forwarding(mk_load(5, 0x200))
        assert res.action == ForwardAction.CACHE
        assert not res.all_older_resolved

    def test_unresolved_does_not_block_forwarding_from_resolved(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(1, 0x100))
        sq.allocate(mk_store(2, 0x300, resolved=False))
        res = sq.search_for_forwarding(mk_load(5, 0x100))
        assert res.action == ForwardAction.FORWARD
        assert not res.all_older_resolved

    def test_search_counting(self):
        sq = StoreQueue(8)
        sq.search_for_forwarding(mk_load(1, 0), count_search=True)
        sq.search_for_forwarding(mk_load(2, 0), count_search=False)
        assert sq.searches == 1 and sq.searches_filtered == 1


class TestStoreQueueBookkeeping:
    def test_retire_order_enforced(self):
        sq = StoreQueue(8)
        s1, s2 = mk_store(1, 0), mk_store(2, 8)
        sq.allocate(s1)
        sq.allocate(s2)
        with pytest.raises(AssertionError):
            sq.retire_head(s2)
        sq.retire_head(s1)

    def test_oldest_unresolved(self):
        sq = StoreQueue(8)
        sq.allocate(mk_store(1, 0))
        sq.allocate(mk_store(2, 8, resolved=False))
        assert sq.oldest_unresolved_seq() == 2

    def test_squash_younger(self):
        sq = StoreQueue(8)
        for seq in (1, 2, 3):
            sq.allocate(mk_store(seq, seq * 8))
        sq.squash_younger(1)
        assert len(sq) == 1 and sq.ring.head().seq == 1

    def test_find_by_seq_tracks_allocate_retire_squash(self):
        sq = StoreQueue(8)
        stores = {seq: mk_store(seq, seq * 8) for seq in (1, 2, 3)}
        for store in stores.values():
            sq.allocate(store)
        assert sq.find(2) is stores[2]
        sq.retire_head(stores[1])
        assert sq.find(1) is None
        sq.squash_younger(2)
        assert sq.find(3) is None and sq.find(2) is stores[2]

class TestLoadQueueSearch:
    def test_finds_oldest_younger_issued_overlap(self):
        lq = LoadQueue(8)
        lq.allocate(mk_load(3, 0x100, issued=True))
        lq.allocate(mk_load(4, 0x100, issued=True))
        victim = lq.search_younger_issued(mk_store(2, 0x100))
        assert victim.seq == 3

    def test_ignores_unissued_and_older(self):
        lq = LoadQueue(8)
        lq.allocate(mk_load(1, 0x100, issued=True))    # older than store
        lq.allocate(mk_load(4, 0x100, issued=False))   # not issued
        assert lq.search_younger_issued(mk_store(2, 0x100)) is None

    def test_ignores_disjoint_addresses(self):
        lq = LoadQueue(8)
        lq.allocate(mk_load(4, 0x200, issued=True))
        assert lq.search_younger_issued(mk_store(2, 0x100)) is None

    def test_partial_overlap_detected(self):
        lq = LoadQueue(8)
        lq.allocate(mk_load(4, 0x104, size=4, issued=True))
        victim = lq.search_younger_issued(mk_store(2, 0x100, size=8))
        assert victim is not None

    def test_ring_iteration_is_age_ordered(self):
        lq = LoadQueue(8)
        lq.allocate(mk_load(1, 0, issued=True))
        lq.allocate(mk_load(2, 8, issued=False))
        assert [l.seq for l in lq.ring] == [1, 2]

    def test_search_counters(self):
        lq = LoadQueue(8)
        lq.search_younger_issued(mk_store(1, 0))
        lq.search_younger_issued(mk_store(2, 0), count_search=False)
        assert lq.searches == 1 and lq.searches_filtered == 1


class TestSoaSearchEquivalence:
    """The slot-array search kernels must agree with the object methods on
    every queue population (randomized cross-check)."""

    _ACTION_CODE = {
        ForwardAction.CACHE: SOA_CACHE,
        ForwardAction.FORWARD: SOA_FORWARD,
        ForwardAction.REJECT: SOA_REJECT,
    }

    @staticmethod
    def _arrays(instrs):
        """Parallel slot arrays mirroring a list of DynInstrs (slot == index)."""
        seq_ = [d.seq for d in instrs]
        addr_ = [d.addr for d in instrs]
        size_ = [d.size for d in instrs]
        rcyc_ = [d.resolve_cycle for d in instrs]
        icyc_ = [d.issue_cycle for d in instrs]
        pdata_ = [d.pending_data for d in instrs]
        slots = list(range(len(instrs)))
        return slots, seq_, addr_, size_, rcyc_, icyc_, pdata_

    def test_forward_search_matches_object_path(self):
        import random

        rng = random.Random(1234)
        for _ in range(300):
            sq = StoreQueue(16)
            stores = []
            for i in range(rng.randrange(0, 9)):
                stores.append(mk_store(
                    seq=rng.randrange(0, 20),
                    addr=rng.randrange(0, 5) * 4,
                    size=rng.choice((4, 8)),
                    resolved=rng.random() < 0.7,
                    data_ready=rng.random() < 0.7,
                ))
            stores.sort(key=lambda s: s.seq)
            for s in stores:
                sq.allocate(s)
            load = mk_load(rng.randrange(0, 20), rng.randrange(0, 5) * 4,
                           size=rng.choice((4, 8)))
            expected = sq.search_for_forwarding(load)
            slots, seq_, addr_, size_, rcyc_, _, pdata_ = self._arrays(stores)
            action, match, all_resolved = sq_forward_search_soa(
                slots, seq_, addr_, size_, rcyc_, pdata_,
                load.seq, load.addr, load.addr + load.size)
            assert action == self._ACTION_CODE[expected.action]
            assert all_resolved == expected.all_older_resolved
            if expected.store is None:
                assert match == -1
            else:
                assert stores[match] is expected.store
            assert sq_has_unresolved_soa(slots, rcyc_) == \
                (sq.oldest_unresolved_seq() is not None)

    def test_violation_search_matches_object_path(self):
        import random

        rng = random.Random(99)
        for _ in range(300):
            lq = LoadQueue(16)
            loads = []
            for i in range(rng.randrange(0, 9)):
                loads.append(mk_load(
                    seq=rng.randrange(0, 20),
                    addr=rng.randrange(0, 5) * 4,
                    size=rng.choice((4, 8)),
                    issued=rng.random() < 0.7,
                ))
            loads.sort(key=lambda l: l.seq)
            for l in loads:
                lq.allocate(l)
            store = mk_store(rng.randrange(0, 20), rng.randrange(0, 5) * 4,
                             size=rng.choice((4, 8)))
            expected = lq.search_younger_issued(store)
            slots, seq_, addr_, size_, _, icyc_, _ = self._arrays(loads)
            victim = lq_violation_search_soa(
                slots, seq_, addr_, size_, icyc_,
                store.seq, store.addr, store.addr + store.size)
            if expected is None:
                assert victim == -1
            else:
                assert loads[victim] is expected
