"""Tests for the structural invariant checker (and, through it, the pipeline)."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import SchemeConfig, small_config
from repro.sim.processor import Processor
from repro.sim.validate import check_invariants, run_with_validation
from repro.workloads import SyntheticWorkload, WorkloadSpec, get_workload


class TestCheckerCatchesCorruption:
    def _warm_proc(self):
        proc = Processor(small_config(), get_workload("gzip").generate(300))
        for _ in range(500):
            proc.step()
            if len(proc.rob) > 4:
                break
        assert len(proc.rob) > 4
        check_invariants(proc)  # healthy first
        return proc

    def test_detects_iq_drift(self):
        proc = self._warm_proc()
        proc.iq_int_count += 1
        with pytest.raises(SimulationError, match="IQ"):
            check_invariants(proc)

    def test_detects_register_leak(self):
        proc = self._warm_proc()
        proc.regs_int.free -= 1
        with pytest.raises(SimulationError, match="register leak"):
            check_invariants(proc)

    def test_detects_rename_corruption(self):
        proc = self._warm_proc()
        victim = next(e for e in proc.rob if e.uop.dst is not None)
        older = Processor(small_config(), get_workload("gzip").generate(10))
        proc.rename[victim.uop.dst] = proc.rob.head()
        try:
            check_invariants(proc)
        except SimulationError:
            return
        # If head happened to be the youngest writer, corrupt differently.
        proc.rename[63] = victim
        with pytest.raises(SimulationError):
            check_invariants(proc)

    def test_detects_age_disorder(self):
        proc = self._warm_proc()
        if len(proc.rob) >= 2:
            proc.rob.items[0], proc.rob.items[1] = proc.rob.items[1], proc.rob.items[0]
            with pytest.raises(SimulationError, match="age-ordered"):
                check_invariants(proc)


class TestPipelineHoldsInvariants:
    """The real assertion: the pipeline never violates the invariants,
    including across replays, rejections, and mispredictions."""

    @pytest.mark.parametrize("scheme", [
        SchemeConfig(kind="conventional"),
        SchemeConfig(kind="dmdc"),
        SchemeConfig(kind="dmdc", local=True),
    ], ids=["conventional", "dmdc-global", "dmdc-local"])
    def test_clean_under_stress(self, scheme):
        spec = WorkloadSpec(name="validate", conflict_per_kinstr=5.0,
                            store_addr_dep_load=0.2, rmw_fraction=0.2, seed=13)
        trace = SyntheticWorkload(spec).generate(1000)
        config = small_config().with_scheme(scheme)
        proc = Processor(config, trace)
        result = run_with_validation(proc, 800, every_cycles=3)
        assert result.committed == 800

    def test_clean_with_wrongpath_and_invalidations(self):
        config = small_config().with_scheme(
            SchemeConfig(kind="dmdc", coherence=True)
        ).with_overrides(invalidation_rate=100.0)
        proc = Processor(config, get_workload("mcf").generate(900))
        result = run_with_validation(proc, 700, every_cycles=5)
        assert result.committed == 700
