"""Provenance and validation of the ``repro bench`` payload.

A throughput number without the knobs that produced it is noise: the
payload must record the effective fast-path state (globally and per
row), the engine's environment-derived settings, and honest wall-clock
rates alongside the sim-time figure of merit.
"""

from repro.perf.bench import run_bench, validate_payload

#: One tiny quick run shared by every test in this module.
_PAYLOAD = None


def _payload():
    global _PAYLOAD
    if _PAYLOAD is None:
        _PAYLOAD = run_bench(quick=True, instructions=1_200)
    return _PAYLOAD


def test_payload_validates_clean():
    assert validate_payload(_payload()) == []


def test_knobs_provenance_recorded():
    knobs = _payload()["knobs"]
    assert isinstance(knobs["fastpath_enabled"], bool)
    assert isinstance(knobs["engine_cache_enabled"], bool)
    assert knobs["engine_workers"] >= 1
    assert isinstance(knobs["env"], dict)


def test_per_row_fastpath_flag():
    """Every per-workload row says whether *its* processor could skip —
    the effective state, not just the global env flag."""
    payload = _payload()
    for label, row in payload["schemes"].items():
        for name, sub in row["per_workload"].items():
            assert isinstance(sub["fastpath_enabled"], bool), (label, name)
            # No tracer/hooks in the bench, so it matches the global flag.
            assert sub["fastpath_enabled"] == payload["fastpath_enabled"]


def test_wall_rates_present_and_not_inflated():
    """The wall-time rate includes trace generation and prewarm, so it can
    never exceed the sim-time-only figure of merit."""
    payload = _payload()
    assert payload["aggregate_instr_per_sec_wall"] > 0
    assert (payload["aggregate_instr_per_sec_wall"]
            <= payload["aggregate_instr_per_sec"])
    for row in payload["schemes"].values():
        assert row["wall_seconds"] >= row["sim_seconds"]
        assert 0 < row["wall_instr_per_sec"] <= row["instr_per_sec"]


def test_validate_flags_missing_provenance():
    payload = {
        "schema": 2, "git_sha": "x", "machine": {}, "workloads": [],
        "instructions_per_run": 1, "aggregate_instr_per_sec": 1.0,
        "knobs": {},
        "schemes": {
            "dmdc": {
                "instructions": 10, "instr_per_sec": 1.0,
                "per_workload": {"gzip": {"sim_seconds": 0.0}},
            },
        },
    }
    problems = validate_payload(payload)
    assert any("fastpath_enabled" in p for p in problems)
    assert any("sim_seconds" in p for p in problems)
