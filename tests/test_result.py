"""Unit tests for SimulationResult derived metrics."""

import pytest

from repro.sim.result import FALSE_REPLAY_CATEGORIES, SimulationResult
from repro.stats.counters import CounterSet, Histogram


def mk_result(**counters) -> SimulationResult:
    c = CounterSet()
    for name, value in counters.items():
        c[name.replace("__", ".")] = value
    return SimulationResult(
        workload="w", group="INT", config_name="c", scheme_name="dmdc-global",
        cycles=counters.pop("cycles", 1000), committed=counters.pop("committed", 500),
        counters=c,
    )


class TestRates:
    def test_ipc(self):
        r = mk_result()
        r.cycles, r.committed = 1000, 2500
        assert r.ipc == 2.5

    def test_ipc_zero_cycles(self):
        r = mk_result()
        r.cycles = 0
        assert r.ipc == 0.0

    def test_per_minstr(self):
        r = mk_result(replays=5)
        r.committed = 1_000_000
        assert r.per_minstr("replays") == 5.0

    def test_per_minstr_no_commits(self):
        r = mk_result(replays=5)
        r.committed = 0
        assert r.per_minstr("replays") == 0.0

    def test_false_replays_include_overflow(self):
        r = mk_result(**{"replay__false": 10, "replay__overflow": 2})
        r.committed = 1_000_000
        assert r.false_replays_per_minstr == 12.0

    def test_breakdown_covers_all_categories(self):
        r = mk_result()
        breakdown = r.false_replay_breakdown()
        assert set(breakdown) == set(FALSE_REPLAY_CATEGORIES)


class TestFractions:
    def test_safe_store_fraction(self):
        r = mk_result(**{"stores__resolved": 100, "stores__safe": 80})
        assert r.safe_store_fraction == pytest.approx(0.8)

    def test_safe_store_fraction_baseline_zero(self):
        assert mk_result().safe_store_fraction == 0.0

    def test_safe_load_fraction(self):
        r = mk_result(**{"commit__loads": 50, "commit__safe_loads": 45})
        assert r.safe_load_fraction == pytest.approx(0.9)

    def test_checking_cycle_fraction(self):
        r = mk_result(**{"checking__cycles_observed": 200})
        r.cycles = 1000
        assert r.checking_cycle_fraction == pytest.approx(0.2)


class TestWindowStats:
    def test_means_from_histograms(self):
        r = mk_result()
        r.window_instrs = Histogram()
        r.window_instrs.add(10)
        r.window_instrs.add(30)
        assert r.mean_window_instrs == 20.0

    def test_single_store_fraction(self):
        r = mk_result()
        r.window_unsafe_stores = Histogram()
        r.window_unsafe_stores.add(1)
        r.window_unsafe_stores.add(1)
        r.window_unsafe_stores.add(3)
        assert r.single_unsafe_store_window_fraction == pytest.approx(2 / 3)

    def test_single_store_fraction_empty(self):
        assert mk_result().single_unsafe_store_window_fraction == 0.0

    def test_summary_is_plain_dict(self):
        summary = mk_result().summary()
        assert isinstance(summary, dict)
        assert all(isinstance(v, (int, float)) for v in summary.values())
