"""Attaching any observer must disable the event-horizon cycle skipper.

The skipper jumps over externally-invisible idle cycles; a tracer already
disables it (cycle-granular observation), and the same rule must hold for
every hook on the generic ``attach_hook`` seam — a sanitizer or probe that
missed skipped cycles would silently under-check.
"""

from repro.analysis.sanitizer import attach_sanitizer
from repro.sim.config import CONFIG2, SchemeConfig
from repro.sim.pipetrace import PipelineTracer
from repro.sim.processor import Processor
from repro.workloads import get_workload

BUDGET = 2_500


def _processor():
    config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
    trace = get_workload("mcf").generate(BUDGET + 2_000)
    return Processor(config, trace, seed=1)


def _run(proc):
    proc.prewarm()
    result = proc.run(BUDGET)
    return proc, result


def test_baseline_run_actually_skips(monkeypatch):
    """Guard: without observers this workload does fast-forward, so the
    tests below are not vacuous."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    proc, _ = _run(_processor())
    assert proc.fast_forwarded_cycles > 0


def test_tracer_disables_skipping(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    proc = _processor()
    proc.tracer = PipelineTracer(capacity=64)
    proc, _ = _run(proc)
    assert proc.fast_forwarded_cycles == 0


def test_attach_hook_disables_skipping(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    proc = _processor()
    proc.attach_hook(object())
    proc, _ = _run(proc)
    assert proc.fast_forwarded_cycles == 0


def test_sanitizer_disables_skipping(monkeypatch):
    """Regression: the sanitizer rides the hook seam, so attaching it must
    disable the skipper exactly like a tracer."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    proc = _processor()
    attach_sanitizer(proc)
    proc, _ = _run(proc)
    assert proc.fast_forwarded_cycles == 0


def test_detach_last_hook_restores_skipping(monkeypatch):
    """The gate is membership-based: any number of hooks disables the
    skipper exactly once, and detaching the last one restores it."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    proc = _processor()
    first, second = object(), object()
    assert proc.fastpath_enabled
    proc.attach_hook(first)
    proc.attach_hook(second)
    assert not proc.fastpath_enabled
    proc.detach_hook(first)
    assert not proc.fastpath_enabled  # one hook still attached
    proc.detach_hook(second)
    assert proc.fastpath_enabled
    proc, _ = _run(proc)
    assert proc.fast_forwarded_cycles > 0


def test_observer_recorder_disables_skipping(monkeypatch):
    """The observability recorder rides the same hook seam, so attaching
    it must disable the skipper like a tracer/sanitizer — and detaching
    it must bring the fast path back."""
    from repro.obs import attach_observer, detach_observer
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    proc = _processor()
    recorder = attach_observer(proc)
    assert not proc.fastpath_enabled
    detach_observer(proc, recorder)
    assert proc.fastpath_enabled
    proc, _ = _run(proc)
    assert proc.fast_forwarded_cycles > 0


def test_observed_result_matches_fastpath_result(monkeypatch):
    """Observer bit-invisibility composed with fast-path equivalence."""
    from repro.obs import attach_observer
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    fast_proc, fast_result = _run(_processor())
    observed_proc = _processor()
    attach_observer(observed_proc)
    observed_proc, observed_result = _run(observed_proc)
    assert fast_proc.fast_forwarded_cycles > 0
    assert observed_proc.fast_forwarded_cycles == 0
    assert fast_result.to_dict() == observed_result.to_dict()


def test_sanitized_result_matches_fastpath_result(monkeypatch):
    """Even though the sanitizer forces plain stepping, the simulated
    outcome equals the fast-forwarded run (fastpath equivalence composed
    with sanitizer bit-invisibility)."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    fast_proc, fast_result = _run(_processor())
    sanitized_proc = _processor()
    attach_sanitizer(sanitized_proc)
    sanitized_proc, sanitized_result = _run(sanitized_proc)
    assert fast_proc.fast_forwarded_cycles > 0
    assert sanitized_proc.fast_forwarded_cycles == 0
    assert fast_result.to_dict() == sanitized_result.to_dict()
