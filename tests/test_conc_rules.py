"""Per-rule tests for the concurrency catalogue (REPRO008-REPRO012).

Each test aims a small violating (or deliberately clean) snippet at a
service-layer path via :func:`lint_source`, proving every rule both
fires on its target shape and stays quiet on the sanctioned one — the
ascending sorted sweep, ``@holds`` helpers, fresh objects, and
``Condition.wait`` releasing its own lock.
"""

import textwrap

from repro.analysis.conc import CONC_RULES, conc_rule_catalogue
from repro.analysis.lint.engine import lint_source

SERVICE_PATH = "src/repro/service/snippet.py"


def check(source: str, path: str = SERVICE_PATH):
    return lint_source(textwrap.dedent(source), path=path, rules=CONC_RULES)


def rule_ids(source: str, path: str = SERVICE_PATH):
    return [v.rule_id for v in check(source, path)]


class TestLockOrderRule:
    def test_descending_sweep_is_an_inversion(self):
        violations = check("""
            from contextlib import ExitStack
            from typing import List

            from repro.utils.sync import make_lock


            class Shard:
                def __init__(self) -> None:
                    self._lock = make_lock("Shard._lock")


            class Pool:
                def __init__(self, shards: List[Shard]) -> None:
                    self.shards = list(shards)

                def sweep(self) -> None:
                    with ExitStack() as stack:
                        for shard in sorted(self.shards, reverse=True,
                                            key=id):
                            stack.enter_context(shard._lock)
            """)
        assert [v.rule_id for v in violations] == ["REPRO008"]
        assert "ascending" in violations[0].message

    def test_ascending_sorted_sweep_is_sanctioned(self):
        assert rule_ids("""
            from contextlib import ExitStack
            from typing import List

            from repro.utils.sync import make_lock


            class Shard:
                def __init__(self) -> None:
                    self._lock = make_lock("Shard._lock")


            class Pool:
                def __init__(self, shards: List[Shard]) -> None:
                    self.shards = list(shards)

                def sweep(self) -> None:
                    with ExitStack() as stack:
                        for shard in sorted(self.shards, key=id):
                            stack.enter_context(shard._lock)
            """) == []

    def test_two_class_cycle_is_flagged(self):
        violations = check("""
            from repro.utils.sync import make_lock


            class Counters:
                queue: "Queue"

                def __init__(self) -> None:
                    self._lock = make_lock("Counters._lock")

                def bump(self) -> None:
                    with self._lock:
                        pass

                def flush(self) -> None:
                    with self._lock:
                        self.queue.drain()


            class Queue:
                def __init__(self, counters: Counters) -> None:
                    self._lock = make_lock("Queue._lock")
                    self.counters = counters

                def push(self) -> None:
                    with self._lock:
                        self.counters.bump()

                def drain(self) -> None:
                    with self._lock:
                        pass
            """)
        assert [v.rule_id for v in violations] == ["REPRO008"]
        assert "cycle" in violations[0].message
        assert "Counters._lock" in violations[0].message
        assert "Queue._lock" in violations[0].message

    def test_property_reacquire_under_own_lock_is_a_self_deadlock(self):
        violations = check("""
            from repro.utils.sync import make_lock


            class Batcher:
                def __init__(self) -> None:
                    self._lock = make_lock("Batcher._lock")
                    self._pending = 0

                @property
                def depth(self) -> int:
                    with self._lock:
                        return self._pending

                def submit(self) -> None:
                    with self._lock:
                        if self.depth > 0:
                            self._pending -= 1
            """)
        assert "REPRO008" in [v.rule_id for v in violations]
        assert any("self-deadlock" in v.message for v in violations)


class TestGuardedStateRule:
    GUARDED = """
        from repro.utils.sync import holds, make_lock


        class Metrics:
            _GUARDED_BY = {"total": "_lock"}

            def __init__(self) -> None:
                self._lock = make_lock("Metrics._lock")
                self.total = 0
        %s
        """

    def test_unlocked_read_is_flagged(self):
        violations = check(self.GUARDED % """
            def peek(self) -> int:
                return self.total
        """)
        assert [v.rule_id for v in violations] == ["REPRO009"]
        assert "read of Metrics.total" in violations[0].message

    def test_unlocked_write_is_flagged(self):
        violations = check(self.GUARDED % """
            def reset(self) -> None:
                self.total = 0
        """)
        assert [v.rule_id for v in violations] == ["REPRO009"]
        assert "write to Metrics.total" in violations[0].message

    def test_locked_access_is_clean(self):
        assert rule_ids(self.GUARDED % """
            def bump(self) -> None:
                with self._lock:
                    self.total += 1
        """) == []

    def test_holds_decorator_vouches_for_the_caller_lock(self):
        assert rule_ids(self.GUARDED % """
            @holds("_lock")
            def bump_locked(self) -> None:
                self.total += 1

            def bump(self) -> None:
                with self._lock:
                    self.bump_locked()
        """) == []

    def test_calling_a_holds_method_without_the_lock_is_flagged(self):
        violations = check(self.GUARDED % """
            @holds("_lock")
            def bump_locked(self) -> None:
                self.total += 1

            def bump(self) -> None:
                self.bump_locked()
        """)
        assert [v.rule_id for v in violations] == ["REPRO009"]
        assert "@holds" in violations[0].message

    def test_fresh_object_is_exempt_until_shared(self):
        assert rule_ids(self.GUARDED % """
            @classmethod
            def merged(cls, value: int) -> "Metrics":
                out = Metrics()
                out.total = value
                return out
        """) == []


class TestConditionWaitRule:
    WAITER = """
        import threading

        from repro.utils.sync import make_lock


        class Waiter:
            def __init__(self) -> None:
                self._lock = make_lock("Waiter._lock")
                self._cond = threading.Condition(self._lock)
                self.ready = False
        %s
        """

    def test_wait_under_if_is_flagged(self):
        violations = check(self.WAITER % """
            def block(self) -> None:
                with self._lock:
                    if not self.ready:
                        self._cond.wait()
        """)
        assert [v.rule_id for v in violations] == ["REPRO010"]
        assert "while" in violations[0].message

    def test_wait_in_while_is_clean(self):
        assert rule_ids(self.WAITER % """
            def block(self) -> None:
                with self._lock:
                    while not self.ready:
                        self._cond.wait()
        """) == []


class TestEnvReadRule:
    def test_environ_read_outside_options_is_flagged(self):
        source = """
            import os

            TOKEN = os.environ["REPRO_TOKEN"]
            MODE = os.environ.get("REPRO_MODE")
            HOME = os.getenv("REPRO_HOME")
            """
        # Repo-wide: fires from any package, not just the service zone.
        for path in (SERVICE_PATH, "src/repro/perf/snippet.py"):
            assert rule_ids(source, path=path) == ["REPRO011"] * 3

    def test_options_module_is_the_sanctioned_home(self):
        assert rule_ids("""
            import os

            MODE = os.environ.get("REPRO_MODE")
            """, path="src/repro/exec/options.py") == []


class TestBlockingUnderLockRule:
    RUNNER = """
        import time

        from repro.utils.sync import make_lock


        class Runner:
            def __init__(self, engine: "ExecutionEngine") -> None:
                self._lock = make_lock("Runner._lock")
                self.engine = engine
        %s
        """

    def test_sleep_under_lock_is_flagged(self):
        violations = check(self.RUNNER % """
            def tick(self) -> None:
                with self._lock:
                    time.sleep(0.1)
        """)
        assert [v.rule_id for v in violations] == ["REPRO012"]
        assert "time.sleep" in violations[0].message

    def test_engine_run_under_lock_is_flagged(self):
        violations = check(self.RUNNER % """
            def flush(self, batch) -> None:
                with self._lock:
                    self.engine.run(batch)
        """)
        assert [v.rule_id for v in violations] == ["REPRO012"]
        assert "engine" in violations[0].message.lower()

    def test_blocking_through_a_helper_is_still_flagged(self):
        violations = check(self.RUNNER % """
            def nap(self) -> None:
                time.sleep(0.1)

            def tick(self) -> None:
                with self._lock:
                    self.nap()
        """)
        assert [v.rule_id for v in violations] == ["REPRO012"]
        assert "Runner.nap" in violations[0].message

    def test_str_join_is_not_thread_join(self):
        # ``join`` blocks only on threads; the type gate must keep
        # ``", ".join(...)`` under a lock out of the findings.
        assert rule_ids(self.RUNNER % """
            def describe(self, parts) -> str:
                with self._lock:
                    return ", ".join(parts)
        """) == []

    def test_condition_wait_releases_its_own_lock(self):
        assert rule_ids("""
            import threading

            from repro.utils.sync import make_lock


            class Waiter:
                def __init__(self) -> None:
                    self._lock = make_lock("Waiter._lock")
                    self._cond = threading.Condition(self._lock)
                    self.ready = False

                def block(self) -> None:
                    with self._lock:
                        while not self.ready:
                            self._cond.wait()
            """) == []

    def test_noqa_escape_hatch(self):
        assert rule_ids(self.RUNNER % """
            def tick(self) -> None:
                with self._lock:
                    time.sleep(0.1)  # repro: noqa[REPRO012]
        """) == []


class TestCatalogue:
    def test_catalogue_lists_every_rule(self):
        text = conc_rule_catalogue()
        for rule in CONC_RULES:
            assert rule.rule_id in text
        assert [rule.rule_id for rule in CONC_RULES] == [
            f"REPRO0{i:02d}" for i in range(8, 13)]
