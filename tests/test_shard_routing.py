"""Routing distribution tests for ``shard_for_key``.

The shard router must spread *real* engine cache keys — sha256
content addresses of (workload, scheme, instructions, seed, config)
tuples — evenly enough that no shard becomes a hot spot, at every
deployment size.  A few hundred distinct design points are routed at
1/2/4/8 shards and each shard's share is bounded; plus the
witness-instrumented proof that cross-shard sweep admission takes the
involved shard locks in ascending shard order.
"""

from repro.analysis.conc import LockOrderWitness
from repro.service import shard_for_key
from tests.test_lock_witness import finish, make_witnessed_pool
from tests.test_service_shards import make_request


def real_cache_keys(count: int = 384):
    """Distinct content keys drawn from the real request space."""
    keys = []
    seed = 0
    schemes = ("conventional", "dmdc", "yla", "bloom")
    workloads = ("gzip", "mcf", "art")
    while len(keys) < count:
        request = make_request(
            seed=seed,
            scheme=schemes[seed % len(schemes)],
            workload=workloads[seed % len(workloads)],
            instructions=600 + 100 * (seed % 5),
        )
        keys.append(request.cache_key())
        seed += 1
    assert len(set(keys)) == count, "cache keys must be distinct points"
    return keys


class TestDistribution:
    def test_single_shard_takes_everything(self):
        assert all(shard_for_key(key, 1) == 0 for key in real_cache_keys(64))

    def test_spread_is_balanced_at_every_deployment_size(self):
        keys = real_cache_keys()
        for shards in (2, 4, 8):
            counts = [0] * shards
            for key in keys:
                counts[shard_for_key(key, shards)] += 1
            expected = len(keys) / shards
            # sha256 over distinct points: every shard populated, none
            # further than 50% from uniform (384 keys, 8 shards ->
            # expected 48 per shard, allowed 24..72 — far wider than
            # the ~7 standard deviations a broken hash would blow).
            assert all(0.5 * expected <= c <= 1.5 * expected
                       for c in counts), (shards, counts)

    def test_routing_is_stable_across_calls(self):
        keys = real_cache_keys(64)
        for shards in (2, 4, 8):
            first = [shard_for_key(key, shards) for key in keys]
            assert first == [shard_for_key(key, shards) for key in keys]


class TestSweepLockOrder:
    def test_sweep_admission_acquires_ascending_shard_locks(self):
        """Witness-instrumented: a sweep spanning shards 0..3 nests the
        per-shard admission locks strictly ascending by shard index."""
        with LockOrderWitness() as witness:
            pool = make_witnessed_pool(4, max_queue=32)
            requests = [make_request(seed=seed) for seed in range(32)]
            homes = {pool.route(r.cache_key()) for r in requests}
            assert homes == {0, 1, 2, 3}, "sweep must span every shard"
            tickets = pool.submit_many(requests)
            assert len(tickets) == len(requests)
            finish(pool)
        shard_edges = sorted(
            (edge.src[1], edge.dst[1]) for edge in witness.edges()
            if edge.src[0] == edge.dst[0] == "MicroBatcher._lock")
        assert shard_edges, "sweep admission never nested shard locks"
        assert all(src < dst for src, dst in shard_edges)
        # The full nesting chain 0 -> 1 -> 2 -> 3 was really held at
        # once: every ascending pair appears.
        assert set(shard_edges) == {(a, b) for a in range(4)
                                    for b in range(a + 1, 4)}
