"""Cycle-exact equivalence of the fast path vs. plain stepping.

The event-horizon cycle skipper (``Processor._maybe_fast_forward``) must be
behaviourally invisible: for every scheme and workload, a run with the fast
path enabled must produce a `to_dict()` payload bit-identical to a run with
``REPRO_NO_FASTPATH=1`` — same cycles, same counters, same histograms.
These tests pin that invariant for every scheme family the simulator
implements, on two workloads with different memory behaviour.  The scheme
matrix is shared with the sanitizer sweep
(:data:`repro.analysis.sanitizer.SCHEME_MATRIX`) so both correctness
suites always cover the same nine points.
"""

import pytest

from repro.analysis.sanitizer import SCHEME_MATRIX as SCHEMES
from repro.sim.config import CONFIG2, SchemeConfig
from repro.sim.processor import NO_FASTPATH_ENV
from repro.sim.runner import run_trace
from repro.workloads import get_workload

BUDGET = 2_500

WORKLOADS = ("gzip", "mcf")

_TRACES = {}


def _trace(name):
    if name not in _TRACES:
        _TRACES[name] = get_workload(name).generate(BUDGET + 2_000)
    return _TRACES[name]


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme_label", sorted(SCHEMES))
def test_fastpath_bit_identical(monkeypatch, workload, scheme_label):
    config = CONFIG2.with_scheme(SCHEMES[scheme_label])
    trace = _trace(workload)

    monkeypatch.delenv(NO_FASTPATH_ENV, raising=False)
    fast = run_trace(config, trace, max_instructions=BUDGET, seed=1)

    monkeypatch.setenv(NO_FASTPATH_ENV, "1")
    slow = run_trace(config, trace, max_instructions=BUDGET, seed=1)

    assert fast.to_dict() == slow.to_dict()


def test_fast_forward_actually_skips(monkeypatch):
    """The skipper must be exercised, not just harmless: a normal run jumps
    over a nonzero number of idle cycles (otherwise these equivalence tests
    would be vacuous)."""
    from repro.sim.processor import Processor

    monkeypatch.delenv(NO_FASTPATH_ENV, raising=False)
    config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
    proc = Processor(config, _trace("mcf"), seed=1)
    proc.prewarm()
    proc.run(BUDGET)
    assert proc.fast_forwarded_cycles > 0


def test_no_fastpath_env_disables_skipping(monkeypatch):
    from repro.sim.processor import Processor

    monkeypatch.setenv(NO_FASTPATH_ENV, "1")
    config = CONFIG2.with_scheme(SchemeConfig(kind="conventional"))
    proc = Processor(config, _trace("gzip"), seed=1)
    proc.prewarm()
    proc.run(BUDGET)
    assert proc.fast_forwarded_cycles == 0


def test_invalidation_injection_disables_fastpath(monkeypatch):
    """The injector draws from the RNG every cycle, so skipping would
    change the random stream; the processor must refuse to fast-forward."""
    from repro.sim.processor import Processor

    monkeypatch.delenv(NO_FASTPATH_ENV, raising=False)
    config = CONFIG2.with_scheme(
        SchemeConfig(kind="dmdc", coherence=True)
    ).with_overrides(invalidation_rate=2.0)
    proc = Processor(config, _trace("gzip"), seed=1)
    assert not proc._fastpath
    proc.prewarm()
    proc.run(BUDGET)
    assert proc.fast_forwarded_cycles == 0
