"""Integration tests for the pipeline on hand-crafted traces."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import SchemeConfig, small_config
from repro.sim.processor import Processor
from repro.sim.runner import run_trace


class TestBasicExecution:
    def test_commits_everything_in_order(self, builder, tiny_config):
        trace = builder.fill(40).build()
        result = run_trace(tiny_config, trace)
        assert result.committed == 40
        assert result.ipc > 0.5

    def test_dependent_chain_is_slower_than_independent(self, tiny_config):
        from tests.conftest import TraceBuilder
        indep = TraceBuilder()
        for i in range(60):
            indep.alu(dst=1 + i % 20)
        chain = TraceBuilder()
        for _ in range(60):
            chain.alu(dst=1, srcs=(1,))
        r_indep = run_trace(tiny_config, indep.build(), prewarm=True)
        r_chain = run_trace(tiny_config, chain.build(), prewarm=True)
        assert r_chain.cycles > r_indep.cycles

    def test_loads_and_stores_commit(self, builder, tiny_config):
        builder.store(0x100).load(0x100, dst=2).fill(20)
        result = run_trace(tiny_config, builder.build())
        assert result.counters["commit.stores"] == 1
        assert result.counters["commit.loads"] == 1

    def test_progress_guard_raises(self, builder, tiny_config, monkeypatch):
        # Breaking an object-path stage method requires the object loop:
        # the SoA kernel never calls it (its guard is pinned separately in
        # test_soa_equivalence.py).
        from repro.sim.soa import NO_SOA_ENV

        monkeypatch.setenv(NO_SOA_ENV, "1")
        trace = builder.fill(10).build()
        proc = Processor(tiny_config, trace)
        proc._stage_fetch = lambda: None  # break the pipeline on purpose
        with pytest.raises(SimulationError, match="no forward progress"):
            proc.run(10, max_cycles=500)

    def test_budget_respected(self, builder, tiny_config):
        trace = builder.fill(100).build()
        result = run_trace(tiny_config, trace, max_instructions=30)
        assert result.committed == 30


class TestForwardingAndRejection:
    def test_store_to_load_forwarding(self, builder, tiny_config):
        # Store with always-ready data, then a load of the same address:
        # the load must forward from the in-flight store.
        builder.fill(4)
        builder.store(0x100)                    # data_src is a base register
        builder.load(0x100, dst=6)
        builder.fill(20)
        result = run_trace(tiny_config, builder.build())
        assert result.counters["load.forwarded"] >= 1

    def test_partial_store_rejects_load(self, builder, tiny_config):
        builder.store(0x100, size=4)            # narrow store
        builder.load(0x100, dst=6, size=8)      # wide load: cannot forward
        builder.fill(20)
        result = run_trace(tiny_config, builder.build())
        assert result.counters["load.rejections"] >= 1
        assert result.committed == len(builder.build())

    def test_slow_store_data_rejects_consumer(self, tiny_config):
        from tests.conftest import TraceBuilder
        b = TraceBuilder()
        from repro.isa.opcodes import InstrClass
        b.alu(dst=5, cls=InstrClass.IDIV)       # 20-cycle data producer
        b.store(0x100, data_src=5)              # address ready, data slow
        b.load(0x100, dst=6)                    # must wait: rejected, retried
        b.fill(30)
        result = run_trace(tiny_config, b.build())
        assert result.counters["load.rejections"] >= 1
        assert result.counters["load.forwarded"] >= 1  # retry succeeds


class TestBranches:
    def test_mispredict_costs_cycles(self, tiny_config):
        from tests.conftest import TraceBuilder
        import itertools
        # Alternating pattern from a single site but with a cold bimodal:
        # early branches mispredict.
        b = TraceBuilder()
        outcomes = itertools.cycle([True, True, True, False])
        for i in range(40):
            b.fill(4, dst_base=3)
            b.branch(taken=next(outcomes), pc=0x5000)
        result = run_trace(tiny_config, b.build(), prewarm=False)
        assert result.counters["bpred.mispredicts"] > 0
        assert result.committed == len(b.build())

    def test_prewarm_trains_predictor(self, tiny_config):
        from tests.conftest import TraceBuilder
        b = TraceBuilder()
        for _ in range(60):
            b.fill(3)
            b.branch(taken=True, pc=0x5000)  # perfectly biased site
        cold = run_trace(tiny_config, b.build(), prewarm=False)
        warm = run_trace(tiny_config, b.build(), prewarm=True)
        assert warm.counters["bpred.mispredicts"] <= cold.counters["bpred.mispredicts"]
        assert warm.cycles <= cold.cycles


class TestResourceStalls:
    def test_rob_fills_under_long_latency(self, tiny_config):
        from tests.conftest import TraceBuilder
        b = TraceBuilder()
        # A load that misses everything, then many independent fillers: the
        # miss blocks commit at the ROB head until the window fills.
        b.load(0x9000, dst=1)
        b.fill(120)
        result = run_trace(tiny_config, b.build(), prewarm=True)
        assert result.counters["stall.rob_full"] > 0

    def test_sq_full_stalls_dispatch(self, tiny_config):
        from tests.conftest import TraceBuilder
        from repro.isa.opcodes import InstrClass
        b = TraceBuilder()
        b.alu(dst=5, cls=InstrClass.IDIV)  # slow data keeps stores uncommittable
        for i in range(20):
            b.store(0x100 + 8 * i, data_src=5)
        b.fill(10)
        result = run_trace(tiny_config, b.build())
        assert result.counters["stall.sq_full"] > 0
        assert result.committed == len(b.build())


class TestCounterSanity:
    def test_cache_counters_populated(self, builder, tiny_config):
        builder.load(0x100).load(0x100 + 64).fill(20)
        result = run_trace(tiny_config, builder.build(), prewarm=False)
        assert result.counters["dcache.accesses"] >= 2
        assert result.counters["icache.accesses"] >= 1

    def test_cycles_equal_result_field(self, builder, tiny_config):
        result = run_trace(tiny_config, builder.fill(30).build())
        assert result.counters["cycles"] == result.cycles

    def test_summary_keys(self, builder, tiny_config):
        result = run_trace(tiny_config, builder.fill(10).build())
        summary = result.summary()
        for key in ("ipc", "cycles", "committed", "replays_per_minstr"):
            assert key in summary
