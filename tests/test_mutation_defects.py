"""Mutation-style self-tests: seeded bugs the tooling must catch.

Each test injects one classic defect into the machinery under test and
asserts the sanitizer (or a probe) flags it.  The built-in ground-truth
checker is blinded first where noted, so the *shadow oracle alone* must
make the catch — proving the sanitizer is not a tautology over the
simulator's own bookkeeping.
"""

import pytest

from repro.analysis.sanitizer import attach_sanitizer
from repro.core.checking_table import CheckingTable
from repro.core.yla import YlaFile
from repro.errors import SanitizerError
from repro.isa.opcodes import InstrClass
from repro.sim.config import SchemeConfig, small_config
from repro.sim.processor import Processor
from tests.conftest import TraceBuilder


def violation_trace(n_fill=30):
    b = TraceBuilder()
    b.fill(4)
    b.alu(dst=10, cls=InstrClass.IDIV)
    b.store(0x800, srcs=(10,), data_src=28)
    b.load(0x800, dst=11)
    b.fill(n_fill)
    return b.build()


def _blind_builtin_checker(monkeypatch):
    """Disable the simulator's own ground-truth violation bookkeeping, so
    only the shadow oracle can catch a premature retirement."""
    monkeypatch.setattr(Processor, "_ground_truth_store_resolve",
                        lambda self, store: None)


def _sanitized_run(config, trace):
    proc = Processor(config, trace)
    sanitizer = attach_sanitizer(proc)
    proc.run(len(trace))
    return sanitizer.report


@pytest.fixture
def dmdc_cfg():
    return small_config(wrongpath_loads=False).with_scheme(
        SchemeConfig(kind="dmdc"))


class TestYlaOffByOne:
    """Seeded bug: the YLA update records ``age - 1`` instead of ``age``.

    A store one position older than the youngest issued load then looks
    safe and skips the LQ search — the exact unsoundness the YLA coverage
    probe exists to catch at the very first load issue."""

    def test_probe_catches(self, monkeypatch, dmdc_cfg):
        original = YlaFile.observe_load_issue

        def off_by_one(self, addr, age):
            original(self, addr, age - 1)

        monkeypatch.setattr(YlaFile, "observe_load_issue", off_by_one)
        _blind_builtin_checker(monkeypatch)
        report = _sanitized_run(dmdc_cfg, violation_trace())
        assert report.probe_failure_count > 0
        assert any("yla[" in f for f in report.probe_failures)

    def test_unmutated_run_is_clean(self, dmdc_cfg):
        report = _sanitized_run(dmdc_cfg, violation_trace())
        assert report.clean


class TestDroppedCheckingTableMark:
    """Seeded bug: an unsafe store commits without setting its WRT bits.

    The premature load then indexes a clear table at commit and retires
    un-replayed.  With the built-in checker blinded, only the shadow
    oracle's associative cross-check reports the missed violation."""

    def test_shadow_oracle_catches(self, monkeypatch, dmdc_cfg):
        def dropped_mark(self, addr, size):
            self.writes += 1
            return self.index(addr)  # index computed, bits never set

        monkeypatch.setattr(CheckingTable, "mark_store", dropped_mark)
        _blind_builtin_checker(monkeypatch)
        report = _sanitized_run(dmdc_cfg, violation_trace())
        assert report.missed_violations > 0
        assert any("retired despite premature issue" in d
                   for d in report.missed_details)
        assert not report.clean

    def test_strict_mode_raises(self, monkeypatch, dmdc_cfg):
        def dropped_mark(self, addr, size):
            self.writes += 1
            return self.index(addr)

        monkeypatch.setattr(CheckingTable, "mark_store", dropped_mark)
        _blind_builtin_checker(monkeypatch)
        proc = Processor(dmdc_cfg, violation_trace())
        attach_sanitizer(proc, strict=True)
        with pytest.raises(SanitizerError):
            proc.run(200)


class TestBlindTableRead:
    """Seeded bug: ``check_load`` never sees a WRT hit (dropped read).

    Distinct from the dropped mark — the table holds the truth but the
    commit-time check ignores it; same observable unsoundness."""

    def test_shadow_oracle_catches(self, monkeypatch, dmdc_cfg):
        def blind_read(self, addr, size):
            self.reads += 1
            return CheckingTable.CLEAR

        monkeypatch.setattr(CheckingTable, "check_load", blind_read)
        _blind_builtin_checker(monkeypatch)
        report = _sanitized_run(dmdc_cfg, violation_trace())
        assert report.missed_violations > 0


class TestOverRollback:
    """Seeded bug: squash repair pulls YLA registers far below the kept
    age, forgetting live loads — rollback must clamp to *exactly*
    ``min(old, kept)``; the exactness probe flags both directions."""

    def test_probe_catches(self, monkeypatch, dmdc_cfg):
        def over_rollback(self, last_kept_age):
            for i in range(self.num_registers):
                if self._ages[i] > last_kept_age - 50:
                    self._ages[i] = last_kept_age - 50

        monkeypatch.setattr(YlaFile, "rollback", over_rollback)
        _blind_builtin_checker(monkeypatch)
        # The crafted violation forces a replay squash, which triggers the
        # mutated rollback and the exactness check.
        report = _sanitized_run(dmdc_cfg, violation_trace())
        assert report.probe_failure_count > 0
        assert any("rollback" in f for f in report.probe_failures)


class TestBuiltinCheckerCrossValidation:
    """Blinding the built-in checker alone (no scheme defect) must surface
    as oracle divergence — the shadow oracle flags the violation the
    built-in bookkeeping no longer records — while the scheme's own replay
    keeps the run sound."""

    def test_divergence_detected(self, monkeypatch, dmdc_cfg):
        _blind_builtin_checker(monkeypatch)
        report = _sanitized_run(dmdc_cfg, violation_trace())
        assert report.oracle_divergence > 0
        assert report.missed_violations == 0
