"""Request hashing, result serialization, and the disk result cache."""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.exec.cache import ResultCache
from repro.exec.request import CACHE_SCHEMA_VERSION, RunRequest, simulator_fingerprint
from repro.sim.config import CONFIG2, MachineConfig, SchemeConfig, small_config
from repro.sim.result import SimulationResult
from repro.sim.runner import run_workload
from repro.stats.counters import CounterSet, Histogram
from repro.workloads import get_workload


def _tiny_result() -> SimulationResult:
    config = small_config(wrongpath_loads=False)
    return run_workload(config, get_workload("gzip"), max_instructions=900)


class TestSerializationRoundTrip:
    def test_counter_set(self):
        c = CounterSet()
        c.bump("a", 3)
        c.bump("b.c", 7)
        again = CounterSet.from_dict(json.loads(json.dumps(c.as_dict())))
        assert again == c
        assert CounterSet() == CounterSet.from_dict({"zeroed": 0})

    def test_histogram(self):
        h = Histogram()
        h.add(3, 2)
        h.add(11)
        again = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
        assert again == h
        assert again.mean == h.mean and again.count == h.count

    def test_simulation_result_round_trips_exactly(self):
        result = _tiny_result()
        payload = json.loads(json.dumps(result.to_dict()))
        again = SimulationResult.from_dict(payload)
        assert again == result
        assert again.summary() == result.summary()
        assert again.false_replay_breakdown() == result.false_replay_breakdown()


def _perturbed(value, name):
    """A different-but-valid value for a config field."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value * 2 if value else 64
    if isinstance(value, float):
        return value + 0.25
    if isinstance(value, str):
        return "dmdc" if name == "kind" else value + "x"
    if value is None:
        return 512
    return value


class TestCacheKey:
    def test_stable_within_process(self):
        req = RunRequest(CONFIG2, "gzip", 5000, 1)
        assert req.cache_key() == RunRequest(CONFIG2, "gzip", 5000, 1).cache_key()

    def test_stable_across_processes(self):
        req = RunRequest(CONFIG2, "gzip", 5000, 1)
        src = Path(repro.__file__).resolve().parents[1]
        script = (
            "from repro.exec.request import RunRequest\n"
            "from repro.sim.config import CONFIG2\n"
            "print(RunRequest(CONFIG2, 'gzip', 5000, 1).cache_key())\n"
        )
        env = dict(os.environ, PYTHONPATH=str(src))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == req.cache_key()

    def test_every_machine_field_changes_key(self):
        base = RunRequest(CONFIG2, "gzip", 5000, 1).cache_key()
        for f in dataclasses.fields(MachineConfig):
            if f.name == "scheme":
                continue
            value = getattr(CONFIG2, f.name)
            changed = CONFIG2.with_overrides(**{f.name: _perturbed(value, f.name)})
            key = RunRequest(changed, "gzip", 5000, 1).cache_key()
            assert key != base, f"MachineConfig.{f.name} did not affect the key"

    def test_every_scheme_field_changes_key(self):
        scheme = SchemeConfig()
        base = RunRequest(CONFIG2.with_scheme(scheme), "gzip", 5000, 1).cache_key()
        for f in dataclasses.fields(SchemeConfig):
            value = getattr(scheme, f.name)
            changed = dataclasses.replace(scheme, **{f.name: _perturbed(value, f.name)})
            key = RunRequest(CONFIG2.with_scheme(changed), "gzip", 5000, 1).cache_key()
            assert key != base, f"SchemeConfig.{f.name} did not affect the key"

    def test_workload_budget_seed_change_key(self):
        base = RunRequest(CONFIG2, "gzip", 5000, 1)
        assert RunRequest(CONFIG2, "vpr", 5000, 1).cache_key() != base.cache_key()
        assert RunRequest(CONFIG2, "gzip", 6000, 1).cache_key() != base.cache_key()
        assert RunRequest(CONFIG2, "gzip", 5000, 2).cache_key() != base.cache_key()

    def test_fingerprint_is_part_of_key(self, monkeypatch):
        base = RunRequest(CONFIG2, "gzip", 5000, 1).cache_key()
        monkeypatch.setattr("repro.exec.request.simulator_fingerprint",
                            lambda: "different-sim")
        assert RunRequest(CONFIG2, "gzip", 5000, 1).cache_key() != base

    def test_fingerprint_shape(self):
        fp = simulator_fingerprint()
        assert isinstance(fp, str) and len(fp) == 16


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        req = RunRequest(small_config(wrongpath_loads=False), "gzip", 900, 1)
        assert cache.get(req) is None
        result = _tiny_result()
        cache.put(req, result)
        assert len(cache) == 1
        assert cache.get(req) == result

    def test_respects_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "envcache"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        req = RunRequest(small_config(wrongpath_loads=False), "gzip", 900, 1)
        cache.put(req, _tiny_result())
        path = cache.path_for(req.cache_key())
        path.write_text("{not json")
        assert cache.get(req) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        req = RunRequest(small_config(wrongpath_loads=False), "gzip", 900, 1)
        cache.put(req, _tiny_result())
        path = cache.path_for(req.cache_key())
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(req) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        req = RunRequest(small_config(wrongpath_loads=False), "gzip", 900, 1)
        cache.put(req, _tiny_result())
        assert cache.clear() == 1
        assert len(cache) == 0
