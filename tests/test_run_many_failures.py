"""Failure paths of the engine's batched execution (``run_many``).

Two contracts under test:

* **serial fallback** — when an in-process ``run_many`` batch dies, the
  engine re-runs the batch one request at a time, so every healthy
  batch-mate still completes (and is memoized) and the error names the
  exact design point that poisoned the batch;
* **pool dispatch** — the contiguous-slice path attributes a worker
  failure to the slice's jobs, including the hard case where the worker
  *process* dies outright rather than raising.
"""

import multiprocessing
import os

import pytest

from repro.errors import SimulationError
from repro.exec.engine import ExecutionEngine
from repro.exec.request import RunRequest
from repro.sim.config import small_config

BUDGET = 700


def _req(workload="gzip", seed=1, **overrides):
    return RunRequest(small_config(wrongpath_loads=False, **overrides),
                      workload, BUDGET, seed)


def _crash_batch(requests):
    """Replacement for ``_execute_batch`` that kills the worker process
    dead — no exception, no cleanup, exactly like a segfault or OOM kill."""
    os._exit(13)


class TestSerialFallback:
    def test_poisoned_batch_falls_back_per_request(self):
        """One bad element must not take its batch-mates down: the good
        points complete (and memoize) before the poison is reported."""
        good, poisoned = _req("gzip"), _req("no-such-workload")
        with ExecutionEngine(cache=None, max_workers=1) as engine:
            with pytest.raises(SimulationError,
                               match="no-such-workload") as excinfo:
                engine.run([good, poisoned])
            # The per-request retry names the poisoned point alone, not
            # the whole batch (the pool path's "within batch [...]" form).
            assert "simulation failed for" in str(excinfo.value)
            assert "within batch" not in str(excinfo.value)
            # The healthy batch-mate was executed and memoized on the way.
            assert engine.stats.executed == 1
            result = engine.run([good])[0]
            assert engine.stats.memo_hits == 1
            assert engine.stats.executed == 1  # no re-simulation
            assert result.workload == "gzip"

    def test_fallback_result_matches_clean_batch(self):
        """The per-request fallback path produces bit-identical results
        to an undisturbed batch (same seed discipline either way)."""
        good = _req("swim", seed=5)
        with ExecutionEngine(cache=None, max_workers=1) as clean:
            expected = clean.run([good])[0]
        with ExecutionEngine(cache=None, max_workers=1) as engine:
            with pytest.raises(SimulationError):
                engine.run([good, _req("no-such-workload")])
            assert engine.run([good])[0] == expected


class TestPoolDispatch:
    def test_contiguous_slices_preserve_order_and_results(self):
        """Five unique points over two workers split into ceil-sized
        contiguous slices; results must come back request-ordered and
        bit-identical to the serial path."""
        requests = [_req(workload, seed=seed)
                    for workload, seed in [("gzip", 1), ("gzip", 2),
                                           ("swim", 1), ("mcf", 1),
                                           ("mcf", 2)]]
        with ExecutionEngine(cache=None, max_workers=1) as serial:
            expected = serial.run(requests)
        with ExecutionEngine(cache=None, max_workers=2) as pooled:
            actual = pooled.run(requests)
            assert pooled.stats.executed == len(requests)
        assert actual == expected

    def test_offload_forces_pool_for_singleton_batches(self):
        """The sharded service's ``offload`` flag: even a one-point batch
        runs on a worker process, and the answer is still bit-identical
        to the in-process path."""
        request = _req("gzip", seed=9)
        with ExecutionEngine(cache=None, max_workers=1) as inprocess:
            expected = inprocess.run([request])[0]
        with ExecutionEngine(cache=None, max_workers=1,
                             offload=True) as offloaded:
            actual = offloaded.run([request])[0]
            assert offloaded.stats.executed == 1
        assert actual == expected

    @pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                        reason="the crash stub reaches workers by fork "
                               "inheritance")
    def test_worker_crash_names_the_slice_jobs(self, monkeypatch):
        """A worker that dies without raising (os._exit) must surface as
        SimulationError naming the slice's jobs, not hang or leak a
        broken pool into later runs."""
        monkeypatch.setattr("repro.exec.engine._execute_batch", _crash_batch)
        requests = [_req("gzip", seed=seed) for seed in range(4)]
        with ExecutionEngine(cache=None, max_workers=2) as engine:
            with pytest.raises(SimulationError,
                               match="within batch") as excinfo:
                engine.run(requests)
            assert "gzip" in str(excinfo.value)
        # A fresh engine (new pool) is unaffected by the crashed one.
        monkeypatch.undo()
        with ExecutionEngine(cache=None, max_workers=2) as engine:
            results = engine.run(requests)
            assert len(results) == 4
