"""Shadow-oracle sanitizer: unit tests and crafted-trace scenarios.

The oracle half is tested directly on synthetic event streams; the
integration half drives real pipelines over hand-built traces whose
ordering outcome is known by construction (same crafted violation as
``test_processor_replay``), checking that the sanitizer sees the
violation, classifies the replay, and stays bit-invisible.
"""

import pytest

from repro.analysis.sanitizer import (
    MemoryOrderSanitizer,
    SanitizerReport,
    attach_sanitizer,
    run_sanitized,
)
from repro.analysis.shadow import ShadowLSQ
from repro.errors import SanitizerError
from repro.isa.opcodes import InstrClass
from repro.sim.config import SchemeConfig, small_config
from repro.sim.processor import Processor
from repro.sim.runner import run_trace
from tests.conftest import TraceBuilder


class FakeOp:
    """Minimal stand-in with the fields the shadow oracle reads."""

    def __init__(self, seq, addr, size=8, forward_store_seq=-1):
        self.seq = seq
        self.addr = addr
        self.size = size
        self.forward_store_seq = forward_store_seq


class TestShadowLSQ:
    def test_premature_overlapping_load_flagged(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(5, 0x100), cycle=10)
        flagged = lsq.store_resolved(FakeOp(3, 0x100), cycle=20)
        assert [rec.seq for rec in flagged] == [5]
        assert lsq.loads[5].violated_by == 3
        assert lsq.violations_flagged == 1

    def test_disjoint_addresses_clean(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(5, 0x200), cycle=10)
        assert lsq.store_resolved(FakeOp(3, 0x100), cycle=20) == []

    def test_partial_overlap_flagged(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(5, 0x104, size=8), cycle=10)
        assert len(lsq.store_resolved(FakeOp(3, 0x100, size=8), cycle=20)) == 1

    def test_older_load_not_flagged(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(2, 0x100), cycle=10)
        assert lsq.store_resolved(FakeOp(3, 0x100), cycle=20) == []

    def test_forwarding_cover_exempts(self):
        """A load fed by a younger fully-covering store never read stale
        data, however late an older store resolves."""
        lsq = ShadowLSQ()
        lsq.store_resolved(FakeOp(4, 0x100, size=8), cycle=5)
        lsq.load_issued(FakeOp(5, 0x100, size=8, forward_store_seq=4), cycle=10)
        assert lsq.store_resolved(FakeOp(3, 0x100, size=8), cycle=20) == []

    def test_partial_forwarding_does_not_exempt(self):
        lsq = ShadowLSQ()
        lsq.store_resolved(FakeOp(4, 0x100, size=4), cycle=5)
        lsq.load_issued(FakeOp(5, 0x100, size=8, forward_store_seq=4), cycle=10)
        assert len(lsq.store_resolved(FakeOp(3, 0x100, size=8), cycle=20)) == 1

    def test_already_flagged_not_recounted(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(5, 0x100), cycle=10)
        lsq.store_resolved(FakeOp(3, 0x100), cycle=20)
        assert lsq.store_resolved(FakeOp(2, 0x100), cycle=21) == []
        assert lsq.violations_flagged == 1

    def test_squash_removes_younger(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(5, 0x100), cycle=10)
        lsq.store_resolved(FakeOp(6, 0x200), cycle=11)
        lsq.load_issued(FakeOp(7, 0x300), cycle=12)
        lsq.squash_younger(5)
        assert sorted(lsq.loads) == [5]
        assert sorted(lsq.stores) == []

    def test_pending_violation_query(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(5, 0x100), cycle=10)
        lsq.store_resolved(FakeOp(3, 0x100), cycle=20)
        assert lsq.pending_violation_at_or_after(4)
        assert lsq.pending_violation_at_or_after(5)
        assert not lsq.pending_violation_at_or_after(6)

    def test_commit_pops(self):
        lsq = ShadowLSQ()
        lsq.load_issued(FakeOp(5, 0x100), cycle=10)
        lsq.store_resolved(FakeOp(3, 0x100), cycle=1)
        lsq.load_committed(5)
        lsq.store_committed(3)
        assert len(lsq) == 0


def violation_trace(n_fill=30):
    b = TraceBuilder()
    b.fill(4)
    b.alu(dst=10, cls=InstrClass.IDIV)          # slow address producer
    b.store(0x800, srcs=(10,), data_src=28)     # resolves ~20 cycles late
    b.load(0x800, dst=11)                       # issues immediately: premature
    b.fill(n_fill)
    return b.build()


class TestCraftedScenarios:
    def test_conventional_execution_time_replay_classified(self, tiny_config):
        result, report = run_sanitized(tiny_config, violation_trace())
        assert report.oracle_violations >= 1
        assert report.true_replays >= 1
        assert report.missed_violations == 0
        assert report.oracle_divergence == 0
        assert report.clean
        assert result.counters["replays.execution_time"] >= 1

    def test_dmdc_commit_time_replay_classified(self, dmdc_config):
        result, report = run_sanitized(dmdc_config, violation_trace())
        assert report.oracle_violations >= 1
        assert report.true_replays >= 1
        assert report.missed_violations == 0
        assert report.clean
        assert result.counters["replays.commit_time"] >= 1

    def test_forwarded_load_not_flagged(self, tiny_config):
        b = TraceBuilder()
        b.alu(dst=5)
        b.store(0x100, data_src=5)
        b.load(0x100, dst=6)
        b.fill(20)
        _, report = run_sanitized(tiny_config, b.build())
        assert report.oracle_violations == 0
        assert report.clean

    def test_result_bit_identical_to_plain_run(self, dmdc_config):
        trace = violation_trace()
        sanitized, _ = run_sanitized(dmdc_config, trace)
        plain = run_trace(dmdc_config, trace)
        assert sanitized.to_dict() == plain.to_dict()

    def test_oracle_agrees_with_builtin_ground_truth(self, tiny_config):
        _, report = run_sanitized(tiny_config, violation_trace())
        assert report.oracle_divergence == 0


class TestAttachment:
    def test_attach_after_start_rejected(self, tiny_config):
        trace = TraceBuilder().fill(40).build()
        proc = Processor(tiny_config, trace)
        proc.run(10)
        with pytest.raises(SanitizerError):
            attach_sanitizer(proc)

    def test_wrapper_passes_through_scheme_surface(self, dmdc_config):
        trace = TraceBuilder().fill(10).build()
        proc = Processor(dmdc_config, trace)
        inner = proc.scheme
        sanitizer = attach_sanitizer(proc)
        assert proc.scheme is sanitizer
        assert sanitizer.name == inner.name
        assert sanitizer.stats is inner.stats
        assert sanitizer.uses_associative_lq == inner.uses_associative_lq

    def test_missing_attribute_raises_cleanly(self, tiny_config):
        trace = TraceBuilder().fill(10).build()
        proc = Processor(tiny_config, trace)
        sanitizer = attach_sanitizer(proc)
        with pytest.raises(AttributeError):
            sanitizer.no_such_attribute


class TestReport:
    def test_as_dict_round_trip(self, tiny_config):
        _, report = run_sanitized(tiny_config, violation_trace())
        payload = report.as_dict()
        assert payload["clean"] is True
        assert payload["oracle_violations"] == report.oracle_violations
        assert payload["events_checked"] > 0
        assert payload["probe_checks"] > 0

    def test_format_mentions_verdict(self, tiny_config):
        _, report = run_sanitized(tiny_config, violation_trace())
        assert "CLEAN" in report.format()

    def test_defective_report_formats_details(self):
        report = SanitizerReport("fake")
        report.missed_violations = 1
        report.missed_details.append("load seq=7 retired prematurely")
        assert not report.clean
        text = report.format()
        assert "DEFECTIVE" in text and "seq=7" in text

    def test_strict_mode_raises_on_missed(self):
        class _Inner:
            name = "fake"

        sanitizer = MemoryOrderSanitizer.__new__(MemoryOrderSanitizer)
        sanitizer.inner = _Inner()
        sanitizer.strict = True
        sanitizer.report = SanitizerReport("fake")
        with pytest.raises(SanitizerError):
            sanitizer._missed("injected")
