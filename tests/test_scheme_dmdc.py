"""Unit tests for the DMDC scheme driven by hand-crafted events."""

from repro.backend.dyninst import DynInstr
from repro.core.schemes.base import CommitDecision
from repro.core.schemes.dmdc import DmdcScheme
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass


def mk_store(seq, addr, size=8):
    uop = MicroOp(0x100, InstrClass.STORE, mem_addr=addr, mem_size=size, data_src=1)
    d = DynInstr(uop, seq, seq, False)
    return d


def mk_load(seq, addr, size=8, issue_cycle=1, safe=False):
    uop = MicroOp(0x200, InstrClass.LOAD, mem_addr=addr, mem_size=size, dst=2)
    d = DynInstr(uop, seq, seq, False)
    d.issue_cycle = issue_cycle
    d.safe = safe
    return d


def mk_alu(seq):
    d = DynInstr(MicroOp(0x300, InstrClass.IALU, srcs=(28,), dst=3), seq, seq, False)
    return d


def resolve(scheme, store, cycle=0):
    store.resolve_cycle = cycle
    store.issue_cycle = cycle
    return scheme.on_store_resolve(store, cycle)


class TestSafetyClassification:
    def test_store_safe_without_younger_loads(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(3, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        assert not store.unsafe_store
        assert s.stats["stores.safe"] == 1

    def test_store_unsafe_with_younger_issued_load(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        assert store.unsafe_store
        assert store.window_end == 9
        assert s.stats["stores.unsafe"] == 1

    def test_never_requests_execution_time_replay(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(9, 0x100), 0)
        assert resolve(s, mk_store(5, 0x100)) is None


class TestCheckingWindow:
    def test_window_opens_at_unsafe_store_commit(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        assert not s.checking_active
        s.on_commit(store, 10)
        assert s.checking_active

    def test_window_terminates_past_boundary(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        s.on_commit(store, 10)
        for seq in (6, 7, 8):
            assert s.on_commit(mk_alu(seq), 11) == CommitDecision.OK
            assert s.checking_active
        s.on_commit(mk_alu(9), 12)   # boundary reached
        assert not s.checking_active
        assert s.table.marked_count == 0  # flash-cleared

    def test_load_in_window_same_address_replays(self):
        s = DmdcScheme()
        premature = mk_load(9, 0x100)
        s.on_load_issue(premature, 0)
        store = mk_store(5, 0x100)
        resolve(s, store, cycle=3)
        s.on_commit(store, 10)
        assert s.on_commit(premature, 11) == CommitDecision.REPLAY
        assert s.stats["loads.checked"] == 1

    def test_disjoint_load_in_window_passes(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        s.on_commit(store, 10)
        assert s.on_commit(mk_load(8, 0x4000), 11) == CommitDecision.OK

    def test_safe_load_bypasses_checking(self):
        s = DmdcScheme(safe_loads=True)
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        s.on_commit(store, 10)
        safe = mk_load(8, 0x100, safe=True)
        assert s.on_commit(safe, 11) == CommitDecision.OK
        assert s.stats["loads.safe_bypassed"] == 1

    def test_safe_load_checked_when_optimisation_off(self):
        s = DmdcScheme(safe_loads=False)
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store, cycle=3)
        s.on_commit(store, 10)
        safe = mk_load(8, 0x100, safe=True)
        assert s.on_commit(safe, 11) == CommitDecision.REPLAY

    def test_window_stats_recorded(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        s.on_commit(store, 10)
        s.on_commit(mk_load(7, 0x4000), 11)
        s.on_commit(mk_alu(9), 12)
        assert s.window_instrs.count == 1
        assert s.window_loads.mean == 1.0
        assert s.window_unsafe_stores.mean == 1.0

    def test_finalize_closes_open_window(self):
        s = DmdcScheme()
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        s.on_commit(store, 10)
        s.finalize(20)
        assert not s.checking_active
        assert s.stats["windows.closed"] == 1


class TestGlobalVsLocal:
    def _unsafe_store(self, scheme, seq, addr, youngest):
        scheme.on_load_issue(mk_load(youngest, addr), 0)
        store = mk_store(seq, addr)
        resolve(scheme, store)
        return store

    def test_global_end_pushed_at_issue(self):
        s = DmdcScheme(local=False)
        s1 = self._unsafe_store(s, 5, 0x100, youngest=9)
        # A second unsafe store pushes the global register before committing.
        s2 = self._unsafe_store(s, 7, 0x200, youngest=30)
        s.on_commit(s1, 10)
        # Window now extends to 30 even though s2 has not committed.
        s.on_commit(mk_alu(9), 11)
        assert s.checking_active

    def test_local_end_only_at_commit(self):
        s = DmdcScheme(local=True)
        s1 = self._unsafe_store(s, 5, 0x100, youngest=9)
        self._unsafe_store(s, 7, 0x200, youngest=30)  # never commits
        s.on_commit(s1, 10)
        s.on_commit(mk_alu(9), 11)   # s1's own boundary
        assert not s.checking_active

    def test_local_window_extends_on_second_commit(self):
        s = DmdcScheme(local=True)
        s1 = self._unsafe_store(s, 5, 0x100, youngest=9)
        s2 = self._unsafe_store(s, 7, 0x200, youngest=30)
        s.on_commit(s1, 10)
        s.on_commit(s2, 11)
        s.on_commit(mk_alu(9), 12)
        assert s.checking_active  # boundary is now 30


class TestReplayClassification:
    def _window_with_store(self, s, store_seq=5, addr=0x100, youngest=9,
                           resolve_cycle=5):
        s.on_load_issue(mk_load(youngest, addr), 0)
        store = mk_store(store_seq, addr)
        store.resolve_cycle = resolve_cycle
        store.issue_cycle = resolve_cycle
        s.on_store_resolve(store, resolve_cycle)
        s.on_commit(store, 10)
        return store

    def test_true_replay(self):
        s = DmdcScheme()
        self._window_with_store(s)
        victim = mk_load(8, 0x100, issue_cycle=1)
        victim.true_violation_store = 5
        assert s.on_commit(victim, 11) == CommitDecision.REPLAY
        assert s.stats["replay.true"] == 1
        assert s.stats["replay.false"] == 0

    def test_addr_match_in_window_is_X(self):
        s = DmdcScheme()
        self._window_with_store(s, resolve_cycle=5)
        # Issued AFTER the store resolved, inside the window: timing approx.
        late = mk_load(8, 0x100, issue_cycle=9)
        assert s.on_commit(late, 11) == CommitDecision.REPLAY
        assert s.stats["replay.false.addr.X"] == 1

    def test_addr_match_outside_window_is_Y(self):
        s = DmdcScheme()
        self._window_with_store(s, youngest=7, resolve_cycle=5)
        # seq 8 > boundary 7: only checked because the window merged/stayed.
        stray = mk_load(8, 0x100, issue_cycle=9)
        s._active_end = 20  # simulate a merged, extended window
        assert s.on_commit(stray, 11) == CommitDecision.REPLAY
        assert s.stats["replay.false.addr.Y"] == 1

    def test_hash_conflict_before_store(self):
        s = DmdcScheme(table_entries=16)
        store = self._window_with_store(s, resolve_cycle=5)
        alias = next(
            qw * 8 for qw in range(1 << 12)
            if qw * 8 != 0x100 and s.table.index(qw * 8) == s.table.index(0x100)
        )
        early = mk_load(8, alias, issue_cycle=2)  # issued before store resolved
        assert s.on_commit(early, 11) == CommitDecision.REPLAY
        assert s.stats["replay.false.hash.before"] == 1

    def test_hash_conflict_after_store_in_window(self):
        s = DmdcScheme(table_entries=16)
        self._window_with_store(s, resolve_cycle=5)
        alias = next(
            qw * 8 for qw in range(1 << 12)
            if qw * 8 != 0x100 and s.table.index(qw * 8) == s.table.index(0x100)
        )
        late = mk_load(8, alias, issue_cycle=9)
        assert s.on_commit(late, 11) == CommitDecision.REPLAY
        assert s.stats["replay.false.hash.X"] == 1


class TestCoherence:
    def test_invalidation_filtered_when_no_inflight_loads(self):
        s = DmdcScheme(coherence=True)
        s.on_invalidation(0x1000, 128, 0, oldest_inflight_seq=100)
        assert s.stats["inv.filtered"] == 1
        assert not s.checking_active

    def test_invalidation_opens_window(self):
        s = DmdcScheme(coherence=True)
        s.on_load_issue(mk_load(9, 0x1008), 0)
        s.on_invalidation(0x1000, 128, 1, oldest_inflight_seq=3)
        assert s.checking_active
        assert s.stats["inv.marked"] == 1

    def test_second_load_to_invalidated_line_replays(self):
        s = DmdcScheme(coherence=True)
        s.on_load_issue(mk_load(9, 0x1008), 0)
        s.on_invalidation(0x1000, 128, 1, oldest_inflight_seq=3)
        first = mk_load(7, 0x1008, issue_cycle=2)
        assert s.on_commit(first, 5) == CommitDecision.OK   # promotes
        second = mk_load(8, 0x1008, issue_cycle=3)
        assert s.on_commit(second, 6) == CommitDecision.REPLAY
        assert s.stats["replay.false.inv"] == 1

    def test_line_yla_makes_store_safe(self):
        """With two YLA sets a store is safe when either records an older age."""
        s = DmdcScheme(coherence=True)
        # A younger load to the same line but a different quad word: the
        # word-interleaved register for the store's bank stays old.
        s.on_load_issue(mk_load(9, 0x1008), 0)
        store = mk_store(5, 0x1000 + 8 * 3)
        resolve(s, store)
        # line register says unsafe, word register says safe -> safe overall
        assert not store.unsafe_store


class TestCheckingQueueMode:
    def test_exact_match_replays(self):
        s = DmdcScheme(checking_queue_entries=4)
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store, cycle=3)
        s.on_commit(store, 10)
        assert s.on_commit(mk_load(8, 0x100, issue_cycle=5), 11) == CommitDecision.REPLAY

    def test_no_hash_conflicts(self):
        s = DmdcScheme(checking_queue_entries=4)
        s.on_load_issue(mk_load(9, 0x100), 0)
        store = mk_store(5, 0x100)
        resolve(s, store)
        s.on_commit(store, 10)
        assert s.on_commit(mk_load(8, 0x77770, issue_cycle=5), 11) == CommitDecision.OK

    def test_overflow_forces_replay(self):
        s = DmdcScheme(checking_queue_entries=1)
        for seq, youngest in ((3, 40), (5, 41)):
            s.on_load_issue(mk_load(youngest, 0x100 + seq * 64), 0)
            store = mk_store(seq, 0x100 + seq * 64)
            resolve(s, store)
            s.on_commit(store, 10)
        load = mk_load(30, 0x9000, issue_cycle=5)
        assert s.on_commit(load, 12) == CommitDecision.REPLAY
        assert s.stats["replay.overflow"] == 1


class TestNames:
    def test_variant_names(self):
        assert DmdcScheme().name == "dmdc-global"
        assert DmdcScheme(local=True).name == "dmdc-local"
        assert "queue" in DmdcScheme(checking_queue_entries=8).name
        assert "coherent" in DmdcScheme(coherence=True).name
