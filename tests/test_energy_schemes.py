"""Energy-model coverage of the scheme-specific LQ accounting paths."""

import pytest

from repro.energy.model import EnergyModel
from repro.sim.config import CONFIG2, SchemeConfig, small_config
from repro.sim.runner import run_workload
from repro.workloads import get_workload

BUDGET = 3_000


@pytest.fixture(scope="module")
def by_scheme():
    out = {}
    for kind, extra in [
        ("conventional", {}),
        ("yla", {}),
        ("bloom", {"bloom_entries": 256}),
        ("dmdc", {}),
        ("dmdc_queue", {}),
        ("garg", {}),
        ("value", {}),
    ]:
        if kind == "dmdc_queue":
            scheme = SchemeConfig(kind="dmdc", checking_queue_entries=16)
        else:
            scheme = SchemeConfig(kind=kind, **extra)
        cfg = CONFIG2.with_scheme(scheme)
        out[kind] = (cfg, run_workload(cfg, get_workload("vpr"),
                                       max_instructions=BUDGET))
    return out


class TestLqDetailPaths:
    def test_yla_detail_includes_register_overhead(self, by_scheme):
        cfg, result = by_scheme["yla"]
        detail = EnergyModel(cfg).evaluate(result).lq_detail
        assert "yla" in detail and detail["yla"] > 0
        assert "search" in detail

    def test_bloom_detail_includes_filter_array(self, by_scheme):
        cfg, result = by_scheme["bloom"]
        detail = EnergyModel(cfg).evaluate(result).lq_detail
        assert "bloom" in detail and detail["bloom"] > 0

    def test_dmdc_queue_detail_includes_cam(self, by_scheme):
        cfg, result = by_scheme["dmdc_queue"]
        detail = EnergyModel(cfg).evaluate(result).lq_detail
        assert "queue" in detail and detail["queue"] > 0
        assert "table" in detail and detail["table"] == 0  # no hash table used

    def test_garg_detail_is_table_only(self, by_scheme):
        cfg, result = by_scheme["garg"]
        detail = EnergyModel(cfg).evaluate(result).lq_detail
        assert set(detail) == {"table"}
        assert detail["table"] > 0

    def test_value_detail_is_reexecution_only(self, by_scheme):
        cfg, result = by_scheme["value"]
        detail = EnergyModel(cfg).evaluate(result).lq_detail
        assert set(detail) == {"reexecution"}
        assert detail["reexecution"] > 0


class TestCrossSchemeOrdering:
    def test_paper_section7_energy_ordering(self, by_scheme):
        """DMDC < Garg < value < yla-filtered < conventional (LQ cost)."""
        lq = {}
        for kind in ("conventional", "yla", "dmdc", "garg", "value"):
            cfg, result = by_scheme[kind]
            lq[kind] = EnergyModel(cfg).evaluate(result).lq
        assert lq["dmdc"] < lq["garg"] < lq["value"] < lq["yla"] < lq["conventional"]

    def test_filtered_stores_reduce_search_energy(self, by_scheme):
        cfg_b, base = by_scheme["conventional"]
        cfg_y, yla = by_scheme["yla"]
        model = EnergyModel(cfg_b)
        assert (model.evaluate(yla).lq_detail["search"]
                < model.evaluate(base).lq_detail["search"])

    def test_total_energy_ordering_tracks_lq(self, by_scheme):
        cfg_b, base = by_scheme["conventional"]
        cfg_d, dmdc = by_scheme["dmdc"]
        model = EnergyModel(cfg_b)
        assert model.evaluate(dmdc).total < model.evaluate(base).total
