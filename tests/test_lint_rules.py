"""Unit tests for the ``repro check --static`` rule catalogue.

Each rule gets a minimal violating snippet (the lint-side "seeded bug"),
a clean counterpart, and a suppression check; the final test pins the
acceptance criterion that the repository itself lints clean.
"""

import pytest

from repro.analysis.lint import (
    RULES,
    format_violations,
    lint_paths,
    lint_source,
    rule_catalogue,
)

ZONE = "src/repro/sim/snippet.py"
OUTSIDE = "src/repro/reporting.py"
HOT = "src/repro/lsq/queues.py"
SCHEMES = "src/repro/core/schemes/snippet.py"


def ids(violations):
    return sorted({v.rule_id for v in violations})


class TestWallClock:
    def test_perf_counter_in_zone(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert ids(lint_source(src, path=ZONE)) == ["REPRO001"]

    def test_datetime_now_in_zone(self):
        src = "import datetime\ndef f():\n    return datetime.now()\n"
        # ``datetime.now`` via attribute access on the module name.
        violations = lint_source(src, path=ZONE)
        assert ids(violations) == ["REPRO001"]

    def test_from_import_flagged(self):
        src = "from time import perf_counter\n"
        assert ids(lint_source(src, path=ZONE)) == ["REPRO001"]

    def test_outside_zone_clean(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, path=OUTSIDE) == []

    def test_noqa_suppresses(self):
        src = ("import time\ndef f():\n"
               "    return time.perf_counter()  # repro: noqa[REPRO001]\n")
        assert lint_source(src, path=ZONE) == []


class TestAmbientRandom:
    def test_import_random(self):
        src = "import random\n"
        assert ids(lint_source(src, path=ZONE)) == ["REPRO002"]

    def test_random_call(self):
        src = "def f(random):\n    return random.random()\n"
        assert "REPRO002" in ids(lint_source(src, path=ZONE))

    def test_from_random_import(self):
        src = "from random import randint\n"
        assert ids(lint_source(src, path=ZONE)) == ["REPRO002"]

    def test_outside_zone_clean(self):
        assert lint_source("import random\n", path=OUTSIDE) == []


class TestSetIteration:
    def test_for_over_set_local(self):
        src = "def f():\n    pending = set()\n    for x in pending:\n        pass\n"
        assert ids(lint_source(src, path=ZONE)) == ["REPRO003"]

    def test_for_over_set_literal_ctor(self):
        src = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert ids(lint_source(src, path=ZONE)) == ["REPRO003"]

    def test_comprehension_over_self_attr(self):
        src = ("class Q:\n"
               "    def __init__(self):\n"
               "        self.live = set()\n"
               "    def f(self):\n"
               "        return [x for x in self.live]\n")
        assert "REPRO003" in ids(lint_source(src, path=ZONE))

    def test_sorted_set_is_clean(self):
        src = "def f():\n    pending = set()\n    for x in sorted(pending):\n        pass\n"
        assert lint_source(src, path=ZONE) == []

    def test_membership_is_clean(self):
        src = "def f(x):\n    pending = set()\n    return x in pending\n"
        assert lint_source(src, path=ZONE) == []


class TestHotPathCounters:
    def test_bump_in_hot_function(self):
        src = ("class StoreQueue:\n"
               "    def search_for_forwarding(self, load):\n"
               "        self.stats.bump('sq.searches')\n")
        assert ids(lint_source(src, path=HOT)) == ["REPRO004"]

    def test_bump_in_cold_function_ok(self):
        src = ("class StoreQueue:\n"
               "    def drain(self):\n"
               "        self.stats.bump('sq.drains')\n")
        assert lint_source(src, path=HOT) == []

    def test_bump_in_unlisted_file_ok(self):
        src = "def f(stats):\n    stats.bump('x')\n"
        assert lint_source(src, path=ZONE) == []


class TestHotPathAllocation:
    @pytest.mark.parametrize("body, label", [
        ("tmp = []", "empty list"),
        ("tmp = {}", "empty dict"),
        ("tmp = list()", "list() call"),
        ("tmp = dict()", "dict() call"),
        ("tmp = [e for e in self.entries]", "comprehension"),
        ("tmp = sorted(self.entries, key=lambda e: e.seq)", "lambda"),
    ])
    def test_allocation_flavours(self, body, label):
        src = ("class LoadQueue:\n"
               "    def search_younger_issued(self, store):\n"
               f"        {body}\n")
        assert ids(lint_source(src, path=HOT)) == ["REPRO005"], label

    def test_fixed_display_ok(self):
        src = ("class LoadQueue:\n"
               "    def search_younger_issued(self, store):\n"
               "        return (None, 0)\n")
        assert lint_source(src, path=HOT) == []

    def test_noqa_with_justification(self):
        src = ("class LoadQueue:\n"
               "    def search_younger_issued(self, store):\n"
               "        tmp = []  # repro: noqa[REPRO005]\n")
        assert lint_source(src, path=HOT) == []


class TestFrozenMutation:
    def test_namedtuple_result_mutated(self):
        src = ("from typing import NamedTuple\n"
               "class ForwardResult(NamedTuple):\n"
               "    hit: bool\n"
               "def f():\n"
               "    r = ForwardResult(True)\n"
               "    r.hit = False\n")
        assert ids(lint_source(src, path=OUTSIDE)) == ["REPRO006"]

    def test_frozen_dataclass_mutated(self):
        src = ("from dataclasses import dataclass\n"
               "@dataclass(frozen=True)\n"
               "class Cfg:\n"
               "    n: int\n"
               "def f():\n"
               "    c = Cfg(1)\n"
               "    c.n += 1\n")
        assert ids(lint_source(src, path=OUTSIDE)) == ["REPRO006"]

    def test_replace_is_clean(self):
        src = ("from typing import NamedTuple\n"
               "class R(NamedTuple):\n"
               "    x: int\n"
               "def f():\n"
               "    r = R(1)\n"
               "    r = r._replace(x=2)\n"
               "    return r\n")
        assert lint_source(src, path=OUTSIDE) == []

    def test_rebound_name_not_tracked(self):
        src = ("from typing import NamedTuple\n"
               "class R(NamedTuple):\n"
               "    x: int\n"
               "class Box:\n"
               "    pass\n"
               "def f():\n"
               "    r = R(1)\n"
               "    r = Box()\n"
               "    r.x = 2\n")
        assert lint_source(src, path=OUTSIDE) == []

    def test_self_mutation_inside_frozen_class(self):
        src = ("from typing import NamedTuple\n"
               "class R(NamedTuple):\n"
               "    x: int\n"
               "    def twiddle(self):\n"
               "        self.x = 3\n")
        assert ids(lint_source(src, path=OUTSIDE)) == ["REPRO006"]


class TestSchemeProtocol:
    def test_misspelled_hook(self):
        src = ("class MyScheme(CheckScheme):\n"
               "    def on_comit(self, instr, cycle):\n"
               "        pass\n")
        violations = lint_source(src, path=SCHEMES)
        assert ids(violations) == ["REPRO007"]
        assert "typo" in violations[0].message

    def test_wrong_arity(self):
        src = ("class MyScheme(CheckScheme):\n"
               "    def on_store_resolve(self, store, cycle, extra):\n"
               "        pass\n")
        assert ids(lint_source(src, path=SCHEMES)) == ["REPRO007"]

    def test_extra_defaulted_arg_ok(self):
        src = ("class MyScheme(CheckScheme):\n"
               "    def on_store_resolve(self, store, cycle, extra=None):\n"
               "        pass\n")
        assert lint_source(src, path=SCHEMES) == []

    def test_conforming_scheme_clean(self):
        src = ("class MyScheme(CheckScheme):\n"
               "    def on_load_issue(self, load, cycle):\n"
               "        return None\n"
               "    def on_commit(self, instr, cycle):\n"
               "        return None\n")
        assert lint_source(src, path=SCHEMES) == []

    def test_non_scheme_class_ignored(self):
        src = ("class Helper:\n"
               "    def on_comit(self, x, y):\n"
               "        pass\n")
        assert lint_source(src, path=SCHEMES) == []

    def test_outside_schemes_dir_ignored(self):
        src = ("class MyScheme(CheckScheme):\n"
               "    def on_comit(self, instr, cycle):\n"
               "        pass\n")
        assert lint_source(src, path=ZONE) == []


class TestEngine:
    def test_bare_noqa_suppresses_everything(self):
        src = "import random  # repro: noqa\n"
        assert lint_source(src, path=ZONE) == []

    def test_targeted_noqa_other_rule_survives(self):
        src = "import random  # repro: noqa[REPRO001]\n"
        assert ids(lint_source(src, path=ZONE)) == ["REPRO002"]

    def test_noqa_anchors_to_the_whole_statement(self):
        # The violation reports on the opening line; the suppression
        # sits on a continuation line of the same statement.
        src = ("import time\n"
               "def f():\n"
               "    return time.perf_counter(  # a continuation comment\n"
               "    )  # repro: noqa[REPRO001]\n")
        assert lint_source(src, path=ZONE) == []

    def test_noqa_on_the_opening_line_covers_continuations(self):
        src = ("import time\n"
               "def f():\n"
               "    values = [  # repro: noqa[REPRO001]\n"
               "        time.time(),\n"
               "        time.time(),\n"
               "    ]\n"
               "    return values\n")
        assert lint_source(src, path=ZONE) == []

    def test_compound_header_noqa_does_not_blanket_the_block(self):
        # A suppression on an ``if`` header covers the header only —
        # violations inside the body still surface.
        src = ("import time\n"
               "def f(flag):\n"
               "    if flag:  # repro: noqa[REPRO001]\n"
               "        return time.time()\n"
               "    return 0\n")
        assert ids(lint_source(src, path=ZONE)) == ["REPRO001"]

    def test_noqa_inside_a_string_literal_is_inert(self):
        src = ("import time\n"
               "def f():\n"
               '    note = "use # repro: noqa[REPRO001] to suppress"\n'
               "    return (time.time(), note)\n")
        assert ids(lint_source(src, path=ZONE)) == ["REPRO001"]

    def test_violations_sorted_and_formatted(self):
        src = "import random\nimport time\ndef f():\n    return time.time()\n"
        violations = lint_source(src, path=ZONE)
        assert [v.line for v in violations] == sorted(v.line for v in violations)
        text = format_violations(violations)
        assert "REPRO002" in text and text.endswith("violation(s)")

    def test_catalogue_covers_all_rules(self):
        text = rule_catalogue()
        for rule in RULES:
            assert rule.rule_id in text


def test_repository_lints_clean():
    """Acceptance criterion: ``repro check --static`` exits clean on src/."""
    assert lint_paths(["src"]) == []
