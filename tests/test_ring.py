"""Unit and property tests for the RingBuffer (ROB/LQ/SQ substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.ring import RingBuffer


class TestBasics:
    def test_fifo_order(self):
        ring = RingBuffer(4)
        for i in range(4):
            ring.push(i)
        assert [ring.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_head_tail(self):
        ring = RingBuffer(4)
        assert ring.head() is None and ring.tail() is None
        ring.push("a")
        ring.push("b")
        assert ring.head() == "a" and ring.tail() == "b"

    def test_overflow_raises(self):
        ring = RingBuffer(2)
        ring.push(1)
        ring.push(2)
        assert ring.full
        with pytest.raises(OverflowError):
            ring.push(3)

    def test_underflow_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(2).pop()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_free_counts(self):
        ring = RingBuffer(3)
        assert ring.free == 3
        ring.push(1)
        assert ring.free == 2 and len(ring) == 1


class TestSquash:
    def test_squash_younger_by_predicate(self):
        ring = RingBuffer(8)
        for i in range(6):
            ring.push(i)
        squashed = ring.squash_younger(lambda x: x <= 2)
        assert squashed == [3, 4, 5]
        assert list(ring) == [0, 1, 2]

    def test_squash_nothing(self):
        ring = RingBuffer(4)
        ring.push(1)
        assert ring.squash_younger(lambda x: True) == []
        assert len(ring) == 1

    def test_squash_everything(self):
        ring = RingBuffer(4)
        for i in range(3):
            ring.push(i)
        assert ring.squash_younger(lambda x: False) == [0, 1, 2]
        assert len(ring) == 0

    def test_clear(self):
        ring = RingBuffer(4)
        ring.push(1)
        ring.clear()
        assert len(ring) == 0 and not ring.full


@st.composite
def ring_ops(draw):
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(0, 100)),
            st.tuples(st.just("pop"), st.none()),
            st.tuples(st.just("squash_ge"), st.integers(0, 100)),
        ),
        max_size=60,
    ))


class TestModelBased:
    @given(ring_ops())
    def test_matches_list_model(self, ops):
        """A RingBuffer behaves exactly like a capacity-limited list."""
        ring = RingBuffer(8)
        model = []
        seq = 0
        for op, arg in ops:
            if op == "push":
                item = (seq, arg)
                seq += 1
                if len(model) < 8:
                    ring.push(item)
                    model.append(item)
                else:
                    with pytest.raises(OverflowError):
                        ring.push(item)
            elif op == "pop":
                if model:
                    assert ring.pop() == model.pop(0)
                else:
                    with pytest.raises(IndexError):
                        ring.pop()
            else:  # squash everything with payload >= arg from the tail
                expected = []
                while model and model[-1][1] >= arg:
                    expected.append(model.pop())
                expected.reverse()
                assert ring.squash_younger(lambda it: it[1] < arg) == expected
            assert list(ring) == model
            assert ring.full == (len(model) == 8)
