"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scheme_labels_enforced(self, capsys):
        # Validation now happens in the label codec, not argparse choices,
        # so full labels like dmdc-local work and junk still exits.
        with pytest.raises(SystemExit):
            main(["run", "gzip", "--scheme", "magic", "-n", "100"])
        assert "bad kind" in capsys.readouterr().err


class TestInformational:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "swim" in out and "FP" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "config1" in out and "2048" in out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table6" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2


class TestRunCommands:
    def test_run_summary(self, capsys):
        assert main(["run", "gzip", "--scheme", "dmdc", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "dmdc-global" in out and "ipc" in out

    def test_run_json(self, capsys):
        assert main(["run", "art", "-n", "1200", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "art"
        assert payload["summary"]["committed"] == 1200
        assert "commit.loads" in payload["counters"]

    def test_compare(self, capsys):
        assert main(["compare", "gzip", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "LQ savings" in out and "slowdown" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "gzip", "-n", "200", "--rows", "6",
                     "--width", "50"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_run_scheme_variants(self, capsys):
        assert main(["run", "gzip", "--scheme", "dmdc", "--local",
                     "--coherence", "--invalidation-rate", "50",
                     "-n", "1200"]) == 0
        out = capsys.readouterr().out
        assert "dmdc-local" in out and "coherent" in out


class TestTraceCommands:
    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = str(tmp_path / "t.dmdc")
        assert main(["trace", "--workload", "mcf", "-n", "500",
                     "--out", out_file]) == 0
        assert main(["trace", "--inspect", out_file]) == 0
        out = capsys.readouterr().out
        assert "micro-ops" in out and "LOAD" in out

    def test_experiment_run_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS_PER_GROUP", "1")
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert main(["experiment", "sq_filter", "--budget", "1000"]) == 0
        assert "SQ" in capsys.readouterr().out


class TestCheckCommand:
    def test_static_clean_on_repo(self, capsys):
        assert main(["check", "--static"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "OK" in out

    def test_static_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        assert main(["check", "--static", str(bad)]) == 1
        assert "REPRO002" in capsys.readouterr().out

    def test_static_json_counts(self, capsys):
        assert main(["check", "--static", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        static = payload["static"]
        assert static["count"] == 0 and static["violations"] == []
        assert static["active_rules"] == [f"REPRO00{i}" for i in range(1, 8)]
        # Every active rule is accounted for, zeroes included, so "ran
        # clean" is distinguishable from "did not run".
        assert set(static["by_rule"]) == set(static["active_rules"])
        assert all(count == 0 for count in static["by_rule"].values())

    def test_static_json_counts_violations_by_rule(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nimport time\nx = time.time()\n")
        assert main(["check", "--static", "--json", str(bad)]) == 1
        static = json.loads(capsys.readouterr().out)["static"]
        assert static["count"] == len(static["violations"]) > 0
        assert static["by_rule"]["REPRO001"] == 1  # wall clock
        assert static["by_rule"]["REPRO002"] == 1  # ambient random

    def test_concurrency_clean_on_repo(self, capsys):
        assert main(["check", "--concurrency"]) == 0
        out = capsys.readouterr().out
        assert "--concurrency: clean" in out and "OK" in out

    def test_concurrency_json(self, capsys):
        assert main(["check", "--concurrency", "--json"]) == 0
        conc = json.loads(capsys.readouterr().out)["concurrency"]
        assert conc["count"] == 0
        assert conc["active_rules"] == [
            f"REPRO0{i:02d}" for i in range(8, 13)]

    def test_concurrency_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "service" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import os\nTOKEN = os.environ['TOKEN']\n")
        assert main(["check", "--concurrency", str(bad)]) == 1
        assert "REPRO011" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REPRO001" in out and "REPRO007" in out
        assert "REPRO008" in out and "REPRO012" in out

    def test_sanitize_smoke(self, capsys):
        assert main(["check", "--sanitize", "--scheme", "dmdc",
                     "--workload", "gzip", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out and "OK" in out

    def test_sanitize_json(self, capsys):
        assert main(["check", "--sanitize", "--scheme", "yla",
                     "--workload", "gzip", "-n", "1500", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["sanitize"][0]
        assert entry["ok"] and entry["missed_violations"] == 0
        assert entry["filtered_searches"] > 0

    def test_sanitize_unknown_scheme(self, capsys):
        assert main(["check", "--sanitize", "--scheme", "magic"]) == 2
