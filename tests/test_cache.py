"""Unit tests for the cache and memory-hierarchy models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import MemoryHierarchy


def small_cache(size=1024, assoc=2, line=64, latency=2):
    return Cache(CacheConfig("test", size, assoc, line, latency))


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig("c", 32 * 1024, 2, 64, 2)
        assert cfg.num_sets == 256

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig("c", 1000, 2, 64, 2)  # not divisible
        with pytest.raises(ConfigError):
            CacheConfig("c", 1024, 2, 48, 2)  # non-power-of-two line
        with pytest.raises(ConfigError):
            CacheConfig("c", 0, 2, 64, 2)


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0x100)
        assert c.access(0x100)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_hits(self):
        c = small_cache(line=64)
        c.access(0x100)
        assert c.access(0x13F)  # same 64B line
        assert not c.access(0x140)  # next line

    def test_lru_eviction(self):
        c = small_cache(size=256, assoc=2, line=64)  # 2 sets
        # Three lines in the same set: conflict evicts the LRU one.
        a, b, d = 0x000, 0x100, 0x200
        c.access(a)
        c.access(b)
        c.access(a)       # a is MRU
        c.access(d)       # evicts b
        assert c.access(a)
        assert not c.access(b)
        assert c.evictions >= 1

    def test_lookup_does_not_fill(self):
        c = small_cache()
        assert not c.lookup(0x100)
        assert not c.access(0x100)  # still a miss: lookup didn't fill

    def test_invalidate(self):
        c = small_cache()
        c.access(0x100)
        assert c.invalidate_line(0x120)  # same line
        assert not c.access(0x100)       # miss again
        assert not c.invalidate_line(0x4000)

    def test_line_addr(self):
        c = small_cache(line=64)
        assert c.line_addr(0x1234) == 0x1200

    def test_miss_rate(self):
        c = small_cache()
        assert c.miss_rate == 0.0
        c.access(0)
        c.access(0)
        assert c.miss_rate == 0.5

    @given(st.lists(st.integers(0, 1 << 20), max_size=300))
    def test_set_occupancy_never_exceeds_assoc(self, addrs):
        c = small_cache(size=512, assoc=2, line=64)
        for addr in addrs:
            c.access(addr)
        for ways in c._sets.values():
            assert len(ways) <= 2

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    def test_repeat_access_always_hits(self, addrs):
        c = small_cache(size=64 * 1024, assoc=4, line=64)  # big enough: no evictions
        for addr in addrs:
            c.access(addr)
        assert c.access(addrs[-1])


class TestHierarchy:
    def make(self):
        return MemoryHierarchy(
            CacheConfig("l1i", 1024, 1, 64, 2),
            CacheConfig("l1d", 1024, 2, 64, 2),
            CacheConfig("l2", 16 * 1024, 4, 128, 15),
            memory_latency=120,
        )

    def test_read_latency_tiers(self):
        m = self.make()
        assert m.read(0x100) == 2 + 15 + 120  # cold: through memory
        assert m.read(0x100) == 2             # L1 hit
        m.l1d.invalidate_line(0x100)
        assert m.read(0x100) == 2 + 15        # L2 hit after L1 invalidate

    def test_fetch_uses_l1i(self):
        m = self.make()
        m.fetch(0x400)
        assert m.l1i.accesses == 1 and m.l1d.accesses == 0

    def test_write_allocates(self):
        m = self.make()
        m.write(0x200)
        assert m.read(0x200) == 2

    def test_invalidate_both_levels(self):
        m = self.make()
        m.read(0x300)
        m.invalidate(0x300)
        assert m.read(0x300) == 2 + 15 + 120

    def test_data_line_bytes(self):
        assert self.make().data_line_bytes == 64
