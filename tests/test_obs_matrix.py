"""Observer bit-invisibility sweep over the full scheme matrix.

Acceptance criteria for the observability layer, on the same nine scheme
configurations x two workloads the sanitizer and fast-path suites pin:

* attaching the full :class:`ObservabilityRecorder` (tracer + replay seam
  + scheme emit seam + hook) leaves the ``to_dict()`` payload of every
  run exactly equal to the plain run's — tracing is bit-invisible;
* the attribution reconciles **exactly** with the counters on every cell
  (every event seam fires once and only once, for every scheme);
* the sweep is not vacuous: schemes with windows/tables emit window and
  table events, filtered schemes emit safe-store events, and at least one
  cell replays.
"""

import pytest

from repro.analysis.sanitizer import SCHEME_MATRIX
from repro.obs import profile_run
from repro.sim.config import CONFIG2
from repro.sim.runner import run_trace
from repro.workloads import get_workload

BUDGET = 4_000

WORKLOADS = ("gzip", "mcf")

_TRACES = {}
_REPORTS = {}


def _trace(name):
    if name not in _TRACES:
        _TRACES[name] = get_workload(name).generate(BUDGET + 2_000)
    return _TRACES[name]


def _profiled(workload, scheme_label):
    key = (workload, scheme_label)
    if key not in _REPORTS:
        config = CONFIG2.with_scheme(SCHEME_MATRIX[scheme_label])
        _REPORTS[key] = profile_run(config, _trace(workload),
                                    instructions=BUDGET, seed=1)
    return _REPORTS[key]


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme_label", sorted(SCHEME_MATRIX))
def test_observer_is_bit_invisible(workload, scheme_label):
    report = _profiled(workload, scheme_label)
    config = CONFIG2.with_scheme(SCHEME_MATRIX[scheme_label])
    plain = run_trace(config, _trace(workload), max_instructions=BUDGET, seed=1)
    assert report.result.to_dict() == plain.to_dict()


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme_label", sorted(SCHEME_MATRIX))
def test_attribution_reconciles_exactly(workload, scheme_label):
    report = _profiled(workload, scheme_label)
    assert report.ok, (
        f"{workload}/{scheme_label}: "
        + "; ".join(f"{line.name} events={line.from_events} "
                    f"counters={line.from_counters}"
                    for line in report.attribution.mismatches()))
    buckets = report.attribution.cycle_buckets
    assert sum(buckets.values()) == report.result.cycles


def test_sweep_is_not_vacuous():
    """The seams must actually fire somewhere: windows on DMDC schemes,
    safe stores on filtered schemes, and replays on at least one cell."""
    window_events = 0
    safe_stores = 0
    replays = 0
    for workload in WORKLOADS:
        for scheme_label in sorted(SCHEME_MATRIX):
            recorder = _profiled(workload, scheme_label).recorder
            window_events += recorder.windows_opened
            safe_stores += recorder.stores_safe
            replays += recorder.replay_total
    assert window_events > 0
    assert safe_stores > 0
    assert replays > 0


def test_events_emitted_everywhere():
    for workload in WORKLOADS:
        for scheme_label in sorted(SCHEME_MATRIX):
            recorder = _profiled(workload, scheme_label).recorder
            assert recorder.events_emitted > 0
            assert recorder.pipeline_counts["commit"] == BUDGET
