"""Unit tests for deterministic RNG wrappers."""

from repro.utils.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42, "x")
        b = DeterministicRng(42, "x")
        assert [a.randint(0, 1000) for _ in range(20)] == [b.randint(0, 1000) for _ in range(20)]

    def test_purpose_decorrelates(self):
        a = DeterministicRng(42, "x")
        b = DeterministicRng(42, "y")
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != [b.randint(0, 10 ** 9) for _ in range(5)]

    def test_child_deterministic(self):
        a = DeterministicRng(7, "root").child("sub")
        b = DeterministicRng(7, "root").child("sub")
        assert a.randint(0, 10 ** 9) == b.randint(0, 10 ** 9)


class TestDistributions:
    def test_random_in_unit_interval(self):
        rng = DeterministicRng(1)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_geometric_nonnegative_and_bounded(self):
        rng = DeterministicRng(2)
        samples = [rng.geometric(0.5) for _ in range(500)]
        assert all(s >= 0 for s in samples)
        assert max(samples) <= 10_000

    def test_geometric_mean_close(self):
        rng = DeterministicRng(3)
        p = 1 / 3  # mean failures = (1-p)/p = 2
        samples = [rng.geometric(p) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert 1.6 < mean < 2.4

    def test_geometric_guard_tiny_p(self):
        rng = DeterministicRng(4)
        assert rng.geometric(1e-12) <= 10_001

    def test_choice_and_choices(self):
        rng = DeterministicRng(5)
        seq = [10, 20, 30]
        assert rng.choice(seq) in seq
        picks = rng.choices(seq, weights=[1, 0, 0], k=10)
        assert picks == [10] * 10

    def test_shuffle_permutation(self):
        rng = DeterministicRng(6)
        seq = list(range(20))
        shuffled = list(seq)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == seq
