"""Unit and property tests for the counting Bloom filter (Figure 3 baseline)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bloom import CountingBloomFilter
from repro.errors import ConfigError


class TestBasics:
    def test_empty_filters_everything(self):
        bf = CountingBloomFilter(64)
        assert not bf.may_contain(0x100)
        assert bf.hits == 1 and bf.probes == 1

    def test_insert_makes_present(self):
        bf = CountingBloomFilter(64)
        bf.insert(0x100)
        assert bf.may_contain(0x100)

    def test_remove_restores(self):
        bf = CountingBloomFilter(64)
        bf.insert(0x100)
        bf.remove(0x100)
        assert not bf.may_contain(0x100)

    def test_counting_handles_duplicates(self):
        bf = CountingBloomFilter(64)
        bf.insert(0x100)
        bf.insert(0x100)
        bf.remove(0x100)
        assert bf.may_contain(0x100)  # one copy still in flight

    def test_same_quadword_aliases(self):
        bf = CountingBloomFilter(64)
        bf.insert(0x100)
        assert bf.may_contain(0x104)  # same quad word

    def test_filter_rate(self):
        bf = CountingBloomFilter(64)
        bf.insert(0x100)
        bf.may_contain(0x100)
        bf.may_contain(0x100 + 8)
        assert 0.0 < bf.filter_rate <= 1.0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            CountingBloomFilter(100)

    def test_remove_on_empty_is_noop(self):
        bf = CountingBloomFilter(64)
        bf.remove(0x100)
        assert not bf.may_contain(0x100)


class TestProperties:
    @given(st.lists(st.integers(0, 1 << 20).map(lambda x: x * 8), max_size=100),
           st.sampled_from([32, 64, 256]))
    def test_no_false_negatives(self, addrs, size):
        """Every in-flight inserted address must probe as present."""
        bf = CountingBloomFilter(size)
        for addr in addrs:
            bf.insert(addr)
        for addr in addrs:
            assert bf.may_contain(addr)

    @given(st.lists(st.integers(0, 1 << 16).map(lambda x: x * 8),
                    min_size=1, max_size=60))
    def test_insert_remove_all_returns_to_empty(self, addrs):
        bf = CountingBloomFilter(128)
        for addr in addrs:
            bf.insert(addr)
        for addr in addrs:
            bf.remove(addr)
        for addr in addrs:
            assert not bf.may_contain(addr)

    def test_larger_filters_alias_less(self):
        """Bigger tables should not be worse at rejecting absent keys."""
        addrs = [i * 8 for i in range(64)]
        rates = []
        for size in (32, 1024):
            bf = CountingBloomFilter(size)
            for a in addrs:
                bf.insert(a)
            false_hits = sum(
                bf.may_contain(a) for a in range(1 << 16, (1 << 16) + 8 * 200, 8)
            )
            rates.append(false_hits)
        assert rates[1] <= rates[0]
