"""The service load generator and its ``BENCH_service.json`` contract.

A real (tiny) run: boot the service at 1 and 2 shards, drive it with
concurrent keep-alive clients, and check the payload proves what the
committed benchmark claims — bit-identical responses, routing-consistent
per-shard accounting, shard-local dedup — and that the validator rejects
payloads where any of those guarantees broke.
"""

import copy
import json

import pytest

from repro.perf.loadgen import (
    build_points,
    point_key,
    run_service_bench,
    validate_service_payload,
    write_service_bench,
)


@pytest.fixture(scope="module")
def payload():
    """One tiny end-to-end run shared by every assertion below."""
    return run_service_bench(
        shard_counts=(1, 2), clients=2, points_per_client=2,
        hot_points=1, instructions=500, seed=3, workers_per_shard=1,
        quick=True)


class TestBuildPoints:
    def test_points_are_distinct_and_deterministic(self):
        points = build_points(12, instructions=500, seed=3, salt=1)
        assert points == build_points(12, instructions=500, seed=3, salt=1)
        assert len({point_key(p) for p in points}) == 12

    def test_salts_keep_client_streams_disjoint(self):
        a = {point_key(p) for p in build_points(8, 500, seed=3, salt=1)}
        b = {point_key(p) for p in build_points(8, 500, seed=3, salt=2)}
        assert not (a & b)


class TestServiceBench:
    def test_payload_validates_clean(self, payload):
        assert validate_service_payload(payload) == []

    def test_runs_cover_requested_shard_counts(self, payload):
        assert [run["shards"] for run in payload["runs"]] == [1, 2]
        for run in payload["runs"]:
            assert len(run["per_shard"]) == run["shards"]
            assert run["errors"] == 0 and run["timeouts"] == 0

    def test_responses_bit_identical_across_shard_counts(self, payload):
        assert payload["runs"][0]["bit_identical_vs_baseline"] is None
        assert payload["runs"][1]["bit_identical_vs_baseline"] is True

    def test_per_shard_accounting_matches_client_side_routing(self, payload):
        for run in payload["runs"]:
            routing = run["routing"]
            assert routing["ok"] is True
            assert (routing["observed_received_per_shard"]
                    == routing["expected_received_per_shard"])
            assert sum(routing["observed_received_per_shard"]) \
                == run["requests"]

    def test_hot_points_coalesced_in_flight(self, payload):
        for run in payload["runs"]:
            dedup = run["dedup"]
            assert dedup["hot_requests"] > dedup["hot_unique"]
            assert dedup["coalesced_inflight"] > 0
            # Shard-local dedup: unique submissions never exceed the
            # distinct content keys in the workload.
            assert dedup["unique_submitted"] <= run["unique_points"]

    def test_provenance_fields_present(self, payload):
        assert payload["schema"] == 1
        assert payload["kind"] == "service-scaling"
        assert payload["machine"]["cpu_count"] >= 1
        assert payload["knobs"]["cache_enabled"] is False
        assert payload["scaling"]["baseline_shards"] == 1

    def test_written_file_round_trips(self, payload, tmp_path):
        path = write_service_bench(payload, str(tmp_path / "BENCH.json"))
        assert json.loads((tmp_path / "BENCH.json").read_text()) \
            == json.loads(json.dumps(payload))
        assert path.endswith("BENCH.json")


class TestValidator:
    def test_rejects_response_divergence(self, payload):
        broken = copy.deepcopy(payload)
        broken["runs"][1]["bit_identical_vs_baseline"] = False
        assert any("diverged" in problem
                   for problem in validate_service_payload(broken))

    def test_rejects_routing_mismatch(self, payload):
        broken = copy.deepcopy(payload)
        broken["runs"][0]["routing"]["ok"] = False
        assert any("routing" in problem
                   for problem in validate_service_payload(broken))

    def test_rejects_cached_throughput_runs(self, payload):
        broken = copy.deepcopy(payload)
        broken["knobs"]["cache_enabled"] = True
        assert any("cache" in problem
                   for problem in validate_service_payload(broken))

    def test_rejects_errors_and_saturation(self, payload):
        broken = copy.deepcopy(payload)
        broken["runs"][0]["errors"] = 2
        broken["runs"][1]["rejected_saturation"] = 1
        problems = validate_service_payload(broken)
        assert any("errors" in problem for problem in problems)
        assert any("saturated" in problem for problem in problems)

    def test_enforces_speedup_floor_only_on_capable_hosts(self, payload):
        slow = copy.deepcopy(payload)
        slow["quick"] = False
        slow["machine"]["cpu_count"] = 8
        slow["scaling"].update(max_shards=4, speedup_at_max_shards=1.1)
        assert any("floor" in problem
                   for problem in validate_service_payload(slow))
        # The same numbers on a 1-core recorder are not a failure.
        onecore = copy.deepcopy(slow)
        onecore["machine"]["cpu_count"] = 1
        assert validate_service_payload(onecore) == []

    def test_missing_keys_reported(self):
        assert any("missing" in problem
                   for problem in validate_service_payload({"schema": 1}))
