"""The deduplicating executor, the cross-experiment planner, and the
engine-backed ``run_suite`` helpers."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.exec.cache import ResultCache
from repro.exec.engine import ExecutionEngine, worker_count
from repro.exec.planner import plan_experiments, run_all, union_requests
from repro.exec.request import RunRequest
from repro.sim.config import small_config

BUDGET = 700


def _req(workload="gzip", seed=1, **overrides):
    return RunRequest(small_config(wrongpath_loads=False, **overrides),
                      workload, BUDGET, seed)


@pytest.fixture
def engine(tmp_path):
    with ExecutionEngine(cache=ResultCache(tmp_path / "cache"), max_workers=1) as eng:
        yield eng


class TestDedupeAndCaching:
    def test_duplicates_run_once(self, engine):
        requests = [_req(), _req("swim"), _req(), _req()]
        results = engine.run(requests)
        assert engine.stats.requested == 4
        assert engine.stats.unique == 2
        assert engine.stats.executed == 2
        assert results[0] == results[2] == results[3]
        assert results[1].workload == "swim"

    def test_memo_serves_repeat_batches(self, engine):
        engine.run([_req()])
        engine.run([_req()])
        assert engine.stats.executed == 1
        assert engine.stats.memo_hits == 1

    def test_disk_cache_survives_engine_restart(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with ExecutionEngine(cache=ResultCache(cache_dir), max_workers=1) as first:
            cold = first.run([_req()])[0]
        with ExecutionEngine(cache=ResultCache(cache_dir), max_workers=1) as second:
            warm = second.run([_req()])[0]
            assert second.stats.executed == 0
            assert second.stats.disk_hits == 1
        assert warm == cold

    def test_no_cache_means_every_engine_simulates(self, tmp_path):
        with ExecutionEngine(cache=None, max_workers=1) as first:
            first.run([_req()])
            assert first.stats.executed == 1
        with ExecutionEngine(cache=None, max_workers=1) as second:
            second.run([_req()])
            assert second.stats.executed == 1

    def test_progress_reports_every_unique_point(self, engine):
        seen = []
        engine.progress = lambda done, total, request, source: seen.append(
            (done, total, request.workload_name, source))
        engine.run([_req(), _req(), _req("swim")])
        assert len(seen) == 2
        assert {s[3] for s in seen} == {"run"}
        engine.run([_req()])
        assert seen[-1][3] == "memo"


class TestErrorContext:
    def test_serial_failure_names_the_job(self, engine):
        with pytest.raises(SimulationError, match="no-such-workload.*small"):
            engine.run([_req("no-such-workload")])

    def test_parallel_failure_names_the_job(self, tmp_path):
        with ExecutionEngine(cache=None, max_workers=2) as engine:
            with pytest.raises(SimulationError, match="no-such-workload"):
                engine.run([_req(), _req("no-such-workload")])

    def test_worker_count_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "many")
        with pytest.raises(ConfigError, match="REPRO_PARALLEL.*'many'"):
            worker_count()

    def test_worker_count_zero_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert worker_count() == 1


class TestPlanner:
    @pytest.fixture(autouse=True)
    def _small_suite(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS_PER_GROUP", "1")
        monkeypatch.setenv("REPRO_PARALLEL", "0")

    def test_shared_points_fold_in_union(self):
        # table2 (global DMDC suite) is a strict subset of safe_loads'
        # "with safe loads" sweep: identical configs, workloads, budget.
        plans = plan_experiments(["table2", "safe_loads"], budget=BUDGET)
        assert {p.id for p in plans} == {"table2", "safe_loads"}
        planned = sum(len(p.requests) for p in plans)
        union = union_requests(plans)
        keys = {r.cache_key() for r in union}
        assert len(union) == len(keys)
        suite_size = len(plans[0].requests)
        assert planned == 3 * suite_size
        assert len(union) == 2 * suite_size

    def test_every_experiment_declares_a_plan(self):
        plans = plan_experiments(budget=BUDGET)
        assert len(plans) == 17
        for plan in plans:
            assert plan.requests, f"{plan.id} planned no design points"

    def test_run_all_simulates_each_unique_point_once(self, tmp_path):
        with ExecutionEngine(cache=ResultCache(tmp_path / "c"), max_workers=1) as engine:
            rendered = run_all(["table2", "safe_loads"], budget=BUDGET, engine=engine)
            union = union_requests(plan_experiments(["table2", "safe_loads"],
                                                    budget=BUDGET))
            assert engine.stats.executed == len(union)
            assert {r[0] for r in rendered} == {"table2", "safe_loads"}
            for _, _, text in rendered:
                assert text.strip()

    def test_cached_rerun_is_identical_and_simulation_free(self, tmp_path):
        cache_dir = tmp_path / "c"
        with ExecutionEngine(cache=ResultCache(cache_dir), max_workers=1) as cold:
            first = run_all(["table2"], budget=BUDGET, engine=cold)
        with ExecutionEngine(cache=ResultCache(cache_dir), max_workers=1) as warm:
            second = run_all(["table2"], budget=BUDGET, engine=warm)
            assert warm.stats.executed == 0
            assert warm.stats.hit_rate == 1.0
        assert first[0][2] == second[0][2]  # byte-identical rendering


class TestSuiteHelpers:
    def test_run_suite_many_shares_engine_batches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        from repro.experiments.common import run_suite, run_suite_many

        config = small_config(wrongpath_loads=False)
        with ExecutionEngine(cache=ResultCache(tmp_path / "c"), max_workers=1) as eng:
            from repro.exec.engine import use_engine

            with use_engine(eng):
                single = run_suite(config, budget=BUDGET, workloads=["gzip", "swim"])
                many = run_suite_many({"a": config, "b": config}, budget=BUDGET,
                                      workloads=["gzip", "swim"])
            # 2 + 4 requests, but only 2 unique design points ever ran.
            assert eng.stats.executed == 2
            assert many["a"]["gzip"] == single["gzip"]
            assert many["b"]["swim"] == single["swim"]
