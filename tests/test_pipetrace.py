"""Tests for the pipeline event tracer."""

from repro.sim.config import SchemeConfig, small_config
from repro.sim.pipetrace import PipelineTracer
from repro.sim.processor import Processor
from repro.workloads import get_workload
from tests.conftest import TraceBuilder


def traced_run(trace, config=None, budget=None):
    config = config or small_config(wrongpath_loads=False)
    proc = Processor(config, trace)
    proc.tracer = PipelineTracer()
    proc.run(budget if budget is not None else len(trace))
    return proc.tracer


class TestRecording:
    def test_every_committed_instr_has_full_lifecycle(self):
        b = TraceBuilder()
        b.fill(20)
        tracer = traced_run(b.build())
        for entry in tracer.instructions():
            for kind in ("fetch", "dispatch", "issue", "complete", "commit"):
                assert entry.cycle_of(kind) is not None, (entry.seq, kind)

    def test_event_order_is_monotonic(self):
        b = TraceBuilder()
        b.fill(10).load(0x100, dst=9).fill(10)
        tracer = traced_run(b.build())
        for entry in tracer.instructions():
            order = [entry.cycle_of(k) for k in
                     ("fetch", "dispatch", "issue", "complete", "commit")]
            order = [c for c in order if c is not None]
            assert order == sorted(order)

    def test_rejection_recorded(self):
        from repro.isa.opcodes import InstrClass
        b = TraceBuilder()
        b.alu(dst=5, cls=InstrClass.IDIV)
        b.store(0x100, data_src=5)
        b.load(0x100, dst=6)
        b.fill(20)
        tracer = traced_run(b.build())
        rejected = [e for e in tracer.instructions() if e.cycle_of("reject") is not None]
        assert rejected

    def test_replay_and_squash_recorded(self):
        from repro.isa.opcodes import InstrClass
        b = TraceBuilder()
        b.fill(4)
        b.alu(dst=10, cls=InstrClass.IDIV)
        b.store(0x800, srcs=(10,))
        b.load(0x800, dst=11)
        b.fill(25)
        config = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind="dmdc"))
        tracer = traced_run(b.build(), config=config)
        kinds = {k for e in tracer.instructions() for _, k in e.events}
        assert "replay" in kinds and "squash" in kinds

    def test_capacity_bounded(self):
        trace = get_workload("gzip").generate(400)
        config = small_config()
        proc = Processor(config, trace)
        proc.tracer = PipelineTracer(capacity=50)
        proc.run(300)
        assert len(proc.tracer) <= 50

    def test_latency_helper(self):
        b = TraceBuilder()
        b.fill(12)
        tracer = traced_run(b.build())
        seq = tracer.instructions()[0].seq
        assert tracer.latency(seq) > 0
        assert tracer.latency(99999) is None


class _FakeInstr:
    """Minimal stand-in for DynInstr: just what record() touches."""

    class _Uop:
        class cls:
            name = "IALU"

    uop = _Uop()

    def __init__(self, seq):
        self.seq = seq
        self.trace_idx = seq


class TestCapacityEdgeCases:
    """Regression tests for eviction coherence at the ring boundary."""

    def test_capacity_zero_counts_but_stores_nothing(self):
        tracer = PipelineTracer(capacity=0)
        tracer.record("fetch", _FakeInstr(0), 1)
        tracer.record("commit", _FakeInstr(0), 5)
        assert len(tracer) == 0
        assert tracer.events_recorded == 2
        assert tracer.instr(0) is None
        assert tracer.latency(0) is None
        assert "no traced" in tracer.render_timeline()

    def test_capacity_one_keeps_only_newest(self):
        tracer = PipelineTracer(capacity=1)
        tracer.record("fetch", _FakeInstr(0), 1)
        tracer.record("fetch", _FakeInstr(1), 2)
        assert len(tracer) == 1
        assert tracer.instr(0) is None
        assert tracer.instr(1) is not None

    def test_exactly_full_evicts_nothing(self):
        tracer = PipelineTracer(capacity=3)
        for seq in range(3):
            tracer.record("fetch", _FakeInstr(seq), seq + 1)
        assert len(tracer) == 3
        assert all(tracer.instr(seq) is not None for seq in range(3))

    def test_late_event_for_evicted_row_is_dropped_not_resurrected(self):
        """Regression: a squash/completion arriving for an already-evicted
        seq must not recreate a partial row (which would render out of
        order and report a bogus latency)."""
        tracer = PipelineTracer(capacity=2)
        for seq in range(4):          # seqs 0,1 evicted by 2,3
            tracer.record("fetch", _FakeInstr(seq), seq + 1)
        tracer.record("squash", _FakeInstr(0), 50)  # late event, evicted row
        assert tracer.instr(0) is None
        assert tracer.latency(0, "fetch", "squash") is None
        assert [e.seq for e in tracer.instructions()] == [2, 3]
        assert tracer.events_recorded == 5  # counted, not retained

    def test_render_timeline_on_fully_evicted_window(self):
        tracer = PipelineTracer(capacity=2)
        for seq in range(6):
            tracer.record("fetch", _FakeInstr(seq), seq + 1)
        # The requested window was entirely evicted: renders empty, no raise.
        assert "no traced" in tracer.render_timeline(first_seq=100)
        # And the retained tail still renders.
        assert "legend:" in tracer.render_timeline(first_seq=0)

    def test_wraparound_keeps_rows_coherent(self):
        tracer = PipelineTracer(capacity=4)
        for seq in range(20):
            instr = _FakeInstr(seq)
            tracer.record("fetch", instr, seq)
            tracer.record("commit", instr, seq + 3)
        retained = tracer.instructions()
        assert [e.seq for e in retained] == [16, 17, 18, 19]
        for entry in retained:
            # Every retained row is complete — both its events survived.
            assert entry.cycle_of("fetch") is not None
            assert entry.cycle_of("commit") is not None


class TestRendering:
    def test_timeline_contains_lanes_and_legend(self):
        b = TraceBuilder()
        b.fill(12)
        tracer = traced_run(b.build())
        text = tracer.render_timeline(max_rows=8)
        assert "legend:" in text
        assert text.count("|") >= 16  # two bars per rendered row

    def test_empty_tracer(self):
        assert "no traced" in PipelineTracer().render_timeline()

    def test_width_clamped(self):
        trace = get_workload("gzip").generate(300)
        proc = Processor(small_config(), trace)
        proc.tracer = PipelineTracer()
        proc.run(200)
        text = proc.tracer.render_timeline(max_width=40, max_rows=5)
        for line in text.splitlines()[1:-1]:
            assert len(line) <= 40 + 20  # lane + label prefix
