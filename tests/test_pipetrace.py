"""Tests for the pipeline event tracer."""

from repro.sim.config import SchemeConfig, small_config
from repro.sim.pipetrace import PipelineTracer
from repro.sim.processor import Processor
from repro.workloads import get_workload
from tests.conftest import TraceBuilder


def traced_run(trace, config=None, budget=None):
    config = config or small_config(wrongpath_loads=False)
    proc = Processor(config, trace)
    proc.tracer = PipelineTracer()
    proc.run(budget if budget is not None else len(trace))
    return proc.tracer


class TestRecording:
    def test_every_committed_instr_has_full_lifecycle(self):
        b = TraceBuilder()
        b.fill(20)
        tracer = traced_run(b.build())
        for entry in tracer.instructions():
            for kind in ("fetch", "dispatch", "issue", "complete", "commit"):
                assert entry.cycle_of(kind) is not None, (entry.seq, kind)

    def test_event_order_is_monotonic(self):
        b = TraceBuilder()
        b.fill(10).load(0x100, dst=9).fill(10)
        tracer = traced_run(b.build())
        for entry in tracer.instructions():
            order = [entry.cycle_of(k) for k in
                     ("fetch", "dispatch", "issue", "complete", "commit")]
            order = [c for c in order if c is not None]
            assert order == sorted(order)

    def test_rejection_recorded(self):
        from repro.isa.opcodes import InstrClass
        b = TraceBuilder()
        b.alu(dst=5, cls=InstrClass.IDIV)
        b.store(0x100, data_src=5)
        b.load(0x100, dst=6)
        b.fill(20)
        tracer = traced_run(b.build())
        rejected = [e for e in tracer.instructions() if e.cycle_of("reject") is not None]
        assert rejected

    def test_replay_and_squash_recorded(self):
        from repro.isa.opcodes import InstrClass
        b = TraceBuilder()
        b.fill(4)
        b.alu(dst=10, cls=InstrClass.IDIV)
        b.store(0x800, srcs=(10,))
        b.load(0x800, dst=11)
        b.fill(25)
        config = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind="dmdc"))
        tracer = traced_run(b.build(), config=config)
        kinds = {k for e in tracer.instructions() for _, k in e.events}
        assert "replay" in kinds and "squash" in kinds

    def test_capacity_bounded(self):
        trace = get_workload("gzip").generate(400)
        config = small_config()
        proc = Processor(config, trace)
        proc.tracer = PipelineTracer(capacity=50)
        proc.run(300)
        assert len(proc.tracer) <= 50

    def test_latency_helper(self):
        b = TraceBuilder()
        b.fill(12)
        tracer = traced_run(b.build())
        seq = tracer.instructions()[0].seq
        assert tracer.latency(seq) > 0
        assert tracer.latency(99999) is None


class TestRendering:
    def test_timeline_contains_lanes_and_legend(self):
        b = TraceBuilder()
        b.fill(12)
        tracer = traced_run(b.build())
        text = tracer.render_timeline(max_rows=8)
        assert "legend:" in text
        assert text.count("|") >= 16  # two bars per rendered row

    def test_empty_tracer(self):
        assert "no traced" in PipelineTracer().render_timeline()

    def test_width_clamped(self):
        trace = get_workload("gzip").generate(300)
        proc = Processor(small_config(), trace)
        proc.tracer = PipelineTracer()
        proc.run(200)
        text = proc.tracer.render_timeline(max_width=40, max_rows=5)
        for line in text.splitlines()[1:-1]:
            assert len(line) <= 40 + 20  # lane + label prefix
