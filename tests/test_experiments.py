"""Smoke tests for every experiment module (tiny budgets, suite subset)."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment

TINY = dict(budget=1200)


@pytest.fixture(autouse=True)
def small_sweeps(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOADS_PER_GROUP", "1")
    monkeypatch.setenv("REPRO_PARALLEL", "0")


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS.values()}
        for expected in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                         "Table 2", "Table 3", "Table 4", "Table 5", "Table 6"):
            assert expected in artifacts

    def test_ids_match_keys(self):
        for key, exp in EXPERIMENTS.items():
            assert exp.id == key


class TestFig2:
    def test_rows_and_render(self):
        data, text = run_experiment("fig2", register_counts=(1, 2), **TINY)
        assert {r["group"] for r in data["rows"]} == {"INT", "FP"}
        regs = {r["registers"] for r in data["rows"]}
        assert regs == {1, 2}
        for row in data["rows"]:
            assert 0 <= row["filtered_min"] <= row["filtered_mean"] <= row["filtered_max"] <= 100
        assert "Figure 2" in text

    def test_more_registers_do_not_hurt(self):
        data, _ = run_experiment("fig2", register_counts=(1, 8), **TINY)
        by = {(r["group"], r["interleaving"], r["registers"]): r["filtered_mean"]
              for r in data["rows"]}
        for group in ("INT", "FP"):
            assert by[(group, "quad-word", 8)] >= by[(group, "quad-word", 1)] - 1.0


class TestFig3:
    def test_rows(self):
        data, text = run_experiment("fig3", bloom_sizes=(64,), **TINY)
        kinds = {r["filter"] for r in data["rows"]}
        assert kinds == {"bloom", "yla"}
        assert "Figure 3" in text


class TestFig4AndFriends:
    def test_fig4_single_config(self):
        from repro.sim.config import CONFIG1
        data, text = run_experiment("fig4", configs={"config1": CONFIG1}, **TINY)
        assert {r["config"] for r in data["rows"]} == {"config1"}
        for row in data["rows"]:
            assert row["lq_savings_mean"] > 50.0  # DMDC always slashes LQ energy
        assert "Figure 4" in text

    def test_fig5_single_config(self):
        from repro.sim.config import CONFIG1
        data, text = run_experiment("fig5", configs={"config1": CONFIG1}, **TINY)
        variants = {r["variant"] for r in data["rows"]}
        assert variants == {"global", "local"}
        assert "Figure 5" in text

    def test_yla_energy(self):
        data, text = run_experiment("yla_energy", **TINY)
        for row in data["rows"]:
            assert 0.0 < row["lq_savings"] < 100.0
        assert "6.1" in text


class TestTables:
    def test_table2(self):
        data, text = run_experiment("table2", **TINY)
        assert not data["local"]
        for row in data["rows"]:
            assert row["loads"] <= row["instructions"]
            assert row["safe_loads"] <= row["loads"] + 1e-9
        assert "Table 2" in text

    def test_table4_is_local(self):
        data, text = run_experiment("table4", **TINY)
        assert data["local"] and "local" in text

    def test_table3_categories(self):
        data, text = run_experiment("table3", **TINY)
        kinds = {r["kind"] for r in data["rows"]}
        assert "address match" in kinds and "hashing conflict" in kinds
        assert "Table 3" in text

    def test_table5_is_local(self):
        data, _ = run_experiment("table5", **TINY)
        assert data["local"]

    def test_table6_rates(self):
        data, text = run_experiment("table6", rates=(0.0, 50.0), **TINY)
        rates = {r["rate"] for r in data["rows"]}
        assert rates == {0.0, 50.0}
        baseline_rows = [r for r in data["rows"] if r["rate"] == 0.0]
        for row in baseline_rows:
            assert row["rel_window"] == pytest.approx(1.0)
        assert "Table 6" in text


class TestTextExperiments:
    def test_safe_loads(self):
        data, text = run_experiment("safe_loads", **TINY)
        for row in data["rows"]:
            assert 0 <= row["safe_load_pct"] <= 100
        assert "safe-load" in text

    def test_checking_queue(self):
        data, text = run_experiment("checking_queue", queue_sizes=(8,), **TINY)
        backends = {r["backend"] for r in data["rows"]}
        assert "table" in backends and "queue:8" in backends

    def test_sq_filter(self):
        data, text = run_experiment("sq_filter", **TINY)
        assert data["rows"]
        assert "SQ" in text
