"""Round-trip tests for binary trace serialization."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.isa.serialize import (
    load_trace,
    load_trace_file,
    save_trace,
    save_trace_file,
)
from repro.isa.trace import validate_trace
from repro.workloads import SyntheticWorkload, WorkloadSpec, get_workload


def roundtrip(trace):
    buf = io.BytesIO()
    save_trace(trace, buf)
    buf.seek(0)
    return load_trace(buf, name=trace.name)


def traces_equal(a, b):
    assert len(a) == len(b) and a.group == b.group
    for oa, ob in zip(a, b):
        assert (oa.pc, oa.cls, oa.srcs, oa.dst, oa.mem_addr, oa.mem_size,
                oa.data_src, oa.taken, oa.target) == \
               (ob.pc, ob.cls, ob.srcs, ob.dst, ob.mem_addr, ob.mem_size,
                ob.data_src, ob.taken, ob.target)


class TestRoundTrip:
    def test_workload_trace(self):
        trace = get_workload("gzip").generate(500)
        traces_equal(trace, roundtrip(trace))

    def test_fp_group_preserved(self):
        trace = get_workload("swim").generate(200)
        assert roundtrip(trace).group == "FP"

    def test_file_helpers(self, tmp_path):
        trace = get_workload("mcf").generate(300)
        path = str(tmp_path / "t.dmdc")
        n = save_trace_file(trace, path)
        assert n == (tmp_path / "t.dmdc").stat().st_size
        loaded = load_trace_file(path)
        traces_equal(trace, loaded)
        validate_trace(loaded)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999), n=st.integers(10, 300))
    def test_roundtrip_property(self, seed, n):
        spec = WorkloadSpec(name="rt", seed=seed)
        trace = SyntheticWorkload(spec).generate(n)
        traces_equal(trace, roundtrip(trace))


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceError, match="magic"):
            load_trace(io.BytesIO(b"NOPE" + b"\x00" * 12))

    def test_truncated_header(self):
        with pytest.raises(TraceError, match="truncated"):
            load_trace(io.BytesIO(b"DM"))

    def test_truncated_body(self):
        trace = get_workload("gzip").generate(50)
        buf = io.BytesIO()
        save_trace(trace, buf)
        data = buf.getvalue()[:-10]
        with pytest.raises(TraceError, match="truncated trace at record"):
            load_trace(io.BytesIO(data))

    def test_bad_version(self):
        trace = get_workload("gzip").generate(5)
        buf = io.BytesIO()
        save_trace(trace, buf)
        data = bytearray(buf.getvalue())
        data[4] = 99  # version byte
        with pytest.raises(TraceError, match="version"):
            load_trace(io.BytesIO(bytes(data)))
