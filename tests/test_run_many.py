"""The batched ``run_many`` entry point.

``run_many`` amortizes trace generation and SoA kernel-buffer allocation
across a batch of design points.  The contract it must keep while doing
so: results come back in request order, each one bit-identical to
running that request alone, with no RNG or kernel state leaking between
batch elements — and the batch path must not perturb the engine's
content-addressed caching.
"""

from repro.exec.cache import ResultCache
from repro.exec.engine import ExecutionEngine
from repro.exec.request import RunRequest
from repro.sim.config import CONFIG2, SchemeConfig
from repro.sim.runner import run_many, run_workload
from repro.workloads import get_workload

BUDGET = 1_200


def _req(label="conventional", workload="gzip", seed=1, budget=BUDGET):
    return RunRequest(CONFIG2.with_scheme(SchemeConfig.from_label(label)),
                      workload, budget, seed)


def _solo(request):
    return run_workload(request.config, get_workload(request.workload),
                        max_instructions=request.budget, seed=request.seed)


def test_results_match_requests_in_order():
    """A mixed batch (schemes x workloads x seeds, so traces and kernel
    buffers are shared across elements) returns one result per request,
    in order, each bit-identical to an individual run."""
    requests = [
        _req("conventional", "gzip", seed=1),
        _req("dmdc", "mcf", seed=2),
        _req("dmdc", "gzip", seed=1),
        _req("storesets", "mcf", seed=1),
        _req("conventional", "gzip", seed=3),
    ]
    batch = run_many(requests)
    assert len(batch) == len(requests)
    for request, result in zip(requests, batch):
        assert result.to_dict() == _solo(request).to_dict()


def test_seeds_do_not_leak_between_elements():
    """Two same-seed runs bracketing a different-seed run must agree
    exactly: each element gets a fresh Processor and RNG stream even
    though they share a trace and kernel buffers.  dmdc on mcf is
    seed-sensitive (the seed drives wrong-path load injection, which
    perturbs YLA state), so the middle run really is different."""
    requests = [_req("dmdc", "mcf", seed=11),
                _req("dmdc", "mcf", seed=12),
                _req("dmdc", "mcf", seed=11)]
    first, middle, again = run_many(requests)
    assert first.to_dict() == again.to_dict()
    assert first.to_dict() != middle.to_dict()


def test_budget_none_uses_environment_default(monkeypatch):
    from repro.sim.runner import INSTRUCTIONS_ENV

    monkeypatch.setenv(INSTRUCTIONS_ENV, "1000")
    result = run_many([_req(budget=None)])[0]
    assert result.committed == 1_000


def test_cache_keys_unchanged_by_batching(tmp_path):
    """Batch execution must not change design-point identity: a point
    simulated through the engine's batched path is found again under the
    same key by a fresh engine (disk hit, no re-simulation)."""
    requests = [_req("conventional", "gzip"), _req("dmdc", "gzip")]
    keys_before = [request.cache_key() for request in requests]

    cache_dir = tmp_path / "cache"
    with ExecutionEngine(cache=ResultCache(cache_dir), max_workers=1) as first:
        cold = first.run(requests)
        assert first.stats.executed == 2
    assert [request.cache_key() for request in requests] == keys_before

    with ExecutionEngine(cache=ResultCache(cache_dir), max_workers=1) as second:
        warm = second.run(requests)
        assert second.stats.executed == 0
        assert second.stats.disk_hits == 2
    assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
