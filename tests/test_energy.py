"""Tests for the Wattch-style energy model."""

import pytest

from repro.energy.model import EnergyModel
from repro.energy.params import (
    EnergyParams,
    cam_search_energy,
    cam_write_energy,
    flash_clear_energy,
    ram_energy,
    register_energy,
)
from repro.sim.config import CONFIG1, CONFIG2, CONFIG3, SchemeConfig, small_config
from repro.sim.runner import run_workload
from repro.workloads import get_workload


class TestFormulas:
    def test_cam_scales_with_entries_and_bits(self):
        assert cam_search_energy(96, 40) == pytest.approx(2 * cam_search_energy(48, 40))
        assert cam_search_energy(96, 40) > cam_search_energy(96, 20)

    def test_cam_write_cheaper_than_search(self):
        assert cam_write_energy(96) < cam_search_energy(96)

    def test_ram_sublinear_in_entries(self):
        quad = ram_energy(4096, 8) / ram_energy(1024, 8)
        assert 1.0 < quad < 4.0

    def test_register_tiny_vs_cam(self):
        assert register_energy(16) < 0.01 * cam_search_energy(48)

    def test_flash_clear_scales(self):
        assert flash_clear_energy(4096) == pytest.approx(4 * flash_clear_energy(1024))

    def test_custom_params_flow_through(self):
        doubled = EnergyParams(cam_bit=2 * EnergyParams().cam_bit)
        assert cam_search_energy(48, params=doubled) == pytest.approx(
            2 * cam_search_energy(48)
        )


@pytest.fixture(scope="module")
def runs():
    """One baseline + one DMDC + one YLA run on a shared small workload."""
    out = {}
    for key, scheme in (
        ("base", SchemeConfig(kind="conventional")),
        ("dmdc", SchemeConfig(kind="dmdc")),
        ("yla", SchemeConfig(kind="yla")),
    ):
        cfg = CONFIG2.with_scheme(scheme)
        out[key] = (cfg, run_workload(cfg, get_workload("gzip"), max_instructions=4000))
    return out


class TestModelOnRuns:
    def test_breakdown_components_complete(self, runs):
        cfg, result = runs["base"]
        b = EnergyModel(cfg).evaluate(result)
        for key in ("icache", "dcache", "l2", "bpred", "rename", "rob", "iq",
                    "regfile", "fu", "sq", "lq", "clock"):
            assert b.components[key] > 0, key
        assert b.total == pytest.approx(sum(b.components.values()))

    def test_share_sums_to_one(self, runs):
        cfg, result = runs["base"]
        b = EnergyModel(cfg).evaluate(result)
        assert sum(b.share(k) for k in b.components) == pytest.approx(1.0)

    def test_baseline_lq_detail(self, runs):
        cfg, result = runs["base"]
        b = EnergyModel(cfg).evaluate(result)
        assert "search" in b.lq_detail and "allocate" in b.lq_detail
        assert "fifo" not in b.lq_detail

    def test_dmdc_lq_detail(self, runs):
        cfg, result = runs["dmdc"]
        b = EnergyModel(cfg).evaluate(result)
        assert "fifo" in b.lq_detail and "table" in b.lq_detail and "yla" in b.lq_detail
        assert "search" not in b.lq_detail

    def test_dmdc_saves_most_lq_energy(self, runs):
        base = EnergyModel(runs["base"][0]).evaluate(runs["base"][1])
        dmdc = EnergyModel(runs["dmdc"][0]).evaluate(runs["dmdc"][1])
        assert dmdc.lq < 0.2 * base.lq

    def test_yla_saves_some_lq_energy(self, runs):
        base = EnergyModel(runs["base"][0]).evaluate(runs["base"][1])
        yla = EnergyModel(runs["yla"][0]).evaluate(runs["yla"][1])
        assert 0.4 * base.lq < yla.lq < 0.95 * base.lq

    def test_lq_share_grows_with_machine_size(self):
        shares = []
        for cfg in (CONFIG1, CONFIG2, CONFIG3):
            result = run_workload(cfg, get_workload("gzip"), max_instructions=3000)
            shares.append(EnergyModel(cfg).evaluate(result).share("lq"))
        assert shares[0] < shares[1] < shares[2]
        assert 0.01 < shares[0] and shares[2] < 0.2

    def test_clock_energy_proportional_to_cycles(self, runs):
        cfg, result = runs["base"]
        model = EnergyModel(cfg)
        b = model.evaluate(result)
        assert b.components["clock"] == pytest.approx(result.cycles * model.clock_per_cycle)
