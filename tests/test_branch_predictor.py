"""Unit tests for the combined branch predictor and BTB."""

from repro.frontend.branch_predictor import (
    Bimodal,
    BranchTargetBuffer,
    CombinedPredictor,
    Gshare,
)


class TestBimodal:
    def test_learns_bias(self):
        b = Bimodal(64)
        for _ in range(4):
            b.update(0x100, True)
        assert b.predict(0x100)
        for _ in range(4):
            b.update(0x100, False)
        assert not b.predict(0x100)

    def test_counters_saturate(self):
        b = Bimodal(64)
        for _ in range(100):
            b.update(0x100, True)
        b.update(0x100, False)
        assert b.predict(0x100)  # one miss doesn't flip a saturated counter


class TestGshare:
    def test_learns_alternating_pattern(self):
        """Bimodal can't learn strict alternation; gshare history can."""
        g = Gshare(1024, history_bits=8)
        outcome = True
        correct = 0
        for i in range(400):
            hist = g.history
            pred = g.predict(0x200)
            g.push_history(outcome)
            g.update(0x200, outcome, hist)
            if i >= 200:
                correct += int(pred == outcome)
            outcome = not outcome
        assert correct / 200 > 0.95

    def test_history_repair(self):
        g = Gshare(256, history_bits=4)
        g.set_history(0b1010)
        assert g.history == 0b1010
        g.push_history(True)
        assert g.history == 0b0101


class TestBTB:
    def test_install_lookup(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x100) is None
        btb.install(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_update_existing(self):
        btb = BranchTargetBuffer(64, 4)
        btb.install(0x100, 0x500)
        btb.install(0x100, 0x600)
        assert btb.lookup(0x100) == 0x600

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
        # Three branches mapping to the same set (pc bits [4:2] select set).
        pcs = [0x10, 0x10 + 4 * 4, 0x10 + 8 * 4]
        set_idx = lambda pc: (pc >> 2) & 3
        assert len({set_idx(pc) for pc in pcs}) == 1
        btb.install(pcs[0], 1)
        btb.install(pcs[1], 2)
        btb.lookup(pcs[0])          # touch: pcs[0] becomes MRU
        btb.install(pcs[2], 3)      # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None

    def test_hit_miss_counters(self):
        btb = BranchTargetBuffer(64, 4)
        btb.lookup(0x100)
        btb.install(0x100, 1)
        btb.lookup(0x100)
        assert btb.misses == 1 and btb.hits == 1


class TestCombined:
    def test_learns_strong_bias(self):
        p = CombinedPredictor(bimodal_entries=256, gshare_entries=256,
                              history_bits=6, meta_entries=256,
                              btb_entries=64, btb_assoc=4)
        mispredicts = 0
        for i in range(400):
            taken = True
            pred, snap = p.predict(0x300)
            if p.resolve(0x300, taken, snap) and i > 50:
                mispredicts += 1
        assert mispredicts == 0

    def test_meta_prefers_gshare_on_patterns(self):
        p = CombinedPredictor(bimodal_entries=64, gshare_entries=1024,
                              history_bits=8, meta_entries=64,
                              btb_entries=64, btb_assoc=4)
        outcome = True
        correct = 0
        for i in range(600):
            pred, snap = p.predict(0x300)
            p.resolve(0x300, outcome, snap)
            if i >= 300:
                correct += int(pred == outcome)
            outcome = not outcome
        assert correct / 300 > 0.9

    def test_accuracy_property(self):
        p = CombinedPredictor()
        assert p.accuracy == 1.0
        pred, snap = p.predict(0x40)
        p.resolve(0x40, not pred, snap)
        assert p.accuracy == 0.0

    def test_history_repaired_on_mispredict(self):
        p = CombinedPredictor(gshare_entries=256, history_bits=8)
        pred, snap = p.predict(0x40)
        actual = not pred
        p.resolve(0x40, actual, snap)
        history_at_predict = snap[0]
        expected = ((history_at_predict << 1) | int(actual)) & 0xFF
        assert p.gshare.history == expected
