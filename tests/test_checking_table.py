"""Unit tests for DMDC's checking table (Sections 4.2-4.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.checking_table import CheckingTable, granule_bitmap
from repro.errors import ConfigError


class TestGranuleBitmap:
    def test_full_quadword(self):
        assert granule_bitmap(0x100, 8) == 0xF

    def test_word_halves(self):
        assert granule_bitmap(0x100, 4) == 0b0011
        assert granule_bitmap(0x104, 4) == 0b1100

    def test_halfword(self):
        assert granule_bitmap(0x102, 2) == 0b0010

    def test_byte_rounds_to_granule(self):
        assert granule_bitmap(0x101, 1) == 0b0001

    @given(st.integers(0, 1 << 20), st.sampled_from([1, 2, 4, 8]))
    def test_bitmap_nonzero_and_4bit(self, addr, size):
        addr &= ~(size - 1)
        bits = granule_bitmap(addr, size)
        assert 0 < bits <= 0xF


class TestWrtSemantics:
    def test_mark_then_check_hits(self):
        t = CheckingTable(256)
        t.mark_store(0x100, 8)
        assert t.check_load(0x100, 8) == CheckingTable.WRT_HIT

    def test_disjoint_granules_do_not_collide(self):
        """A narrow store and a narrow load to different halves of the same
        quad word must not replay (Section 4.4 bitmap)."""
        t = CheckingTable(256)
        t.mark_store(0x100, 4)
        assert t.check_load(0x104, 4) == CheckingTable.CLEAR
        assert t.check_load(0x100, 4) == CheckingTable.WRT_HIT

    def test_hash_conflict_hits(self):
        t = CheckingTable(16)
        t.mark_store(0x100, 8)
        # find an aliasing quad word
        alias = next(
            qw * 8 for qw in range(1 << 12)
            if qw * 8 != 0x100 and t.index(qw * 8) == t.index(0x100)
        )
        assert t.check_load(alias, 8) == CheckingTable.WRT_HIT

    def test_clear_resets(self):
        t = CheckingTable(256)
        t.mark_store(0x100, 8)
        t.clear()
        assert t.check_load(0x100, 8) == CheckingTable.CLEAR
        assert t.marked_count == 0
        assert t.clears == 1

    def test_counters(self):
        t = CheckingTable(256)
        t.mark_store(0, 8)
        t.check_load(0, 8)
        assert t.writes == 1 and t.reads == 1

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            CheckingTable(100)


class TestInvSemantics:
    def test_inv_marks_whole_line(self):
        t = CheckingTable(1024)
        indices = t.mark_invalidation(0x1000, 128)
        assert len(indices) == 16  # 128B line = 16 quad words

    def test_inv_only_promotes_first_load(self):
        """First load to an INV entry is not replayed but promotes the
        granules to WRT; a second overlapping load replays (write
        serialization, Section 4.3)."""
        t = CheckingTable(1024)
        t.mark_invalidation(0x1000, 128)
        assert t.check_load(0x1008, 8) == CheckingTable.PROMOTED
        assert t.check_load(0x1008, 8) == CheckingTable.WRT_HIT

    def test_inv_promotion_is_granular(self):
        t = CheckingTable(1024)
        t.mark_invalidation(0x1000, 128)
        assert t.check_load(0x1000, 4) == CheckingTable.PROMOTED
        # The other half of the quad word was not promoted.
        assert t.check_load(0x1004, 4) == CheckingTable.PROMOTED
        assert t.check_load(0x1004, 4) == CheckingTable.WRT_HIT

    def test_wrt_takes_precedence_over_inv(self):
        t = CheckingTable(1024)
        t.mark_store(0x1000, 8)
        t.mark_invalidation(0x1000, 128)
        assert t.check_load(0x1000, 8) == CheckingTable.WRT_HIT


class TestModelBased:
    @given(st.lists(
        st.tuples(st.sampled_from(["store", "load", "clear"]),
                  st.integers(0, 255).map(lambda x: x * 8),
                  st.sampled_from([2, 4, 8])),
        max_size=80,
    ))
    def test_against_reference_model(self, ops):
        """The table never misses a genuinely marked granule (no false
        negatives relative to an exact-granule reference model)."""
        t = CheckingTable(64)
        marked = set()  # exact (granule_addr) pairs marked by stores
        for kind, addr, size in ops:
            addr &= ~(size - 1)
            if kind == "store":
                t.mark_store(addr, size)
                for g in range(addr, addr + max(size, 2), 2):
                    marked.add(g)
            elif kind == "clear":
                t.clear()
                marked.clear()
            else:
                outcome = t.check_load(addr, size)
                touches_marked = any(
                    g in marked for g in range(addr, addr + max(size, 2), 2)
                )
                if touches_marked:
                    assert outcome == CheckingTable.WRT_HIT
