"""Unit tests for statistics containers."""

from repro.stats.counters import CounterSet, Histogram, RunningMean


class TestCounterSet:
    def test_default_zero(self):
        c = CounterSet()
        assert c["missing"] == 0
        assert "missing" not in c

    def test_bump_and_set(self):
        c = CounterSet()
        c.bump("a")
        c.bump("a", 4)
        c["b"] = 7
        assert c["a"] == 5 and c["b"] == 7

    def test_merge(self):
        a, b = CounterSet(), CounterSet()
        a.bump("x", 2)
        b.bump("x", 3)
        b.bump("y", 1)
        a.merge(b)
        assert a["x"] == 5 and a["y"] == 1

    def test_rate(self):
        c = CounterSet()
        c["hits"] = 30
        c["total"] = 60
        assert c.rate("hits", "total") == 0.5
        assert c.rate("hits", "total", scale=100) == 50.0
        assert c.rate("hits", "absent") == 0.0

    def test_names_sorted(self):
        c = CounterSet()
        c.bump("b")
        c.bump("a")
        assert list(c.names()) == ["a", "b"]

    def test_as_dict_snapshot(self):
        c = CounterSet()
        c.bump("a")
        snap = c.as_dict()
        c.bump("a")
        assert snap["a"] == 1 and c["a"] == 2


class TestRunningMean:
    def test_empty(self):
        m = RunningMean()
        assert m.mean == 0.0 and m.min is None and m.max is None

    def test_stats(self):
        m = RunningMean()
        for v in (1.0, 5.0, 3.0):
            m.add(v)
        assert m.mean == 3.0 and m.min == 1.0 and m.max == 5.0 and m.count == 3


class TestHistogram:
    def test_mean(self):
        h = Histogram()
        h.add(2)
        h.add(4)
        assert h.mean == 3.0

    def test_weighted(self):
        h = Histogram()
        h.add(10, weight=3)
        assert h.count == 3 and h.total == 30

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 101):
            h.add(v)
        assert h.percentile(50) == 50
        assert h.percentile(100) == 100
        assert Histogram().percentile(50) == 0

    def test_items_sorted(self):
        h = Histogram()
        h.add(5)
        h.add(1)
        h.add(5)
        assert list(h.items()) == [(1, 1), (5, 2)]
