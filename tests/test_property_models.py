"""Model-based property tests: components vs executable reference models."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checking_table import CheckingTable
from repro.core.storesets import StoreSetPredictor
from repro.mem.cache import Cache, CacheConfig
from repro.utils.bitops import fold_xor


class ReferenceLruCache:
    """Dict-based LRU reference for the cache timing model."""

    def __init__(self, sets, assoc, line):
        self.sets = sets
        self.assoc = assoc
        self.line = line
        self._data = {i: OrderedDict() for i in range(sets)}

    def access(self, addr):
        line = addr // self.line
        index = line % self.sets
        ways = self._data[index]
        hit = line in ways
        if hit:
            ways.move_to_end(line)
        else:
            ways[line] = True
            if len(ways) > self.assoc:
                ways.popitem(last=False)
        return hit


class TestCacheAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 1 << 13), max_size=300),
           st.sampled_from([(512, 1, 64), (1024, 2, 64), (2048, 4, 128)]))
    def test_hit_miss_sequence_matches(self, addrs, geometry):
        size, assoc, line = geometry
        cache = Cache(CacheConfig("c", size, assoc, line, 1))
        ref = ReferenceLruCache(size // (assoc * line), assoc, line)
        for addr in addrs:
            assert cache.access(addr) == ref.access(addr), addr

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 1 << 12)), max_size=200))
    def test_invalidation_interleaved(self, ops):
        """Exact LRU reference extended with line invalidation."""
        cache = Cache(CacheConfig("c", 1024, 2, 64, 1))
        num_sets = 1024 // (2 * 64)
        ref = {i: OrderedDict() for i in range(num_sets)}
        for invalidate, addr in ops:
            line = addr // 64
            ways = ref[line % num_sets]
            if invalidate:
                was_present = line in ways
                assert cache.invalidate_line(addr) == was_present
                ways.pop(line, None)
            else:
                hit = line in ways
                assert cache.access(addr) == hit
                if hit:
                    ways.move_to_end(line)
                else:
                    ways[line] = True
                    if len(ways) > 2:
                        ways.popitem(last=False)


class TestCheckingTableNeverForgets:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255).map(lambda q: q * 8), min_size=1, max_size=40),
           st.sampled_from([16, 64, 256]))
    def test_marked_addresses_always_hit(self, addrs, entries):
        """No false negatives: every marked address hits until cleared."""
        table = CheckingTable(entries)
        for addr in addrs:
            table.mark_store(addr, 8)
        for addr in addrs:
            assert table.check_load(addr, 8) == CheckingTable.WRT_HIT
        table.clear()
        for addr in addrs:
            assert table.check_load(addr, 8) == CheckingTable.CLEAR

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, (1 << 40) - 1), st.sampled_from([4, 8, 12]))
    def test_index_matches_fold(self, addr, bits):
        table = CheckingTable(1 << bits)
        assert table.index(addr) == fold_xor(addr >> 3, bits)


class TestStoreSetsModel:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(16, 31)),
                    min_size=1, max_size=30))
    def test_training_converges_pairwise(self, pairs):
        """Immediately after (re)training a pair, it shares a set.

        Store-set merging is not transitive (only the two colliding SSIT
        entries adopt the common id, as in the original hardware design),
        so repeated violations are what converge a pair — model exactly
        that.
        """
        p = StoreSetPredictor(ssit_entries=256, max_sets=64)
        for load_i, store_i in pairs:
            p.record_violation(load_i * 4, store_i * 4)
            assert p.set_of(load_i * 4) is not None
            assert p.set_of(load_i * 4) == p.set_of(store_i * 4)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["train", "dispatch", "resolve", "squash"]),
                              st.integers(0, 7), st.integers(0, 100)),
                    max_size=60))
    def test_lfst_never_blocks_on_resolved_or_squashed(self, ops):
        p = StoreSetPredictor(ssit_entries=64, max_sets=16)
        inflight = {}
        p.record_violation(0x0, 0x4)  # seed one set
        for kind, pc_i, seq in ops:
            pc = pc_i * 4
            if kind == "train":
                p.record_violation(pc, (pc_i + 8) * 4)
            elif kind == "dispatch":
                p.store_dispatched(pc, seq)
                if p.set_of(pc) is not None:
                    inflight[p.set_of(pc)] = seq
            elif kind == "resolve":
                p.store_resolved(pc, seq)
                sset = p.set_of(pc)
                if sset is not None and inflight.get(sset) == seq:
                    del inflight[sset]
            else:
                p.squash(seq)
                inflight = {s: q for s, q in inflight.items() if q <= seq}
        # Any blocking answer must correspond to a tracked in-flight store.
        for pc_i in range(8):
            blocker = p.blocking_store(pc_i * 4, load_seq=10_000)
            if blocker is not None:
                assert blocker in inflight.values()
