"""Tests for the run harness and experiment helpers."""

import os

import pytest

from repro.sim.config import small_config
from repro.sim.runner import DEFAULT_INSTRUCTIONS, instruction_budget, run_trace, run_workload
from repro.workloads import get_workload
from tests.conftest import TraceBuilder


class TestInstructionBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
        assert instruction_budget() == DEFAULT_INSTRUCTIONS
        assert instruction_budget(5000) == 5000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "7000")
        assert instruction_budget() == 7000
        assert instruction_budget(99) == 7000  # env wins

    def test_env_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "10")
        assert instruction_budget() == 1000

    def test_env_malformed_names_variable_and_value(self, monkeypatch):
        from repro.errors import ConfigError
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "12k")
        with pytest.raises(ConfigError, match="REPRO_INSTRUCTIONS.*'12k'"):
            instruction_budget()


class TestRunHelpers:
    def test_run_workload_generates_margin(self, tiny_config):
        result = run_workload(tiny_config, get_workload("gzip"), max_instructions=1500)
        assert result.committed == 1500
        assert result.workload == "gzip" and result.group == "INT"
        assert result.config_name == "small"

    def test_run_trace_validation(self, tiny_config):
        b = TraceBuilder()
        b.load(0x101, size=8)  # misaligned
        b.fill(5)
        from repro.errors import TraceError
        with pytest.raises(TraceError):
            run_trace(tiny_config, b.build(), validate=True)

    def test_prewarm_eliminates_cold_icache_misses(self, tiny_config):
        trace = get_workload("gzip").generate(2000)
        cold = run_trace(tiny_config, trace, max_instructions=1500, prewarm=False)
        trace2 = get_workload("gzip").generate(2000)
        warm = run_trace(tiny_config, trace2, max_instructions=1500, prewarm=True)
        assert warm.counters["icache.misses"] <= cold.counters["icache.misses"]

    def test_deterministic_runs(self, tiny_config):
        a = run_workload(tiny_config, get_workload("gzip"), max_instructions=1200)
        b = run_workload(tiny_config, get_workload("gzip"), max_instructions=1200)
        assert a.cycles == b.cycles
        assert a.counters.as_dict() == b.counters.as_dict()


class TestExperimentHelpers:
    def test_suite_workloads_env(self, monkeypatch):
        from repro.experiments.common import suite_workloads
        monkeypatch.setenv("REPRO_WORKLOADS_PER_GROUP", "3")
        names = suite_workloads()
        assert len(names) == 6
        monkeypatch.delenv("REPRO_WORKLOADS_PER_GROUP")
        assert len(suite_workloads()) == 26

    def test_run_suite_serial(self, monkeypatch, tiny_config):
        from repro.experiments.common import run_suite
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        results = run_suite(tiny_config, budget=800, workloads=["gzip", "swim"])
        assert set(results) == {"gzip", "swim"}
        assert results["swim"].group == "FP"

    def test_group_means(self):
        from repro.experiments.common import group_means
        from repro.sim.result import SimulationResult
        from repro.stats.counters import CounterSet

        def mk(name, group, cycles):
            return SimulationResult(name, group, "c", "s", cycles, 100, CounterSet())

        results = {
            "a": mk("a", "INT", 10), "b": mk("b", "INT", 30), "c": mk("c", "FP", 20),
        }
        out = group_means(results, lambda r: float(r.cycles))
        assert out["INT"]["mean"] == 20.0 and out["INT"]["min"] == 10.0
        assert out["FP"]["n"] == 1
