"""Tier-1 tests for the observability layer (``src/repro/obs``).

Unit coverage for the event sinks and the recorder seams, plus the
end-to-end contracts: ``profile_run`` reconciles exactly against the
counters, ``attach_observer``/``detach_observer`` are symmetric (the
fast path comes back once the last hook is gone), the JSONL sink
round-trips every emitted event, and the ``repro profile`` CLI and
``api.profile`` verb both surface the same report.
"""

import json

import pytest

from repro import api
from repro.cli import main
from repro.errors import SimulationError
from repro.obs import (
    EventRing,
    JsonlSink,
    ObsEvent,
    ObservabilityRecorder,
    attach_observer,
    build_attribution,
    detach_observer,
    profile_run,
    profile_workload,
)
from repro.obs.attribution import ReconLine
from repro.sim.config import CONFIG2, SchemeConfig, small_config
from repro.sim.processor import Processor
from repro.workloads import get_workload

BUDGET = 3_000


def _processor(scheme: str = "dmdc", workload: str = "mcf",
               budget: int = BUDGET) -> Processor:
    config = CONFIG2.with_scheme(SchemeConfig.from_label(scheme))
    trace = get_workload(workload).generate(budget + 2_000)
    return Processor(config, trace, seed=1)


# -- event sinks ---------------------------------------------------------
class TestEventRing:
    def test_bounded_wrap_keeps_most_recent(self):
        ring = EventRing(capacity=3)
        for i in range(10):
            ring.append(ObsEvent(i, "fetch", i, 0x100 + i, ""))
        assert len(ring) == 3
        assert [e.cycle for e in ring.events()] == [7, 8, 9]
        assert ring.appended == 10
        assert ring.dropped == 7

    def test_capacity_zero_counts_but_retains_nothing(self):
        ring = EventRing(capacity=0)
        ring.append(ObsEvent(1, "fetch", 0, 0, ""))
        assert len(ring) == 0
        assert ring.appended == 1
        assert ring.dropped == 1


class TestJsonlSink:
    def test_round_trips_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.append(ObsEvent(5, "replay", 42, 0x400, "commit:true"))
            sink.append(ObsEvent(6, "commit", 42, 0x400, ""))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"cycle": 5, "kind": "replay", "seq": 42,
                         "pc": 0x400, "detail": "commit:true"}

    def test_append_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "e.jsonl"))
        sink.close()
        sink.append(ObsEvent(1, "fetch", 0, 0, ""))  # must not raise
        assert sink.appended == 0


# -- attach/detach symmetry ----------------------------------------------
class TestAttachDetach:
    def test_attach_wires_every_seam(self):
        proc = _processor()
        recorder = attach_observer(proc)
        assert proc.tracer is recorder
        assert proc.obs is recorder
        assert proc.scheme.obs is recorder
        assert not proc.fastpath_enabled

    def test_detach_restores_everything(self):
        proc = _processor()
        assert proc.fastpath_enabled
        recorder = attach_observer(proc)
        detach_observer(proc, recorder)
        assert proc.tracer is None
        assert proc.obs is None
        assert proc.scheme.obs is None
        assert proc.fastpath_enabled

    def test_attach_requires_fresh_processor(self):
        proc = _processor(budget=200)
        proc.prewarm()
        proc.run(200)
        with pytest.raises(SimulationError):
            attach_observer(proc)

    def test_attach_refuses_existing_tracer(self):
        from repro.sim.pipetrace import PipelineTracer
        proc = _processor()
        proc.tracer = PipelineTracer()
        with pytest.raises(SimulationError):
            attach_observer(proc)

    def test_attach_unwraps_sanitizer_to_innermost_scheme(self):
        from repro.analysis.sanitizer import attach_sanitizer
        proc = _processor()
        inner = proc.scheme
        attach_sanitizer(proc)
        recorder = attach_observer(proc)
        assert inner.obs is recorder


# -- recorder / attribution ----------------------------------------------
class TestRecorder:
    def test_profile_run_reconciles_exactly(self):
        config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        trace = get_workload("mcf").generate(BUDGET + 2_000)
        report = profile_run(config, trace, instructions=BUDGET)
        assert report.ok, [line.to_dict()
                           for line in report.attribution.mismatches()]
        assert report.recorder.events_emitted > 0

    def test_cycle_buckets_partition_all_cycles(self):
        config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        trace = get_workload("gzip").generate(BUDGET + 2_000)
        report = profile_run(config, trace, instructions=BUDGET)
        buckets = report.attribution.cycle_buckets
        assert sum(buckets.values()) == report.result.cycles
        assert all(count >= 0 for count in buckets.values())

    def test_replay_causes_are_site_verdict_tagged(self):
        # mcf at this budget crosses true violations under dmdc (the
        # sanitizer matrix pins that), so commit-site replays exist.
        config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        trace = get_workload("mcf").generate(6_000 + 2_000)
        report = profile_run(config, trace, instructions=6_000)
        causes = report.attribution.replays["by_cause"]
        assert causes, "expected replays on this pinned run"
        for cause in causes:
            site, verdict = cause.split(":")
            assert site in ("commit", "execution", "coherence")
            assert verdict in ("true", "false", "coherence")
        sites = report.top_sites(5)
        assert sites and sites[0].count >= 1

    def test_structure_occupancy_bounded_by_capacity(self):
        config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        trace = get_workload("gzip").generate(BUDGET + 2_000)
        report = profile_run(config, trace, instructions=BUDGET)
        structures = report.attribution.structures
        assert 0 < structures["rob"]["occupancy_mean"] <= config.rob_size
        assert 0 <= structures["lq"]["occupancy_mean"] <= config.lq_size
        assert 0 <= structures["sq"]["occupancy_mean"] <= config.sq_size

    def test_finish_is_idempotent(self):
        proc = _processor(budget=500)
        recorder = attach_observer(proc)
        proc.prewarm()
        result = proc.run(500)
        recorder.finish(result.cycles)
        idle = recorder.cycle_buckets["idle"]
        recorder.finish(result.cycles)
        assert recorder.cycle_buckets["idle"] == idle

    def test_jsonl_stream_matches_emitted_count(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        report = profile_workload(config, get_workload("gzip"),
                                  instructions=1_000, jsonl_path=str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == report.recorder.events_emitted
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"fetch", "dispatch", "issue", "commit"} <= kinds

    def test_mismatch_is_reported_not_masked(self):
        line = ReconLine("fake", 1, 2)
        assert not line.ok
        config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        trace = get_workload("gzip").generate(1_000 + 2_000)
        report = profile_run(config, trace, instructions=1_000)
        report.attribution.reconciliation.append(line)
        assert not report.ok
        assert line in report.attribution.mismatches()


class TestBitInvisibility:
    def test_profiled_result_equals_plain_result(self):
        """The core contract: attaching the full observer changes nothing."""
        plain = _processor()
        plain.prewarm()
        plain_result = plain.run(BUDGET)
        profiled = _processor()
        attach_observer(profiled)
        profiled.prewarm()
        profiled_result = profiled.run(BUDGET)
        assert plain_result.to_dict() == profiled_result.to_dict()
        assert profiled.fast_forwarded_cycles == 0

    def test_small_config_scheme_without_windows_reconciles(self):
        config = small_config(wrongpath_loads=False).with_scheme(
            SchemeConfig(kind="conventional"))
        trace = get_workload("gzip").generate(800 + 2_000)
        report = profile_run(config, trace, instructions=800)
        assert report.ok
        assert report.recorder.windows_opened == 0


# -- entry points --------------------------------------------------------
class TestEntryPoints:
    def test_api_profile_verb(self):
        report = api.profile("gzip", scheme="dmdc", instructions=1_500)
        assert report.ok
        assert report.result.committed == 1_500
        digest = report.summary()
        assert digest["reconciled"] is True
        assert digest["events_emitted"] == report.recorder.events_emitted

    def test_cli_profile_renders_report(self, capsys):
        assert main(["profile", "gzip", "--scheme", "dmdc", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Cycle attribution" in out
        assert "Counter reconciliation: OK" in out
        assert "legend:" in out  # the timeline rendered

    def test_cli_profile_json(self, capsys):
        assert main(["profile", "gzip", "--scheme", "dmdc", "--quick",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["reconciled"] is True
        assert payload["attribution"]["ok"] is True

    def test_cli_profile_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(["profile", "gzip", "--quick", "--jsonl", str(path)]) == 0
        capsys.readouterr()
        assert path.exists() and path.read_text().strip()


def test_build_attribution_empty_run_is_sane():
    """A recorder that saw nothing reconciles against an all-zero result
    without dividing by zero."""
    recorder = ObservabilityRecorder(ring_capacity=4)

    class _ZeroCounters(dict):
        def __getitem__(self, key):
            return 0

    class _Zero:
        workload = "none"
        scheme_name = "none"
        cycles = 0
        committed = 0
        counters = _ZeroCounters()

    result = _Zero()
    report = build_attribution(recorder, result)
    assert report.ok
    assert report.cycle_buckets["idle"] == 0
    assert "empty run" in report.render()
