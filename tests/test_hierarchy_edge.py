"""Edge-case tests for memory hierarchy interactions with the pipeline."""

import pytest

from repro.isa.opcodes import InstrClass
from repro.sim.config import small_config
from repro.sim.runner import run_trace
from tests.conftest import TraceBuilder


class TestLoadLatencyTiers:
    def test_l1_hit_faster_than_miss(self):
        config = small_config(wrongpath_loads=False)
        from repro.sim.processor import Processor

        def cycles_for(prefill):
            b = TraceBuilder()
            b.load(0x4000, dst=1)
            b.fill(4)
            trace = b.build()
            proc = Processor(config, trace)
            proc.prewarm()
            if prefill:
                proc.memory.read(0x4000)
            proc.run(len(trace))
            return proc.cycle

        assert cycles_for(prefill=True) < cycles_for(prefill=False)

    def test_store_commit_fills_cache_for_later_loads(self):
        config = small_config(wrongpath_loads=False)
        b = TraceBuilder()
        b.store(0x4000)
        b.fill(20)                    # let the store commit
        b.load(0x4000, dst=5)
        b.fill(4)
        result = run_trace(config, b.build())
        # The load hits in L1 (filled by the store): no extra L2 misses
        # beyond the store's own write-allocate.
        assert result.counters["dcache.misses"] <= 1 + result.counters["commit.stores"]


class TestForwardingVsCache:
    def test_forwarded_load_does_not_touch_dcache(self):
        config = small_config(wrongpath_loads=False)
        b = TraceBuilder()
        b.fill(2)
        b.store(0x4000)
        b.load(0x4000, dst=5)
        b.fill(8)
        result = run_trace(config, b.build())
        assert result.counters["load.forwarded"] == 1
        # Only the other (cache) loads and the store's commit access memory.
        assert result.counters["dcache.reads"] == 0

    def test_partial_forward_retries_until_store_commits(self):
        config = small_config(wrongpath_loads=False)
        b = TraceBuilder()
        b.store(0x4000, size=4)           # cannot cover an 8-byte load
        b.load(0x4000, dst=5, size=8)
        b.fill(30)
        result = run_trace(config, b.build())
        assert result.counters["load.rejections"] >= 1
        assert result.committed == len(b.build())
        # Eventually the store commits and the load reads the cache.
        assert result.counters["dcache.reads"] >= 1


class TestMisalignedSizes:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_all_access_sizes_flow_through(self, size):
        config = small_config(wrongpath_loads=False)
        b = TraceBuilder()
        b.store(0x4000, size=size)
        b.load(0x4000, dst=5, size=size)
        b.fill(10)
        result = run_trace(config, b.build())
        assert result.committed == len(b.build())

    def test_narrow_store_wide_load_disjoint_halves(self):
        """A 4-byte store and a 4-byte load to the other half of the quad
        word must neither forward nor reject."""
        config = small_config(wrongpath_loads=False)
        b = TraceBuilder()
        b.store(0x4000, size=4)
        b.load(0x4004, dst=5, size=4)
        b.fill(10)
        result = run_trace(config, b.build())
        assert result.counters["load.forwarded"] == 0
        assert result.counters["load.rejections"] == 0
