"""Bit-exact equivalence of the SoA cycle kernel vs the object pipeline.

The structure-of-arrays kernel (:class:`repro.sim.soa.SoaKernel`) fuses
every pipeline stage into one loop over preallocated slot arrays.  It must
be behaviourally invisible: for every scheme family and workload, a run
through the kernel must produce a ``to_dict()`` payload bit-identical to
the object path forced via ``REPRO_NO_SOA=1`` — same cycles, same
counters, same histograms.  The scheme matrix is shared with the
sanitizer sweep and the fast-path suite so all three correctness nets
cover the same nine points.

Observability seams (tracer, hooks, obs recorders) intentionally force
the object path; those runs must *still* match the kernel's results, so
the honest slow path and the kernel can never drift apart unnoticed.
"""

import pytest

from repro.analysis.sanitizer import SCHEME_MATRIX as SCHEMES
from repro.errors import SimulationError
from repro.sim.config import CONFIG2, SchemeConfig
from repro.sim.processor import Processor
from repro.sim.runner import run_trace
from repro.sim.soa import NO_SOA_ENV
from repro.workloads import get_workload

BUDGET = 2_500

WORKLOADS = ("gzip", "mcf")

_TRACES = {}


def _trace(name):
    if name not in _TRACES:
        _TRACES[name] = get_workload(name).generate(BUDGET + 2_000)
    return _TRACES[name]


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme_label", sorted(SCHEMES))
def test_soa_bit_identical(monkeypatch, workload, scheme_label):
    config = CONFIG2.with_scheme(SCHEMES[scheme_label])
    trace = _trace(workload)

    monkeypatch.delenv(NO_SOA_ENV, raising=False)
    soa = run_trace(config, trace, max_instructions=BUDGET, seed=1)

    monkeypatch.setenv(NO_SOA_ENV, "1")
    obj = run_trace(config, trace, max_instructions=BUDGET, seed=1)

    assert soa.to_dict() == obj.to_dict()


def test_soa_kernel_actually_engaged(monkeypatch):
    """Non-vacuousness: a plain run must actually take the kernel (else
    every equivalence assertion above compares the object path to
    itself)."""
    monkeypatch.delenv(NO_SOA_ENV, raising=False)
    proc = Processor(CONFIG2.with_scheme(SchemeConfig(kind="dmdc")),
                     _trace("gzip"), seed=1)
    proc.prewarm()
    proc.run(BUDGET)
    assert proc.kernel_used == "soa"


def test_no_soa_env_forces_object_path(monkeypatch):
    monkeypatch.setenv(NO_SOA_ENV, "1")
    proc = Processor(CONFIG2.with_scheme(SchemeConfig(kind="dmdc")),
                     _trace("gzip"), seed=1)
    proc.prewarm()
    proc.run(BUDGET)
    assert proc.kernel_used == "object"


def test_attached_hook_forces_object_path_with_identical_results(monkeypatch):
    """A hook (here: the shadow-oracle sanitizer) needs the per-object
    slow path; the processor must fall back — and the fallback must agree
    with the kernel bit for bit."""
    from repro.analysis.sanitizer import attach_sanitizer

    monkeypatch.delenv(NO_SOA_ENV, raising=False)
    config = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
    trace = _trace("mcf")

    kernel_proc = Processor(config, trace, seed=1)
    kernel_proc.prewarm()
    kernel_result = kernel_proc.run(BUDGET)
    assert kernel_proc.kernel_used == "soa"

    hooked_proc = Processor(config, trace, seed=1)
    attach_sanitizer(hooked_proc)
    hooked_proc.prewarm()
    hooked_result = hooked_proc.run(BUDGET)
    assert hooked_proc.kernel_used == "object"

    assert kernel_result.to_dict() == hooked_result.to_dict()


def test_soa_progress_guard_raises(monkeypatch):
    """The kernel carries the same livelock guard as ``Processor.step``
    (pinned here because the object-path variant in
    ``test_processor_basic`` pins only the slow loop)."""
    monkeypatch.delenv(NO_SOA_ENV, raising=False)
    proc = Processor(CONFIG2.with_scheme(SchemeConfig(kind="conventional")),
                     _trace("gzip"), seed=1)
    with pytest.raises(SimulationError, match="no forward progress"):
        proc.run(BUDGET, max_cycles=20)
    assert proc.kernel_used == "soa"
