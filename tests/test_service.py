"""Tier-1 tests for the ``repro serve`` daemon (PR: simulation service).

Covers the contract ``docs/service.md`` promises:

* concurrent clients posting the *same* design point share one
  simulation (in-flight coalescing);
* a duplicated burst is answered correctly with fewer simulations
  executed than unique keys submitted (dedup + cache);
* a saturated admission queue answers 429, a draining service 503;
* graceful shutdown (``drain``/SIGTERM) completes in-flight requests
  and exits 0.

The HTTP tests run a real :class:`ReproService` on an ephemeral port
inside the test process; the SIGTERM test boots the actual
``repro serve`` subprocess.
"""

import http.client
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec.engine import EngineStats
from repro.service import (
    Draining,
    MicroBatcher,
    Saturated,
    SchemaError,
    ServiceClient,
    ServiceConfig,
    ServiceHTTPError,
    ServiceMetrics,
    create_server,
    parse_run_payload,
)
from repro.sim.runner import run_workload
from repro.workloads import get_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
BUDGET = 600  # tiny per-point budget keeps every HTTP test fast


def make_request(seed: int = 1, scheme: str = "conventional",
                 workload: str = "gzip", instructions: int = BUDGET):
    return parse_run_payload({
        "workload": workload, "scheme": scheme,
        "instructions": instructions, "seed": seed,
    })


def start_server(**overrides):
    """A live service on an ephemeral port; caller must stop it."""
    defaults = dict(port=0, batch_window=0.01, max_queue=64,
                    request_timeout=60.0, drain_timeout=60.0)
    defaults.update(overrides)
    engine = defaults.pop("engine", None)
    server = create_server(ServiceConfig(**defaults), engine=engine)
    thread = threading.Thread(target=server.serve_forever,
                              name="test-serve", daemon=True)
    thread.start()
    client = ServiceClient(port=server.server_address[1], timeout=60.0)
    return server, thread, client


def stop_server(server, thread):
    server.shutdown()
    server.batcher.close(timeout=5.0)
    thread.join(timeout=5.0)
    server.server_close()


@pytest.fixture
def service():
    server, thread, client = start_server()
    yield server, client
    stop_server(server, thread)


class StallEngine:
    """Engine stub whose ``run`` blocks until the test opens the gate."""

    def __init__(self, result) -> None:
        self.gate = threading.Event()
        self.stats = EngineStats()
        self._result = result

    def run(self, requests):
        assert self.gate.wait(timeout=30.0), "test never opened the gate"
        self.stats.executed += len(requests)
        return [self._result for _ in requests]


@pytest.fixture(scope="module")
def tiny_result():
    return run_workload(make_request().config, get_workload("gzip"),
                        max_instructions=BUDGET)


# -- batcher unit behaviour ---------------------------------------------
class TestMicroBatcher:
    def test_identical_submissions_share_a_ticket(self, tiny_result):
        engine = StallEngine(tiny_result)
        batcher = MicroBatcher(engine, max_queue=8, batch_window=0.2)
        try:
            first = batcher.submit(make_request(seed=3))
            second = batcher.submit(make_request(seed=3))
            assert first is second
            assert batcher.metrics.coalesced_inflight == 1
            assert batcher.metrics.unique_submitted == 1
            engine.gate.set()
            assert first.result(timeout=10.0).ipc == tiny_result.ipc
        finally:
            engine.gate.set()
            batcher.close(timeout=5.0)

    def test_sweep_admission_is_all_or_nothing(self, tiny_result):
        engine = StallEngine(tiny_result)
        batcher = MicroBatcher(engine, max_queue=2, batch_window=5.0)
        try:
            batcher.submit(make_request(seed=1))
            with pytest.raises(Saturated):
                # Needs two fresh slots, only one is free: nothing admitted.
                batcher.submit_many([make_request(seed=2), make_request(seed=3)])
            pending, executing = batcher.depth()
            assert pending + executing == 1
            assert batcher.metrics.rejected_saturation == 2
            # A sweep that coalesces onto the in-flight point still fits.
            tickets = batcher.submit_many(
                [make_request(seed=1), make_request(seed=2)])
            assert len(tickets) == 2
        finally:
            engine.gate.set()
            batcher.close(timeout=5.0)

    def test_drain_refuses_new_work(self, tiny_result):
        engine = StallEngine(tiny_result)
        engine.gate.set()
        batcher = MicroBatcher(engine, batch_window=0.0)
        try:
            assert batcher.drain(timeout=5.0)
            with pytest.raises(Draining):
                batcher.submit(make_request())
            with pytest.raises(Draining):
                batcher.call(lambda: 1)
        finally:
            batcher.close(timeout=5.0)

    def test_call_runs_on_batching_thread(self, tiny_result):
        engine = StallEngine(tiny_result)
        engine.gate.set()
        batcher = MicroBatcher(engine, batch_window=0.0)
        try:
            ticket = batcher.call(lambda: threading.current_thread().name)
            assert ticket.result(timeout=5.0) == "repro-batcher"
        finally:
            batcher.close(timeout=5.0)


# -- HTTP endpoints ------------------------------------------------------
class TestEndpoints:
    def test_healthz_and_metrics_shape(self, service):
        _, client = service
        assert client.healthz() == {"status": "ok"}
        snapshot = client.metrics()
        assert set(snapshot) >= {"service", "batching", "latency", "engine"}
        assert snapshot["service"]["draining"] is False
        assert "p99_seconds" in snapshot["latency"]

    def test_run_roundtrip(self, service):
        _, client = service
        payload = client.run("gzip", scheme="dmdc-local",
                             instructions=BUDGET, counters=True)
        assert payload["workload"] == "gzip"
        assert payload["scheme"] == "dmdc-local"
        assert payload["budget"] == BUDGET
        assert payload["summary"]["ipc"] > 0
        assert "lq.searches_assoc" in payload["counters"]

    def test_sweep_defaults_merge(self, service):
        _, client = service
        body = client.sweep(
            points=[{"scheme": "conventional"}, {"scheme": "dmdc"}],
            defaults={"workload": "mcf", "instructions": BUDGET, "seed": 5},
        )
        assert body["count"] == 2
        schemes = [point["scheme"] for point in body["points"]]
        assert schemes == ["conventional", "dmdc"]
        assert all(point["workload"] == "mcf" for point in body["points"])
        assert all(point["seed"] == 5 for point in body["points"])

    def test_experiment_endpoint(self, service):
        _, client = service
        body = client.experiment("table2", budget=300)
        assert body["id"] == "table2"
        assert body["artifact"].strip()

    def test_traced_run_adds_digest_and_is_bit_identical(self, service):
        _, client = service
        plain = client.run("gzip", scheme="dmdc", instructions=BUDGET)
        traced = client.run("gzip", scheme="dmdc", instructions=BUDGET,
                            trace=True)
        assert "trace" not in plain
        digest = traced["trace"]
        assert digest["reconciled"] is True
        assert digest["events_emitted"] > 0
        assert set(digest) >= {"cycle_buckets", "structures", "replays",
                               "top_replay_sites", "windows", "filtering"}
        # The traced run's architectural summary equals the cached one's.
        assert traced["summary"] == plain["summary"]
        assert traced["key"] == plain["key"]

    def test_trace_must_be_boolean(self, service):
        _, client = service
        status, payload = client.request(
            "POST", "/run", {"workload": "gzip", "instructions": BUDGET,
                             "trace": "yes"})
        assert status == 400
        assert "boolean" in payload["error"]

    def test_trace_rejected_in_sweeps(self, service):
        _, client = service
        for body in (
            {"points": [{"workload": "gzip", "instructions": BUDGET,
                         "trace": True}]},
            {"points": [{"workload": "gzip"}],
             "defaults": {"instructions": BUDGET, "trace": True}},
        ):
            status, payload = client.request("POST", "/sweep", body)
            assert status == 400
            assert "POST /run" in payload["error"]

    def test_metrics_simulator_gauges_accumulate(self, service):
        _, client = service
        client.run("gzip", instructions=BUDGET)
        client.run("gzip", instructions=BUDGET, trace=True)
        snapshot = client.metrics()
        simulator = snapshot["simulator"]
        assert simulator["runs"] == 2
        assert simulator["instructions"] == 2 * BUDGET
        assert simulator["cycles"] > 0
        assert simulator["mean_ipc"] > 0
        assert simulator["traced_runs"] == 1
        assert simulator["traced_events"] > 0

    @pytest.mark.parametrize("status,method,path,body", [
        (400, "POST", "/run", {"workload": "no-such-workload"}),
        (400, "POST", "/run", {"workload": "gzip", "scheme": "magic"}),
        (400, "POST", "/run", {"workload": "gzip", "instructions": 0}),
        (400, "POST", "/run", {"workload": "gzip", "mystery": 1}),
        (400, "POST", "/sweep", {"points": []}),
        (404, "POST", "/no-such", {"workload": "gzip"}),
        (404, "GET", "/experiment/no-such", None),
        (404, "GET", "/no-such", None),
    ])
    def test_error_statuses(self, service, status, method, path, body):
        _, client = service
        got, payload = client.request(method, path, body)
        assert got == status
        assert "error" in payload

    def test_malformed_json_is_400(self, service):
        server, _ = service
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.server_address[1], timeout=30)
        try:
            connection.request("POST", "/run", body=b"{nope",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()


# -- the tentpole guarantees ---------------------------------------------
class TestCoalescing:
    def test_concurrent_identical_keys_share_one_simulation(self, service):
        server, client = service
        clients = 8
        barrier = threading.Barrier(clients)
        responses = [None] * clients

        def post(slot: int) -> None:
            barrier.wait()
            responses[slot] = client.run("gzip", scheme="dmdc",
                                         instructions=BUDGET, seed=11)

        threads = [threading.Thread(target=post, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        keys = {response["key"] for response in responses}
        ipcs = {response["summary"]["ipc"] for response in responses}
        assert len(keys) == 1 and len(ipcs) == 1
        snapshot = server.metrics_snapshot()
        assert snapshot["service"]["received"] == clients
        # However the 8 arrivals interleaved with batching, only one
        # simulation ever ran for this key.
        assert snapshot["engine"]["executed"] == 1
        assert (snapshot["service"]["unique_submitted"]
                + snapshot["service"]["coalesced_inflight"]) == clients

    def test_burst_with_duplication_executes_fewer_than_unique(self, service):
        server, client = service
        unique, requests_total = 20, 100  # 5x key duplication
        # Pre-warm a quarter of the keys: the burst must then execute
        # strictly fewer simulations than unique keys submitted.
        for seed in range(5):
            client.run("gzip", instructions=BUDGET, seed=seed)
        responses = [None] * requests_total
        errors = []

        def post(slot: int) -> None:
            try:
                responses[slot] = client.run("gzip", instructions=BUDGET,
                                             seed=slot % unique)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=post, args=(i,))
                   for i in range(requests_total)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        by_seed = {}
        for slot, response in enumerate(responses):
            assert response is not None
            by_seed.setdefault(slot % unique, set()).add(response["key"])
        assert len(by_seed) == unique
        assert all(len(keys) == 1 for keys in by_seed.values())
        snapshot = server.metrics_snapshot()
        service_stats = snapshot["service"]
        assert service_stats["received"] == requests_total + 5
        assert service_stats["queue_depth"] == 0
        assert service_stats["in_flight"] == 0
        # The headline: fewer simulations than unique keys submitted —
        # coalescing collapsed duplicates and the cache served re-runs.
        assert snapshot["engine"]["executed"] == unique
        assert snapshot["engine"]["executed"] < service_stats["unique_submitted"]
        assert service_stats["coalesced_inflight"] > 0
        assert snapshot["batching"]["max_batch"] > 1


class TestBackpressure:
    def test_saturation_answers_429_with_retry_after(self, tiny_result):
        engine = StallEngine(tiny_result)
        server, thread, client = start_server(engine=engine, max_queue=2,
                                              batch_window=0.005)
        try:
            holders = [threading.Thread(
                target=lambda s=seed: client.run("gzip", instructions=BUDGET,
                                                 seed=s))
                for seed in (101, 102)]
            for holder in holders:
                holder.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if sum(server.batcher.depth()) >= 2:
                    break
                time.sleep(0.01)
            assert sum(server.batcher.depth()) == 2
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.server_address[1], timeout=30)
            try:
                connection.request(
                    "POST", "/run",
                    body=b'{"workload": "gzip", "seed": 103}',
                    headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                assert response.status == 429
                assert response.getheader("Retry-After") == "1"
                response.read()
            finally:
                connection.close()
            assert server.metrics.rejected_saturation == 1
            engine.gate.set()
            for holder in holders:
                holder.join(timeout=30)
        finally:
            engine.gate.set()
            stop_server(server, thread)

    def test_draining_answers_503(self, tiny_result):
        engine = StallEngine(tiny_result)
        engine.gate.set()
        server, thread, client = start_server(engine=engine)
        try:
            assert server.batcher.drain(timeout=5.0)
            with pytest.raises(ServiceHTTPError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 503
            assert excinfo.value.payload["status"] == "draining"
            with pytest.raises(ServiceHTTPError) as excinfo:
                client.run("gzip", instructions=BUDGET)
            assert excinfo.value.status == 503
            assert server.metrics.rejected_draining == 1
        finally:
            stop_server(server, thread)

    def test_request_timeout_answers_503(self, tiny_result):
        engine = StallEngine(tiny_result)
        server, thread, client = start_server(engine=engine,
                                              request_timeout=0.2)
        try:
            with pytest.raises(ServiceHTTPError) as excinfo:
                client.run("gzip", instructions=BUDGET, seed=42)
            assert excinfo.value.status == 503
            assert "still executing" in str(excinfo.value)
            assert server.metrics.timeouts == 1
        finally:
            engine.gate.set()
            stop_server(server, thread)


class TestGracefulShutdown:
    def test_drain_completes_inflight_requests(self):
        server, thread, client = start_server(batch_window=0.05)
        responses = {}

        def post(slot: int) -> None:
            responses[slot] = client.run("gzip", instructions=BUDGET,
                                         seed=200 + slot)

        posters = [threading.Thread(target=post, args=(i,)) for i in range(3)]
        for poster in posters:
            poster.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and server.metrics.received < 3:
            time.sleep(0.01)
        assert server.drain_and_stop()
        thread.join(timeout=5.0)
        server.server_close()
        for poster in posters:
            poster.join(timeout=30)
        assert sorted(responses) == [0, 1, 2]
        assert all(r["summary"]["ipc"] > 0 for r in responses.values())
        assert server.metrics.completed >= 3

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--jobs", "2", "--batch-window", "20"],
            cwd=REPO_ROOT, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.strip().rsplit(":", 1)[1])
            client = ServiceClient(port=port, timeout=60.0)
            assert client.healthz() == {"status": "ok"}

            outcome = {}

            def post() -> None:
                outcome["run"] = client.run("mcf", scheme="dmdc",
                                            instructions=5_000, seed=9)

            poster = threading.Thread(target=post)
            poster.start()
            # SIGTERM only once the point is admitted, so the drain has
            # genuine in-flight work to finish.
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if client.metrics()["service"]["received"] >= 1:
                    break
                time.sleep(0.02)
            proc.send_signal(signal.SIGTERM)
            poster.join(timeout=60)
            assert outcome["run"]["summary"]["ipc"] > 0
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stdout.close()


# -- schema --------------------------------------------------------------
class TestSchema:
    def test_identical_payloads_identical_keys(self):
        a = parse_run_payload({"workload": "gzip", "scheme": "dmdc-local",
                               "instructions": 1000, "seed": 2})
        b = parse_run_payload({"workload": "gzip", "scheme": "dmdc-local",
                               "instructions": 1000, "seed": 2})
        assert a.cache_key() == b.cache_key()

    def test_budget_and_instructions_are_aliases(self):
        a = parse_run_payload({"workload": "gzip", "instructions": 1000})
        b = parse_run_payload({"workload": "gzip", "budget": 1000})
        assert a.cache_key() == b.cache_key()
        with pytest.raises(SchemaError):
            parse_run_payload({"workload": "gzip",
                               "instructions": 1000, "budget": 1000})

    def test_explicit_spec_and_overrides(self):
        request = parse_run_payload({
            "workload": {"name": "custom", "group": "INT",
                         "store_addr_dep_load": 0.2},
            "scheme": {"kind": "dmdc", "local": True},
            "overrides": {"lq_size": 48},
            "instructions": 1000,
        })
        assert request.config.lq_size == 48
        assert request.config.scheme.label() == "dmdc-local"
        with pytest.raises(SchemaError):
            parse_run_payload({"workload": "gzip",
                               "overrides": {"scheme": {"kind": "yla"}}})

    def test_defaults_do_not_leak_unknown_fields(self):
        with pytest.raises(SchemaError):
            parse_run_payload({"workload": "gzip"}, defaults={"mystery": 1})


# -- metrics -------------------------------------------------------------
class TestMetrics:
    def test_snapshot_shape_and_percentiles(self):
        metrics = ServiceMetrics()
        for latency in (0.1, 0.2, 0.3, 0.4):
            metrics.finished(latency)
        metrics.finished(0.5, error=True)
        metrics.observe_batch(3)
        metrics.admitted(coalesced=False)
        metrics.admitted(coalesced=True)
        snapshot = metrics.snapshot(queue_depth=2, in_flight=1,
                                    engine_stats={"executed": 4},
                                    draining=False)
        assert snapshot["service"]["completed"] == 4
        assert snapshot["service"]["errors"] == 1
        assert snapshot["service"]["queue_depth"] == 2
        assert snapshot["batching"]["max_batch"] == 3
        assert snapshot["latency"]["samples"] == 5
        assert snapshot["latency"]["p50_seconds"] == pytest.approx(0.3)
        assert snapshot["latency"]["p99_seconds"] == pytest.approx(0.5)
        assert snapshot["engine"]["executed"] == 4

    def test_empty_snapshot_has_null_latency_not_fake_zero(self):
        """Regression: /metrics polled before the first request completes
        must answer well-formed JSON with null latency fields, not a
        fabricated 0.0 that dashboards would plot as 'instant'."""
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["latency"]["samples"] == 0
        assert snapshot["latency"]["p50_seconds"] is None
        assert snapshot["latency"]["p99_seconds"] is None
        assert snapshot["simulator"]["runs"] == 0
        assert snapshot["simulator"]["mean_ipc"] == 0.0
        import json as json_mod
        json_mod.dumps(snapshot)  # the payload must serialize as-is

    def test_percentile_edge_cases(self):
        from repro.service.metrics import percentile
        assert percentile([], 50) is None
        assert percentile([], 0) is None
        assert percentile([3.0], 0) == 3.0
        assert percentile([3.0], 100) == 3.0
        assert percentile([1.0, 2.0, 3.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0], 100) == 3.0
        # Out-of-range percentiles clamp instead of indexing garbage.
        assert percentile([1.0, 2.0], -5) == 1.0
        assert percentile([1.0, 2.0], 150) == 2.0

    def test_observe_simulation_folds_gauges(self, tiny_result):
        metrics = ServiceMetrics()
        metrics.observe_simulation(tiny_result)
        metrics.observe_simulation(tiny_result, traced=True, events=123)
        snapshot = metrics.snapshot()
        simulator = snapshot["simulator"]
        assert simulator["runs"] == 2
        assert simulator["instructions"] == 2 * tiny_result.committed
        assert simulator["cycles"] == 2 * tiny_result.cycles
        assert simulator["traced_runs"] == 1
        assert simulator["traced_events"] == 123
        assert simulator["mean_ipc"] == pytest.approx(tiny_result.ipc)
