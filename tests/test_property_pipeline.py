"""Property-based whole-pipeline tests.

Hypothesis generates workload parameters (including aggressive aliasing
and slow store addresses) and the invariants must hold for every scheme:

* no true memory-ordering violation ever retires undetected (the
  ground-truth checker raises if a scheme misses one);
* every instruction commits exactly once, in program order;
* the pipeline always terminates within its cycle guard.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.config import SchemeConfig, small_config
from repro.sim.processor import Processor
from repro.workloads import SyntheticWorkload, WorkloadSpec

N_INSTRUCTIONS = 900


@st.composite
def workload_specs(draw):
    return WorkloadSpec(
        name="prop",
        group=draw(st.sampled_from(["INT", "FP"])),
        load_fraction=draw(st.floats(0.15, 0.35)),
        store_fraction=draw(st.floats(0.05, 0.2)),
        branch_fraction=draw(st.floats(0.05, 0.2)),
        fp_fraction=draw(st.floats(0.0, 0.6)),
        working_set_kb=draw(st.sampled_from([16, 64, 256])),
        store_addr_dep_load=draw(st.floats(0.0, 0.5)),
        store_addr_dep_alu=draw(st.floats(0.0, 0.5)),
        load_addr_dep_alu=draw(st.floats(0.0, 0.8)),
        conflict_per_kinstr=draw(st.floats(0.0, 10.0)),
        rmw_fraction=draw(st.floats(0.0, 0.3)),
        branch_bias=draw(st.floats(0.6, 0.99)),
        seed=draw(st.integers(0, 10_000)),
    )


def scheme_configs():
    return st.sampled_from([
        SchemeConfig(kind="conventional"),
        SchemeConfig(kind="yla", yla_registers=2),
        SchemeConfig(kind="bloom", bloom_entries=64),
        SchemeConfig(kind="dmdc"),
        SchemeConfig(kind="dmdc", local=True),
        SchemeConfig(kind="dmdc", table_entries=32),
        SchemeConfig(kind="dmdc", checking_queue_entries=4),
        SchemeConfig(kind="dmdc", safe_loads=False),
        SchemeConfig(kind="dmdc", coherence=True),
    ])


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=workload_specs(), scheme=scheme_configs(),
       wrongpath=st.booleans())
def test_no_missed_violations_and_full_commit(spec, scheme, wrongpath):
    workload = SyntheticWorkload(spec)
    trace = workload.generate(N_INSTRUCTIONS + 200)
    config = small_config(wrongpath_loads=wrongpath).with_scheme(scheme)
    proc = Processor(config, trace, seed=spec.seed)
    result = proc.run(N_INSTRUCTIONS)  # raises OrderingViolationMissed if unsound
    assert result.committed == N_INSTRUCTIONS
    assert result.counters["replays"] >= result.counters["replay.true"]
    assert result.cycles > 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=workload_specs(), rate=st.sampled_from([10.0, 100.0, 300.0]))
def test_coherent_dmdc_survives_invalidation_storms(spec, rate):
    workload = SyntheticWorkload(spec)
    trace = workload.generate(N_INSTRUCTIONS + 200)
    config = small_config().with_scheme(
        SchemeConfig(kind="dmdc", coherence=True)
    ).with_overrides(invalidation_rate=rate)
    result = Processor(config, trace, seed=3).run(N_INSTRUCTIONS)
    assert result.committed == N_INSTRUCTIONS


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=workload_specs())
def test_determinism_across_runs(spec):
    """Identical (workload, config, seed) produce identical results."""
    config = small_config().with_scheme(SchemeConfig(kind="dmdc"))
    a = Processor(config, SyntheticWorkload(spec).generate(700), seed=1).run(500)
    b = Processor(config, SyntheticWorkload(spec).generate(700), seed=1).run(500)
    assert a.cycles == b.cycles
    assert a.counters.as_dict() == b.counters.as_dict()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=workload_specs(), registers=st.sampled_from([1, 2, 8]))
def test_yla_filtering_never_unsound(spec, registers):
    """Under arbitrary workloads the YLA-filtered scheme may search less,
    but the ground-truth checker must stay silent (no missed violations)."""
    config = small_config(wrongpath_loads=False).with_scheme(
        SchemeConfig(kind="yla", yla_registers=registers)
    )
    trace = SyntheticWorkload(spec).generate(800)
    result = Processor(config, trace, seed=2).run(600)
    assert result.committed == 600
