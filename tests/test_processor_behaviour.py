"""Focused pipeline behaviour tests: bandwidth limits, routing, timing."""

import pytest

from repro.isa.opcodes import InstrClass
from repro.sim.config import small_config
from repro.sim.pipetrace import PipelineTracer
from repro.sim.processor import Processor
from repro.sim.runner import run_trace
from tests.conftest import TraceBuilder


def traced(trace, config):
    proc = Processor(config, trace)
    proc.tracer = PipelineTracer(capacity=len(trace) + 8)
    proc.run(len(trace))
    return proc.tracer


class TestDcachePorts:
    def test_load_issue_limited_by_ports(self):
        """With 1 D-cache port, independent loads issue one per cycle."""
        config = small_config(wrongpath_loads=False, dcache_ports=1, width=8,
                              int_alu=8)
        b = TraceBuilder()
        for i in range(6):
            b.load(0x100 + 64 * i, dst=1 + i)
        b.fill(8)
        tracer = traced(b.build(), config)
        issue_cycles = sorted(
            e.cycle_of("issue") for e in tracer.instructions()
            if e.mnemonic == "LOAD"
        )
        # All six loads are ready together but must serialise on the port.
        assert len(set(issue_cycles)) == 6

    def test_two_ports_double_throughput(self):
        config = small_config(wrongpath_loads=False, dcache_ports=2, width=8,
                              int_alu=8)
        b = TraceBuilder()
        for i in range(6):
            b.load(0x100 + 64 * i, dst=1 + i)
        b.fill(8)
        tracer = traced(b.build(), config)
        issue_cycles = [
            e.cycle_of("issue") for e in tracer.instructions()
            if e.mnemonic == "LOAD"
        ]
        from collections import Counter
        per_cycle = Counter(issue_cycles)
        assert max(per_cycle.values()) == 2


class TestFunctionalUnitLimits:
    def test_muldiv_bandwidth(self):
        """Only 2 integer multipliers: 4 ready IMULs take 2 cycles."""
        config = small_config(wrongpath_loads=False, width=8, int_muldiv=2)
        b = TraceBuilder()
        for i in range(4):
            b.alu(dst=1 + i, cls=InstrClass.IMUL)
        b.fill(8)
        tracer = traced(b.build(), config)
        cycles = [e.cycle_of("issue") for e in tracer.instructions()
                  if e.mnemonic == "IMUL"]
        from collections import Counter
        assert max(Counter(cycles).values()) <= 2

    def test_latency_visible_in_trace(self):
        config = small_config(wrongpath_loads=False)
        b = TraceBuilder()
        b.alu(dst=1, cls=InstrClass.IALU)
        b.alu(dst=2, cls=InstrClass.FDIV)
        b.fill(4)
        tracer = traced(b.build(), config)
        by_mnemonic = {e.mnemonic: e for e in tracer.instructions()}
        ialu = by_mnemonic["IALU"]
        fdiv = by_mnemonic["FDIV"]
        assert (ialu.cycle_of("complete") - ialu.cycle_of("issue")) == 1
        assert (fdiv.cycle_of("complete") - fdiv.cycle_of("issue")) == 12


class TestIssueQueueRouting:
    def test_fp_ops_use_fp_queue(self):
        """FP issue-queue capacity binds only FP instructions."""
        config = small_config(wrongpath_loads=False, iq_fp=2, iq_int=16)
        b = TraceBuilder()
        # Many long FP ops to clog the 2-entry FP queue.
        for i in range(8):
            b.alu(dst=40 + i % 8, srcs=(33,), cls=InstrClass.FDIV)
        b.fill(10)
        result = run_trace(config, b.build())
        assert result.counters["stall.iq_full"] > 0
        assert result.committed == len(b.build())

    def test_fp_load_routed_by_destination(self):
        config = small_config(wrongpath_loads=False)
        b = TraceBuilder()
        b.load(0x100, dst=40)   # FP destination
        b.load(0x108, dst=4)    # INT destination
        b.fill(6)
        proc = Processor(config, b.build())
        proc.prewarm()  # skip cold I-cache misses
        loads = []
        for _ in range(200):
            proc.step()
            loads = [e for e in proc.rob if e.is_load]
            if len(loads) == 2:
                break
        assert len(loads) == 2
        assert sorted(e.fp_side for e in loads) == [False, True]


class TestFetchBehaviour:
    def test_taken_branch_ends_fetch_group(self):
        config = small_config(wrongpath_loads=False, width=8)
        b = TraceBuilder()
        b.fill(2)
        b.branch(taken=True, pc=0x5000)
        b.fill(8)
        trace = b.build()
        proc = Processor(config, trace)
        proc.prewarm()  # predictor learns "taken", BTB filled
        proc.tracer = PipelineTracer()
        proc.run(len(trace))
        entries = {e.trace_idx: e for e in proc.tracer.instructions()}
        branch_fetch = entries[2].cycle_of("fetch")
        next_fetch = entries[3].cycle_of("fetch")
        assert next_fetch > branch_fetch

    def test_retry_delay_respected(self):
        config = small_config(wrongpath_loads=False, reject_retry_delay=5)
        b = TraceBuilder()
        b.alu(dst=5, cls=InstrClass.IDIV)
        b.store(0x100, data_src=5)
        b.load(0x100, dst=6)
        b.fill(16)
        tracer = traced(b.build(), config)
        load = next(e for e in tracer.instructions()
                    if e.mnemonic == "LOAD" and e.cycle_of("reject") is not None)
        rejects = [c for c, k in load.events if k == "reject"]
        if len(rejects) >= 2:
            assert rejects[1] - rejects[0] >= 5
        issue = load.cycle_of("issue")
        assert issue is not None and issue - rejects[0] >= 5
