"""Cross-scheme integration: every scheme commits the same program.

Dependence-checking schemes may differ in *when* they detect violations
and how many false replays they cause, but never in architectural
outcome: the same instructions commit, in the same order.
"""

import pytest

from repro.sim.config import SchemeConfig, small_config
from repro.sim.runner import run_trace
from repro.workloads import SyntheticWorkload, WorkloadSpec

SCHEMES = {
    "conventional": SchemeConfig(kind="conventional"),
    "yla": SchemeConfig(kind="yla"),
    "bloom": SchemeConfig(kind="bloom"),
    "dmdc-global": SchemeConfig(kind="dmdc"),
    "dmdc-local": SchemeConfig(kind="dmdc", local=True),
    "dmdc-queue": SchemeConfig(kind="dmdc", checking_queue_entries=16),
}


@pytest.fixture(scope="module")
def stress_trace():
    """A conflict-heavy synthetic workload to exercise replays."""
    spec = WorkloadSpec(name="stress", working_set_kb=32, conflict_per_kinstr=4.0,
                        store_addr_dep_load=0.15, seed=11)
    return SyntheticWorkload(spec).generate(2500)


class TestArchitecturalEquivalence:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_all_instructions_commit(self, name, stress_trace):
        config = small_config(wrongpath_loads=False).with_scheme(SCHEMES[name])
        result = run_trace(config, stress_trace, max_instructions=2000)
        assert result.committed == 2000
        assert result.counters["replays"] >= result.counters["replay.true"]

    def test_same_violations_found_by_all(self, stress_trace):
        """Ground-truth violation counts are scheme-independent up to timing
        perturbation; every scheme must replay at least its true violations."""
        for name, scheme in SCHEMES.items():
            config = small_config(wrongpath_loads=False).with_scheme(scheme)
            result = run_trace(config, stress_trace, max_instructions=2000)
            if result.counters["groundtruth.violations"]:
                assert result.counters["replays"] > 0, name

    def test_dmdc_false_replays_only_add_cycles(self, stress_trace):
        base_cfg = small_config(wrongpath_loads=False)
        base = run_trace(base_cfg, stress_trace, max_instructions=2000)
        dmdc = run_trace(base_cfg.with_scheme(SCHEMES["dmdc-global"]),
                         stress_trace, max_instructions=2000)
        assert dmdc.committed == base.committed
        # Commit-time detection may cost cycles but stays within a few percent.
        assert dmdc.cycles < base.cycles * 1.25

    def test_filtered_schemes_never_search_more_than_baseline(self, stress_trace):
        base_cfg = small_config(wrongpath_loads=False)
        base = run_trace(base_cfg, stress_trace, max_instructions=2000)
        for name in ("yla", "bloom"):
            filt = run_trace(base_cfg.with_scheme(SCHEMES[name]),
                             stress_trace, max_instructions=2000)
            assert (
                filt.counters["lq.searches_assoc"]
                <= base.counters["lq.searches_assoc"] * 1.05
            ), name

    def test_dmdc_never_searches_lq(self, stress_trace):
        cfg = small_config(wrongpath_loads=False).with_scheme(SCHEMES["dmdc-global"])
        result = run_trace(cfg, stress_trace, max_instructions=2000)
        assert result.counters["lq.searches_assoc"] == 0
