"""Tests for the related-work schemes: Garg age-hash and value-based."""

import pytest

from repro.backend.dyninst import DynInstr
from repro.core.schemes.base import CommitDecision
from repro.core.schemes.garg import AgeHashTable, GargAgeHashScheme
from repro.core.schemes.value import ValueBasedScheme
from repro.errors import ConfigError, SimulationError
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.sim.config import SchemeConfig, small_config
from repro.sim.runner import run_trace
from repro.utils.ring import RingBuffer
from repro.workloads import SyntheticWorkload, WorkloadSpec


def mk_load(seq, addr, issued=True):
    d = DynInstr(MicroOp(0x200, InstrClass.LOAD, mem_addr=addr, mem_size=8, dst=2),
                 seq, seq, False)
    if issued:
        d.issue_cycle = 1
    return d


def mk_store(seq, addr):
    d = DynInstr(MicroOp(0x100, InstrClass.STORE, mem_addr=addr, mem_size=8,
                         data_src=1), seq, seq, False)
    d.resolve_cycle = 1
    return d


class TestAgeHashTable:
    def test_monotone_ages(self):
        t = AgeHashTable(64)
        t.observe_load(0x100, 10)
        t.observe_load(0x100, 5)
        assert t.youngest_for(0x100) == 10

    def test_default_old(self):
        assert AgeHashTable(64).youngest_for(0x500) == -1

    def test_aliasing_shares_entries(self):
        t = AgeHashTable(16)
        t.observe_load(0x100, 10)
        alias = next(q * 8 for q in range(1 << 12)
                     if q * 8 != 0x100 and t.index(q * 8) == t.index(0x100))
        assert t.youngest_for(alias) == 10

    def test_rollback(self):
        t = AgeHashTable(64)
        t.observe_load(0x100, 50)
        t.rollback(20)
        assert t.youngest_for(0x100) == 20

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            AgeHashTable(48)


class TestGargScheme:
    def _scheme_with_rob(self, entries=256):
        scheme = GargAgeHashScheme(table_entries=entries)
        rob = RingBuffer(32)
        scheme.attach_rob(rob)
        return scheme, rob

    def test_requires_rob(self):
        with pytest.raises(SimulationError):
            GargAgeHashScheme().on_store_resolve(mk_store(1, 0), 0)

    def test_safe_store_passes(self):
        s, rob = self._scheme_with_rob()
        s.on_load_issue(mk_load(3, 0x100), 0)
        assert s.on_store_resolve(mk_store(5, 0x100), 0) is None
        assert s.stats["stores.safe"] == 1

    def test_premature_load_triggers_flush_from_store(self):
        s, rob = self._scheme_with_rob()
        store = mk_store(5, 0x100)
        younger = mk_load(9, 0x100)
        rob.push(store)
        rob.push(younger)
        s.on_load_issue(younger, 0)
        victim = s.on_store_resolve(store, 0)
        assert victim is younger  # first ROB entry younger than the store
        assert s.stats["replay.execution_time"] == 1

    def test_hash_alias_causes_false_flush(self):
        s, rob = self._scheme_with_rob(entries=16)
        store = mk_store(5, 0x100)
        alias = next(q * 8 for q in range(1 << 12)
                     if q * 8 != 0x100 and s.table.index(q * 8) == s.table.index(0x100))
        innocent = mk_load(9, alias)
        rob.push(store)
        rob.push(innocent)
        s.on_load_issue(innocent, 0)
        assert s.on_store_resolve(store, 0) is innocent
        assert s.stats["replay.false"] == 1

    def test_stale_entry_with_empty_rob_is_harmless(self):
        s, rob = self._scheme_with_rob()
        s.on_load_issue(mk_load(9, 0x100), 0)
        assert s.on_store_resolve(mk_store(5, 0x100), 0) is None
        assert s.stats["garg.stale_hits"] == 1

    def test_repair_variant_rolls_back(self):
        s = GargAgeHashScheme(repair_on_squash=True)
        s.attach_rob(RingBuffer(8))
        s.on_load_issue(mk_load(50, 0x100), 0)
        s.on_squash(10, [])
        assert s.table.youngest_for(0x100) <= 10


class TestValueScheme:
    def test_clean_load_commits_with_reexecution(self):
        s = ValueBasedScheme()
        load = mk_load(5, 0x100)
        assert s.on_commit(load, 1) == CommitDecision.OK
        assert s.stats["value.reexecutions"] == 1

    def test_violated_load_replays(self):
        s = ValueBasedScheme()
        load = mk_load(5, 0x100)
        load.true_violation_store = 2
        assert s.on_commit(load, 1) == CommitDecision.REPLAY
        assert s.stats["replay.true"] == 1

    def test_non_loads_ignored(self):
        s = ValueBasedScheme()
        assert s.on_commit(mk_store(5, 0x100), 1) == CommitDecision.OK
        assert s.stats["value.reexecutions"] == 0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def stress_trace(self):
        spec = WorkloadSpec(name="rw", conflict_per_kinstr=4.0, seed=21)
        return SyntheticWorkload(spec).generate(2500)

    @pytest.mark.parametrize("kind", ["garg", "value"])
    def test_soundness_under_stress(self, kind, stress_trace):
        cfg = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind=kind))
        result = run_trace(cfg, stress_trace, max_instructions=2000)
        assert result.committed == 2000  # ground-truth checker stayed silent

    def test_value_reexecutes_every_load(self, stress_trace):
        cfg = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind="value"))
        result = run_trace(cfg, stress_trace, max_instructions=2000)
        assert result.counters["dcache.reexecutions"] >= result.counters["commit.loads"]

    def test_garg_never_searches_lq(self, stress_trace):
        cfg = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind="garg"))
        result = run_trace(cfg, stress_trace, max_instructions=2000)
        assert result.counters["lq.searches_assoc"] == 0
        assert result.counters["garg.table.writes"] > 0

    def test_energy_ordering(self, stress_trace):
        """DMDC's LQ-functionality energy beats Garg's (the paper's claim)."""
        from repro.energy.model import EnergyModel
        cfg0 = small_config(wrongpath_loads=False)
        model = EnergyModel(cfg0)
        energies = {}
        for kind in ("conventional", "dmdc", "garg"):
            cfg = cfg0.with_scheme(SchemeConfig(kind=kind))
            r = run_trace(cfg, stress_trace, max_instructions=2000)
            energies[kind] = model.evaluate(r).lq
        assert energies["dmdc"] < energies["garg"] < energies["conventional"]
