"""The canonical scheme-label codec: one grammar for CLI, matrix, bench.

``SchemeConfig.label()`` / ``SchemeConfig.from_label()`` replaced three
divergent copies of the label -> config mapping (CLI flag assembly,
``sanitizer.SCHEME_MATRIX`` literals, bench scheme tuples).  These tests
pin the grammar, prove the round-trip property over the whole config
space, and check every consumer goes through the codec.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.config import SCHEME_LABELS, SchemeConfig, scheme_matrix

KINDS = ("conventional", "yla", "bloom", "dmdc", "garg", "value")

scheme_configs = st.builds(
    SchemeConfig,
    kind=st.sampled_from(KINDS),
    yla_registers=st.sampled_from((1, 2, 4, 8, 16)),
    yla_granularity=st.sampled_from((8, 64, 128)),
    bloom_entries=st.sampled_from((64, 256, 1024)),
    table_entries=st.sampled_from((None, 512, 2048)),
    local=st.booleans(),
    safe_loads=st.booleans(),
    checking_queue_entries=st.sampled_from((None, 4, 8, 32)),
    coherence=st.booleans(),
    sq_filter=st.booleans(),
    store_sets=st.booleans(),
)


class TestRoundTrip:
    @given(scheme_configs)
    def test_config_label_config_is_identity(self, config):
        assert SchemeConfig.from_label(config.label()) == config

    @given(scheme_configs)
    def test_label_is_stable_under_reparse(self, config):
        label = config.label()
        assert SchemeConfig.from_label(label).label() == label

    @pytest.mark.parametrize("label", SCHEME_LABELS)
    def test_canonical_matrix_labels_round_trip(self, label):
        assert SchemeConfig.from_label(label).label() == label


class TestGrammar:
    def test_storesets_alias(self):
        assert SchemeConfig.from_label("storesets") == SchemeConfig(
            kind="conventional", store_sets=True)
        assert SchemeConfig(kind="conventional", store_sets=True).label() \
            == "storesets"

    def test_suffixes_decode(self):
        assert SchemeConfig.from_label("dmdc-local").local is True
        assert SchemeConfig.from_label("dmdc-queue8").checking_queue_entries == 8
        assert SchemeConfig.from_label("yla-regs16").yla_registers == 16
        assert SchemeConfig.from_label("bloom-entries256").bloom_entries == 256
        assert SchemeConfig.from_label("dmdc-coherent").coherence is True
        assert SchemeConfig.from_label("dmdc-nosafe").safe_loads is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="bad kind"):
            SchemeConfig.from_label("quantum")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ConfigError, match="bad suffix"):
            SchemeConfig.from_label("dmdc-turbo")


class TestConsumers:
    def test_sanitizer_matrix_is_codec_built(self):
        from repro.analysis.sanitizer import SCHEME_MATRIX
        assert set(SCHEME_MATRIX) == set(SCHEME_LABELS)
        for label, config in SCHEME_MATRIX.items():
            assert config == SchemeConfig.from_label(label)
            assert config.label() == label

    def test_bench_schemes_are_codec_built(self):
        from repro.perf.bench import FULL_SCHEMES, QUICK_SCHEMES
        assert tuple(label for label, _ in FULL_SCHEMES) == SCHEME_LABELS
        for label, config in FULL_SCHEMES + QUICK_SCHEMES:
            assert config == SchemeConfig.from_label(label)

    def test_cli_accepts_full_labels(self):
        from repro.cli import _scheme_from_args, build_parser
        args = build_parser().parse_args(["run", "gzip", "--scheme",
                                          "dmdc-local"])
        assert _scheme_from_args(args) == SchemeConfig.from_label("dmdc-local")

    def test_cli_flags_overlay_the_label(self):
        from repro.cli import _scheme_from_args, build_parser
        args = build_parser().parse_args(
            ["run", "gzip", "--scheme", "dmdc", "--checking-queue", "8"])
        assert _scheme_from_args(args) == SchemeConfig.from_label("dmdc-queue8")

    def test_cli_rejects_bad_label(self, capsys):
        from repro.cli import _scheme_from_args, build_parser
        args = build_parser().parse_args(["run", "gzip", "--scheme", "nope"])
        with pytest.raises(SystemExit):
            _scheme_from_args(args)
        assert "bad kind" in capsys.readouterr().err

    def test_matrix_helper_matches_labels(self):
        matrix = scheme_matrix()
        assert list(matrix) == list(SCHEME_LABELS)
