"""Unit tests for machine/scheme configuration (paper Table 1)."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    CONFIG1,
    CONFIG2,
    CONFIG3,
    CONFIGS,
    MachineConfig,
    SchemeConfig,
    small_config,
)


class TestTable1Presets:
    def test_config2_matches_paper(self):
        assert CONFIG2.width == 8
        assert CONFIG2.rob_size == 256
        assert CONFIG2.iq_int == 48 and CONFIG2.iq_fp == 48
        assert CONFIG2.lq_size == 96 and CONFIG2.sq_size == 48
        assert CONFIG2.regs_int == 200 and CONFIG2.regs_fp == 200
        assert CONFIG2.checking_table == 2048

    def test_config1_and_3_scale(self):
        assert CONFIG1.rob_size == 128 and CONFIG3.rob_size == 512
        assert CONFIG1.lq_size == 48 and CONFIG3.lq_size == 192
        assert CONFIG1.checking_table == 1024 and CONFIG3.checking_table == 4096

    def test_memory_hierarchy_matches_paper(self):
        assert CONFIG2.l1d_size == 32 * 1024 and CONFIG2.l1d_assoc == 2
        assert CONFIG2.l1i_size == 64 * 1024 and CONFIG2.l1i_assoc == 1
        assert CONFIG2.l2_size == 1024 * 1024 and CONFIG2.l2_line_bytes == 128
        assert CONFIG2.l2_latency == 15 and CONFIG2.memory_latency == 120

    def test_predictor_matches_paper(self):
        assert CONFIG2.bimodal_entries == 4096
        assert CONFIG2.gshare_entries == 8192 and CONFIG2.gshare_history == 13
        assert CONFIG2.meta_entries == 8192
        assert CONFIG2.btb_entries == 4096 and CONFIG2.btb_assoc == 4
        assert CONFIG2.branch_penalty == 7

    def test_all_configs_share_core_width(self):
        assert all(c.width == 8 for c in CONFIGS)


class TestValidation:
    def test_rejects_rob_smaller_than_lq(self):
        with pytest.raises(ConfigError):
            MachineConfig(rob_size=32, lq_size=96)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            MachineConfig(width=0)

    def test_scheme_kind_validated(self):
        with pytest.raises(ConfigError):
            SchemeConfig(kind="magic")


class TestHelpers:
    def test_with_scheme_replaces_only_scheme(self):
        dmdc = CONFIG2.with_scheme(SchemeConfig(kind="dmdc"))
        assert dmdc.scheme.kind == "dmdc"
        assert dmdc.rob_size == CONFIG2.rob_size
        assert CONFIG2.scheme.kind == "conventional"  # original untouched

    def test_with_overrides(self):
        c = CONFIG2.with_overrides(invalidation_rate=10.0)
        assert c.invalidation_rate == 10.0

    def test_cache_configs_consistent(self):
        for cfg in CONFIGS:
            assert cfg.l1d_config().num_sets > 0
            assert cfg.l2_config().line_bytes == cfg.l2_line_bytes

    def test_small_config_valid_and_overridable(self):
        c = small_config(width=2)
        assert c.width == 2 and c.rob_size >= c.lq_size

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CONFIG2.rob_size = 1
