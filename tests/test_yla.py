"""Unit and property tests for the YLA register file (paper Section 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.yla import NO_LOAD, YlaFile
from repro.errors import ConfigError


class TestBasics:
    def test_initially_everything_safe(self):
        yla = YlaFile(8)
        assert yla.store_is_safe(0x100, store_age=0)
        assert yla.youngest_for(0x100) == NO_LOAD

    def test_younger_load_makes_store_unsafe(self):
        yla = YlaFile(1)
        yla.observe_load_issue(0x100, age=10)
        assert not yla.store_is_safe(0x200, store_age=5)   # younger load seen
        assert yla.store_is_safe(0x200, store_age=15)      # store younger

    def test_banking_isolates_addresses(self):
        yla = YlaFile(8, granularity_bytes=8)
        yla.observe_load_issue(0x100, age=10)  # bank of 0x100
        other = 0x100 + 8  # adjacent quad word -> different bank
        assert yla.bank(0x100) != yla.bank(other)
        assert yla.store_is_safe(other, store_age=5)
        assert not yla.store_is_safe(0x100, store_age=5)

    def test_granularity_line(self):
        yla = YlaFile(8, granularity_bytes=128)
        assert yla.bank(0x100) == yla.bank(0x100 + 64)   # same line
        assert yla.bank(0x100) != yla.bank(0x100 + 128)

    def test_monotone_updates(self):
        yla = YlaFile(1)
        yla.observe_load_issue(0, age=10)
        yla.observe_load_issue(0, age=5)  # older: ignored
        assert yla.youngest_for(0) == 10

    def test_rollback_clamps(self):
        yla = YlaFile(2)
        yla.observe_load_issue(0, age=10)
        yla.observe_load_issue(8, age=3)
        yla.rollback(5)
        assert yla.youngest_for(0) == 5
        assert yla.youngest_for(8) == 3  # already older: untouched

    def test_hit_rate_counting(self):
        yla = YlaFile(1)
        yla.observe_load_issue(0, age=10)
        yla.store_is_safe(0, 20)
        yla.store_is_safe(0, 5)
        assert yla.compares == 2 and yla.hits == 1
        assert yla.hit_rate == 0.5

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            YlaFile(3)
        with pytest.raises(ConfigError):
            YlaFile(8, granularity_bytes=12)

    def test_snapshot_is_copy(self):
        yla = YlaFile(2)
        snap = yla.snapshot()
        snap[0] = 99
        assert yla.youngest_for(0) == NO_LOAD


@st.composite
def load_histories(draw):
    """A sequence of (addr, age) load issues with increasing ages, plus
    occasional rollbacks."""
    events = []
    age = 0
    for _ in range(draw(st.integers(1, 40))):
        if draw(st.booleans()):
            age += draw(st.integers(1, 5))
            events.append(("load", draw(st.integers(0, 63)) * 8, age))
        else:
            events.append(("rollback", draw(st.integers(0, max(age, 1))), None))
    return events


class TestSoundness:
    @given(load_histories(), st.integers(1, 4), st.integers(0, 63), st.integers(0, 200))
    def test_yla_hit_is_sound(self, events, banks_log2, store_qw, store_age):
        """If YLA declares a store safe, no surviving issued load younger
        than the store exists in the store's bank (reference model)."""
        yla = YlaFile(1 << banks_log2, granularity_bytes=8)
        live_loads = []  # (addr, age) surviving issued loads
        for kind, a, b in events:
            if kind == "load":
                yla.observe_load_issue(a, b)
                live_loads.append((a, b))
            else:
                yla.rollback(a)
                live_loads = [(addr, age) for addr, age in live_loads if age <= a]
        store_addr = store_qw * 8
        if yla.store_is_safe(store_addr, store_age):
            bank = yla.bank(store_addr)
            offenders = [
                (addr, age) for addr, age in live_loads
                if yla.bank(addr) == bank and age > store_age
            ]
            assert offenders == []
