"""Integration tests for invalidation injection and coherent DMDC."""

from repro.coherence.injector import InvalidationInjector
from repro.sim.config import SchemeConfig, small_config
from repro.sim.runner import run_trace, run_workload
from repro.utils.rng import DeterministicRng
from repro.workloads import get_workload


class TestInjectorUnit:
    def test_disabled_at_zero_rate(self):
        inj = InvalidationInjector(DeterministicRng(1), 0.0, 128)
        inj.observe(0x1000)
        assert not inj.enabled
        assert inj.maybe_invalidate() is None

    def test_no_target_without_history(self):
        inj = InvalidationInjector(DeterministicRng(1), 1000.0, 128)
        assert inj.maybe_invalidate() is None

    def test_rate_roughly_respected(self):
        inj = InvalidationInjector(DeterministicRng(2), 100.0, 128)
        inj.observe(0x1000)
        fires = sum(inj.maybe_invalidate() is not None for _ in range(20_000))
        assert 1500 < fires < 2500  # ~10% of cycles

    def test_targets_stay_within_observed_span(self):
        inj = InvalidationInjector(DeterministicRng(3), 1000.0, 128)
        inj.observe(0x10000)
        inj.observe(0x20000)
        for _ in range(200):
            line = inj.maybe_invalidate()
            if line is not None:
                assert 0x10000 <= line <= 0x20000
                assert line % 128 == 0

    def test_single_line_span_degenerates_to_it(self):
        inj = InvalidationInjector(DeterministicRng(4), 1000.0, 128,
                                   hot_fraction=1.0)
        inj.observe(0x1234)
        for _ in range(50):
            line = inj.maybe_invalidate()
            if line is not None:
                assert line == (0x1234 & ~127)

    def test_history_bounded(self):
        inj = InvalidationInjector(DeterministicRng(4), 1.0, 128, history=8)
        for i in range(100):
            inj.observe(i * 128)
        assert len(inj._recent_lines) == 8


class TestCoherentRuns:
    def test_invalidations_injected_and_handled(self):
        cfg = small_config().with_scheme(
            SchemeConfig(kind="dmdc", coherence=True)
        ).with_overrides(invalidation_rate=100.0)
        result = run_workload(cfg, get_workload("gzip"), max_instructions=3000)
        assert result.committed == 3000
        assert result.counters["inv.injected"] > 0
        assert result.counters["inv.received"] == result.counters["inv.injected"]

    def test_invalidations_slow_things_down(self):
        base_cfg = small_config().with_scheme(SchemeConfig(kind="dmdc", coherence=True))
        quiet = run_workload(base_cfg, get_workload("gzip"), max_instructions=3000)
        noisy = run_workload(base_cfg.with_overrides(invalidation_rate=200.0),
                             get_workload("gzip"), max_instructions=3000)
        assert noisy.counters["inv.injected"] > 0
        assert noisy.cycles >= quiet.cycles

    def test_non_coherent_dmdc_ignores_invalidations(self):
        cfg = small_config().with_scheme(
            SchemeConfig(kind="dmdc", coherence=False)
        ).with_overrides(invalidation_rate=100.0)
        result = run_workload(cfg, get_workload("gzip"), max_instructions=2000)
        assert result.counters["inv.injected"] > 0
        assert result.counters["inv.received"] == 0

    def test_coherent_conventional_baseline_runs(self):
        cfg = small_config().with_scheme(
            SchemeConfig(kind="conventional", coherence=True)
        ).with_overrides(invalidation_rate=100.0)
        result = run_workload(cfg, get_workload("gzip"), max_instructions=2000)
        assert result.committed == 2000
        assert result.counters["lq.inv_searches"] > 0
