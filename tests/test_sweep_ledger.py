"""Sweep-ledger durability semantics (PR: design-space autopilot).

The resume contract: an interrupted ledger is re-opened, its torn final
line (if any) is truncated away, completed entries come back keyed by
content address — and a ledger written for a different grid (or a
different simulator source, since the digest covers the expansion's
cache keys) is refused loudly instead of silently reused.
"""

import json

import pytest

from repro.sweeps import LedgerError, SweepLedger, read_ledger
from repro.sweeps.ledger import LEDGER_SCHEMA

DIGEST = "d" * 64


def entry(key: str) -> dict:
    return {"kind": "point", "key": key, "point": {"workload": "gzip"},
            "summary": {"cycles": 10}, "counters": {"commits": 1}}


class TestFreshLedger:
    def test_open_writes_the_header(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepLedger(path) as ledger:
            prior = ledger.open(DIGEST, "demo", 3)
            assert prior == {}
            ledger.append(entry("k1"))
        header, entries = read_ledger(path)
        assert header == {"kind": "header", "schema": LEDGER_SCHEMA,
                          "grid": "demo", "digest": DIGEST, "points": 3}
        assert [e["key"] for e in entries] == ["k1"]

    def test_lines_are_canonical_json(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepLedger(path) as ledger:
            ledger.open(DIGEST, "demo", 1)
            ledger.append(entry("k1"))
        for line in open(path):
            assert line == json.dumps(json.loads(line), sort_keys=True,
                                      separators=(",", ":")) + "\n"

    def test_append_requires_open(self, tmp_path):
        ledger = SweepLedger(str(tmp_path / "sweep.jsonl"))
        with pytest.raises(LedgerError, match="not open"):
            ledger.append(entry("k1"))


class TestResume:
    def test_reopen_returns_prior_entries_by_key(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepLedger(path) as ledger:
            ledger.open(DIGEST, "demo", 3)
            ledger.append(entry("k1"))
            ledger.append(entry("k2"))
        with SweepLedger(path) as ledger:
            prior = ledger.open(DIGEST, "demo", 3)
            assert sorted(prior) == ["k1", "k2"]
            ledger.append(entry("k3"))
        _, entries = read_ledger(path)
        assert [e["key"] for e in entries] == ["k1", "k2", "k3"]

    def test_torn_tail_is_truncated_exactly(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepLedger(path) as ledger:
            ledger.open(DIGEST, "demo", 2)
            ledger.append(entry("k1"))
        with open(path, "a") as handle:
            handle.write('{"kind":"point","key":"k2","summ')  # killed mid-write
        with SweepLedger(path) as ledger:
            prior = ledger.open(DIGEST, "demo", 2)
            assert sorted(prior) == ["k1"]
            ledger.append(entry("k2"))
        header, entries = read_ledger(path)
        assert [e["key"] for e in entries] == ["k1", "k2"]
        assert header["points"] == 2

    def test_digest_mismatch_is_refused(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepLedger(path) as ledger:
            ledger.open(DIGEST, "demo", 1)
        with pytest.raises(LedgerError, match="does not match"):
            SweepLedger(path).open("e" * 64, "demo", 1)

    def test_schema_mismatch_is_refused(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "header", "schema": 99,
                                     "grid": "demo", "digest": DIGEST,
                                     "points": 1}) + "\n")
        with pytest.raises(LedgerError, match="schema"):
            SweepLedger(path).open(DIGEST, "demo", 1)

    def test_headerless_file_is_refused(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(entry("k1")) + "\n")
        with pytest.raises(LedgerError, match="header"):
            SweepLedger(path).open(DIGEST, "demo", 1)
        with pytest.raises(LedgerError, match="header"):
            read_ledger(path)

    def test_read_ledger_rejects_empty_file(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("")
        with pytest.raises(LedgerError, match="empty"):
            read_ledger(str(path))
