"""Pipeline tracing composed with the shadow-oracle sanitizer.

Both ride observation seams that must not perturb the simulation: the
rendered timeline of a run with the sanitizer attached must be
byte-identical to the timeline of a plain traced run, and the sanitizer
still does its job alongside the tracer.
"""

from repro.analysis.sanitizer import attach_sanitizer
from repro.isa.opcodes import InstrClass
from repro.sim.config import SchemeConfig, small_config
from repro.sim.pipetrace import PipelineTracer
from repro.sim.processor import Processor
from tests.conftest import TraceBuilder

BUDGET = 120


def _violation_trace():
    b = TraceBuilder()
    b.fill(4)
    b.alu(dst=10, cls=InstrClass.IDIV)
    b.store(0x800, srcs=(10,), data_src=28)
    b.load(0x800, dst=11)
    b.fill(40)
    return b.build()


def _timeline(config, trace, sanitize):
    proc = Processor(config, trace)
    proc.tracer = PipelineTracer(capacity=512)
    sanitizer = attach_sanitizer(proc) if sanitize else None
    proc.run(len(trace))
    return proc.tracer.render_timeline(max_rows=64, max_width=200), sanitizer


def test_timeline_bit_identical_with_sanitizer():
    config = small_config(wrongpath_loads=False).with_scheme(
        SchemeConfig(kind="dmdc"))
    trace = _violation_trace()
    plain, _ = _timeline(config, trace, sanitize=False)
    sanitized, sanitizer = _timeline(config, trace, sanitize=True)
    assert sanitized == plain
    # ...and the sanitizer genuinely observed the run it rode along on.
    assert sanitizer.report.events_checked > 0
    assert sanitizer.report.oracle_violations >= 1
    assert sanitizer.report.clean


def test_timeline_bit_identical_conventional():
    config = small_config(wrongpath_loads=False)
    trace = _violation_trace()
    plain, _ = _timeline(config, trace, sanitize=False)
    sanitized, _ = _timeline(config, trace, sanitize=True)
    assert sanitized == plain
