"""Tests for scheme construction from configuration."""

import pytest

from repro.core.schemes import (
    BloomFilteredScheme,
    ConventionalScheme,
    DmdcScheme,
    GargAgeHashScheme,
    ValueBasedScheme,
    YlaFilteredScheme,
    build_scheme,
)
from repro.errors import ConfigError
from repro.sim.config import CONFIG1, CONFIG2, SchemeConfig


class TestFactory:
    def test_kinds_map_to_classes(self):
        cases = {
            "conventional": ConventionalScheme,
            "yla": YlaFilteredScheme,
            "bloom": BloomFilteredScheme,
            "dmdc": DmdcScheme,
            "garg": GargAgeHashScheme,
            "value": ValueBasedScheme,
        }
        for kind, cls in cases.items():
            scheme = build_scheme(SchemeConfig(kind=kind), CONFIG2)
            assert type(scheme) is cls, kind

    def test_yla_is_a_conventional_subclass(self):
        scheme = build_scheme(SchemeConfig(kind="yla"), CONFIG2)
        assert isinstance(scheme, ConventionalScheme)

    def test_dmdc_table_size_defaults_to_machine(self):
        scheme = build_scheme(SchemeConfig(kind="dmdc"), CONFIG1)
        assert scheme.table.entries == CONFIG1.checking_table

    def test_dmdc_table_size_override(self):
        scheme = build_scheme(SchemeConfig(kind="dmdc", table_entries=64), CONFIG2)
        assert scheme.table.entries == 64

    def test_garg_table_size_defaults_to_machine(self):
        scheme = build_scheme(SchemeConfig(kind="garg"), CONFIG1)
        assert scheme.table.entries == CONFIG1.checking_table

    def test_checking_queue_variant(self):
        scheme = build_scheme(SchemeConfig(kind="dmdc", checking_queue_entries=8), CONFIG2)
        assert scheme.queue is not None and scheme.table is None

    def test_coherence_adds_line_yla(self):
        scheme = build_scheme(SchemeConfig(kind="dmdc", coherence=True), CONFIG2)
        assert scheme.yla_line is not None
        assert scheme.yla_line.granularity_bytes == CONFIG2.l2_line_bytes

    def test_associative_flags(self):
        assert build_scheme(SchemeConfig(kind="conventional"), CONFIG2).uses_associative_lq
        for kind in ("dmdc", "garg", "value"):
            assert not build_scheme(SchemeConfig(kind=kind), CONFIG2).uses_associative_lq

    def test_unknown_kind_rejected_at_config(self):
        with pytest.raises(ConfigError):
            SchemeConfig(kind="mystery")
