"""Tests for the synthetic workload suite."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.isa.trace import validate_trace
from repro.workloads import (
    FP_WORKLOADS,
    INT_WORKLOADS,
    SUITE,
    SyntheticWorkload,
    WorkloadSpec,
    get_workload,
    group_of,
    suite_subset,
)


class TestSuiteShape:
    def test_full_spec2000_lineup(self):
        assert len(INT_WORKLOADS) == 12
        assert len(FP_WORKLOADS) == 14
        assert len(SUITE) == 26

    def test_known_names(self):
        for name in ("gzip", "mcf", "swim", "art", "sixtrack"):
            assert name in SUITE

    def test_groups(self):
        assert group_of("gzip") == "INT"
        assert group_of("swim") == "FP"

    def test_get_workload_unknown(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            get_workload("doom3")

    def test_suite_subset(self):
        sub = suite_subset(2)
        assert len(sub) == 4
        assert sub[0] in INT_WORKLOADS and sub[-1] in FP_WORKLOADS


class TestGeneration:
    def test_deterministic(self):
        w = get_workload("gzip")
        a, b = w.generate(500), w.generate(500)
        assert len(a) == len(b)
        for oa, ob in zip(a, b):
            assert (oa.pc, oa.cls, oa.srcs, oa.dst, oa.mem_addr, oa.mem_size,
                    oa.taken) == (ob.pc, ob.cls, ob.srcs, ob.dst, ob.mem_addr,
                                  ob.mem_size, ob.taken)

    def test_different_workloads_differ(self):
        a = get_workload("gzip").generate(300)
        b = get_workload("mcf").generate(300)
        assert [o.cls for o in a] != [o.cls for o in b]

    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_every_workload_validates(self, name):
        trace = get_workload(name).generate(400)
        validate_trace(trace)
        assert len(trace) >= 400

    def test_mix_tracks_spec(self):
        spec = get_workload("gzip").spec
        mix = get_workload("gzip").generate(6000).mix()
        load_frac = mix.get("LOAD", 0)
        # Fresh index emission dilutes fractions; allow a generous band.
        assert 0.5 * spec.load_fraction < load_frac < 1.5 * spec.load_fraction
        assert mix.get("BRANCH", 0) > 0.03

    def test_fp_workloads_contain_fp_ops(self):
        mix = get_workload("swim").generate(4000).mix()
        assert mix.get("FALU", 0) + mix.get("FMUL", 0) > 0.1

    def test_int_workloads_have_no_fp(self):
        mix = get_workload("gzip").generate(4000).mix()
        assert mix.get("FALU", 0) + mix.get("FMUL", 0) == 0

    def test_addresses_aligned(self):
        for op in get_workload("vortex").generate(2000):
            if op.is_mem:
                assert op.mem_addr % op.mem_size == 0

    def test_working_set_respected(self):
        spec = get_workload("gzip").spec
        limit = 0x1000_0000 + spec.n_arrays * 0x0100_0000
        for op in get_workload("gzip").generate(2000):
            if op.is_mem:
                assert 0x1000_0000 <= op.mem_addr < limit


class TestSpecValidation:
    def test_rejects_bad_group(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", group="VEC")

    def test_rejects_fraction_overflow(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", load_fraction=0.6, store_fraction=0.3,
                         branch_fraction=0.2)

    def test_rejects_empty_patterns(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", pattern_weights={})

    def test_custom_spec_generates(self):
        spec = WorkloadSpec(name="custom", working_set_kb=64, seed=3)
        trace = SyntheticWorkload(spec).generate(300)
        validate_trace(trace)

    def test_conflict_kernel_emits_aliasing_pair(self):
        spec = WorkloadSpec(name="conflicty", conflict_per_kinstr=20.0, seed=5)
        trace = SyntheticWorkload(spec).generate(3000)
        # find a store closely followed by a load to the same address
        found = False
        ops = list(trace)
        for i, op in enumerate(ops):
            if op.is_store:
                for later in ops[i + 1:i + 14]:
                    if later.is_load and later.mem_addr == op.mem_addr:
                        found = True
        assert found
