"""Unit tests for the wrong-path load injection model."""

from repro.frontend.wrongpath import WrongPathModel
from repro.utils.rng import DeterministicRng


def make(enabled=True, mean=2.0):
    return WrongPathModel(DeterministicRng(1, "wp"), mean_loads_per_mispredict=mean,
                          enabled=enabled)


class TestWrongPath:
    def test_disabled_injects_nothing(self):
        wp = make(enabled=False)
        wp.observe_address(0x1000)
        assert wp.loads_for_mispredict(10) == []

    def test_needs_observed_addresses(self):
        wp = make()
        assert wp.loads_for_mispredict(10) == []

    def test_ages_strictly_younger_than_branch(self):
        wp = make(mean=4.0)
        wp.observe_address(0x1000)
        for _ in range(50):
            for age, _ in wp.loads_for_mispredict(100):
                assert age > 100

    def test_addresses_near_working_set(self):
        wp = make(mean=4.0)
        wp.observe_address(0x10_0000)
        for _ in range(50):
            for _, addr in wp.loads_for_mispredict(5):
                assert abs(addr - 0x10_0000) <= wp.address_spread
                assert addr % 8 == 0 or addr >= 0

    def test_mean_burst_size_tracks_parameter(self):
        wp = make(mean=3.0)
        wp.observe_address(0x1000)
        total = sum(len(wp.loads_for_mispredict(1)) for _ in range(2000))
        assert 2.0 < total / 2000 < 4.0

    def test_injection_counter(self):
        wp = make(mean=5.0)
        wp.observe_address(0x1000)
        n = sum(len(wp.loads_for_mispredict(1)) for _ in range(20))
        assert wp.injected == n

    def test_history_bounded(self):
        wp = make()
        for i in range(100):
            wp.observe_address(i * 64)
        assert len(wp._recent_addrs) <= 32
