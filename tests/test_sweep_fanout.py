"""Fan-out + backpressure semantics (PR: saturation-proof parallel sweeps).

Four layers:

* client retry policy — 429 ``Retry-After`` honoring (clamped, jittered,
  budgeted), 503-draining ``/healthz`` re-poll, 503-timeout re-submit,
  non-JSON error bodies, and the documented ``socket.timeout`` stance;
* the saturation integration bar — a sweep against a 1-slot-admission
  service completes (no ``ServiceHTTPError(429)`` escape) with a ledger
  byte-identical to an unloaded local run;
* the fan-out pool — N-worker runs produce byte-identical ledgers to
  1-worker runs, kills mid-fan-out resume with zero re-simulation, and
  poisoned points quarantine instead of sinking the sweep;
* lock discipline — the fan-out locks stay witness-clean against the
  static model with ``src/repro/sweeps`` in scope.
"""

import json
import socket
import threading

import pytest

from repro.analysis.conc import LockOrderWitness, analyze_paths
from repro.errors import ServiceError
from repro.exec.engine import ExecutionEngine
from repro.exec.options import EngineOptions
from repro.service import ServiceConfig, create_server
from repro.service.client import (
    _RETRYABLE,
    RetryPolicy,
    ServiceClient,
    ServiceHTTPError,
    error_kind,
)
from repro.sweeps import GridSpec, SweepError, run_sweep

BUDGET = 600


def small_grid(name: str = "fanout-test") -> GridSpec:
    return GridSpec(
        name=name,
        axes={"scheme": ["dmdc"], "table": [256, 512],
              "workload": ["gzip", "mcf"]},
        base={"instructions": BUDGET, "seed": 1},
        baseline="conventional",
    )


def serial_engine() -> ExecutionEngine:
    return ExecutionEngine(max_workers=1)


def read_bytes(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# RetryPolicy / client behavior against a scripted transport
# ---------------------------------------------------------------------------

class ScriptedClient(ServiceClient):
    """A client whose wire is a scripted list of
    ``(status, payload, retry_after)`` responses per path prefix."""

    def __init__(self, script, **kwargs):
        super().__init__(**kwargs)
        self.script = list(script)
        self.exchanges = []

    def _request(self, method, path, body):
        self.exchanges.append((method, path))
        for i, (match, response) in enumerate(self.script):
            if path.startswith(match):
                del self.script[i]
                return response
        raise AssertionError(f"unscripted request {method} {path}")


def fast_policy(sleeps, **overrides):
    defaults = dict(max_attempts=8, max_total_wait=60.0,
                    max_retry_after=30.0, jitter=0.0,
                    healthz_poll=0.05, healthz_attempts=3,
                    sleep=sleeps.append, rng=lambda: 0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRetryPolicy:
    def test_429_backs_off_per_retry_after_then_succeeds(self):
        sleeps = []
        saturated = (429, {"error": "full", "kind": "saturated"}, 3.0)
        client = ScriptedClient(
            [("/run", saturated), ("/run", saturated),
             ("/run", (200, {"ok": True}, None))],
            retry=fast_policy(sleeps))
        assert client.run("gzip") == {"ok": True}
        # Two waits, each exactly the server's hint (jitter pinned to 0).
        assert sleeps == [3.0, 3.0]

    def test_hint_is_clamped_and_budget_is_capped(self):
        sleeps = []
        saturated = (429, {"error": "full", "kind": "saturated"}, 1000.0)
        client = ScriptedClient(
            [("/run", saturated), ("/run", (200, {}, None))],
            retry=fast_policy(sleeps, max_retry_after=5.0))
        client.run("gzip")
        assert sleeps == [5.0]

        # A hint stream that exceeds the cumulative budget raises the
        # underlying 429 instead of waiting forever.
        sleeps = []
        client = ScriptedClient(
            [("/run", saturated)] * 8,
            retry=fast_policy(sleeps, max_retry_after=30.0,
                              max_total_wait=45.0))
        with pytest.raises(ServiceHTTPError) as excinfo:
            client.run("gzip")
        assert excinfo.value.status == 429
        assert sum(sleeps) <= 45.0

    def test_jitter_stretches_the_wait(self):
        sleeps = []
        saturated = (429, {"error": "full", "kind": "saturated"}, 10.0)
        client = ScriptedClient(
            [("/run", saturated), ("/run", (200, {}, None))],
            retry=fast_policy(sleeps, jitter=0.2, rng=lambda: 1.0))
        client.run("gzip")
        assert sleeps == [pytest.approx(12.0)]

    def test_draining_repolls_healthz_then_retries(self):
        sleeps = []
        client = ScriptedClient(
            [("/run", (503, {"error": "draining", "kind": "draining"}, None)),
             ("/healthz", (503, {"status": "draining"}, None)),
             ("/healthz", (200, {"status": "ok"}, None)),
             ("/run", (200, {"ok": True}, None))],
            retry=fast_policy(sleeps))
        assert client.run("gzip") == {"ok": True}
        polls = [path for _, path in client.exchanges if path == "/healthz"]
        assert len(polls) == 2

    def test_draining_that_never_recovers_raises(self):
        sleeps = []
        script = [("/run", (503, {"error": "drain", "kind": "draining"},
                            None))]
        script += [("/healthz", (503, {"status": "draining"}, None))] * 3
        client = ScriptedClient(script, retry=fast_policy(sleeps))
        with pytest.raises(ServiceHTTPError) as excinfo:
            client.run("gzip")
        assert excinfo.value.status == 503

    def test_timeout_retries_without_sleeping(self):
        sleeps = []
        client = ScriptedClient(
            [("/run", (503, {"error": "result timed out",
                             "kind": "timeout"}, None)),
             ("/run", (200, {"ok": True}, None))],
            retry=fast_policy(sleeps))
        assert client.run("gzip") == {"ok": True}
        assert sleeps == []

    def test_hard_errors_never_retry(self):
        for status, payload in ((400, {"error": "bad", "kind": "schema"}),
                                (500, {"error": "boom", "kind": "internal"}),
                                (404, {"error": "nope"})):
            client = ScriptedClient([("/run", (status, payload, None))],
                                    retry=fast_policy([]))
            with pytest.raises(ServiceHTTPError):
                client.run("gzip")
            assert client.script == []  # exactly one exchange consumed

    def test_no_policy_keeps_the_historical_raise(self):
        client = ScriptedClient(
            [("/run", (429, {"error": "full", "kind": "saturated"}, 1.0))])
        with pytest.raises(ServiceHTTPError) as excinfo:
            client.run("gzip")
        assert excinfo.value.retry_after == 1.0

    def test_error_kind_sniffs_legacy_payloads(self):
        assert error_kind(429, {"error": "queue full"}) == "saturated"
        assert error_kind(503, {"error": "service is draining"}) == "draining"
        assert error_kind(503, {"error": "result timed out"}) == "timeout"
        assert error_kind(503, {"status": "draining"}) == "draining"
        assert error_kind(400, {"error": "bad"}) == "hard"
        assert error_kind(503, {"kind": "timeout"}) == "timeout"


class TestTransportEdges:
    def test_non_json_error_body_becomes_a_service_error(self):
        payload = ServiceClient._decode_body(502, b"<html>Bad Gateway</html>")
        assert payload["error"].startswith("HTTP 502")
        assert "<html>" in payload["raw"]

    def test_non_json_success_body_is_refused_loudly(self):
        with pytest.raises(ServiceError, match="non-JSON"):
            ServiceClient._decode_body(200, b"<html>proxy login</html>")

    def test_empty_body_decodes_to_empty_payload(self):
        assert ServiceClient._decode_body(204, b"") == {}

    def test_socket_timeout_is_not_blind_retried(self):
        # Documented policy: a timed-out request may still be executing
        # server-side; retransmitting doubles the load on a server that
        # is already too slow.  Connection-level resets stay retryable.
        assert not issubclass(socket.timeout, _RETRYABLE)
        assert issubclass(ConnectionResetError, _RETRYABLE)


# ---------------------------------------------------------------------------
# saturation integration: the sweep survives a 1-slot admission queue
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_queue_service():
    config = ServiceConfig(
        port=0, batch_window=0.01, max_queue=1, shards=1,
        request_timeout=60.0, drain_timeout=60.0,
        engine_options=EngineOptions(cache_enabled=False, max_workers=1),
        offload=False,
    )
    server = create_server(config)
    thread = threading.Thread(target=server.serve_forever,
                              name="test-saturated-serve", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.batcher.close(timeout=5.0)
        thread.join(timeout=5.0)
        server.server_close()


class TestSaturatedSweep:
    def test_sweep_against_saturated_service_completes(
            self, tiny_queue_service, tmp_path):
        sleeps = []
        client = ServiceClient(port=tiny_queue_service.server_address[1],
                               timeout=60.0, retry=fast_policy(sleeps))
        grid = small_grid("saturated")
        # chunk=6 > the 1-slot queue: every full chunk 429s, so only
        # orchestrator-side splitting can make progress.
        remote_path = tmp_path / "remote.jsonl"
        outcome = run_sweep(grid, client=client, chunk=6,
                            ledger=str(remote_path))
        assert outcome.complete
        assert outcome.accounting.retried >= 2  # at least two splits

        local_path = tmp_path / "local.jsonl"
        local = run_sweep(small_grid("saturated"), engine=serial_engine(),
                          ledger=str(local_path))
        assert local.complete
        assert read_bytes(remote_path) == read_bytes(local_path)


# ---------------------------------------------------------------------------
# local fan-out pool
# ---------------------------------------------------------------------------

class TestLocalFanout:
    def test_two_worker_ledger_is_byte_identical_to_one_worker(
            self, tmp_path):
        one = tmp_path / "one.jsonl"
        two = tmp_path / "two.jsonl"
        single = run_sweep(small_grid(), workers=1,
                           engine_factory=serial_engine, ledger=str(one))
        double = run_sweep(small_grid(), workers=2,
                           engine_factory=serial_engine, ledger=str(two),
                           window=1)
        assert single.complete and double.complete
        assert read_bytes(one) == read_bytes(two)
        assert double.accounting.mode == "fanout-local[2]"

        workers = double.accounting.workers
        assert len(workers) == 2
        assert sum(w["completed"] for w in workers) == 6
        assert sum(w["executed"] for w in workers) >= 6
        assert all(w["claimed"] >= 1 for w in workers)

    def test_matches_plain_local_backend_ledger(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        fanned = tmp_path / "fanned.jsonl"
        run_sweep(small_grid(), engine=serial_engine(), ledger=str(plain))
        run_sweep(small_grid(), workers=2, engine_factory=serial_engine,
                  ledger=str(fanned))
        assert read_bytes(plain) == read_bytes(fanned)

    def test_progress_streams_in_grid_order(self):
        seen = []
        outcome = run_sweep(small_grid(), workers=2,
                            engine_factory=serial_engine, window=1,
                            progress=lambda done, total, point, source:
                            seen.append((done, total, source)))
        assert outcome.complete
        # The reorder buffer serializes progress into grid order even
        # though two workers completed points out of order.
        assert [done for done, _, _ in seen] == list(range(1, 7))
        assert all(source in ("run", "memo", "cache", "unknown")
                   for _, _, source in seen)

    def test_kill_mid_fanout_resumes_with_zero_resimulation(self, tmp_path):
        ledger = tmp_path / "resume.jsonl"
        first = run_sweep(small_grid(), workers=2,
                          engine_factory=serial_engine, ledger=str(ledger),
                          limit=2, window=1)
        assert not first.complete
        assert len(first.entries) == 2

        second = run_sweep(small_grid(), workers=2,
                           engine_factory=serial_engine, ledger=str(ledger))
        assert second.complete
        acct = second.accounting
        assert acct.from_ledger == 2
        assert acct.submitted == 4
        assert sum(w["executed"] for w in acct.workers) == acct.executed
        # Zero re-simulation of the ledgered points: only the 4 missing
        # points went to the pool.  Speculative steals may duplicate a
        # *pending* execution (first completion wins), never a ledgered
        # one.
        assert 4 <= acct.executed <= 4 + acct.stolen

        straight = tmp_path / "straight.jsonl"
        run_sweep(small_grid(), engine=serial_engine(), ledger=str(straight))
        assert read_bytes(ledger) == read_bytes(straight)

    def test_worker_count_validation(self):
        with pytest.raises(SweepError, match="not both"):
            run_sweep(small_grid(), client=object(), workers=2)
        from repro.sweeps import FanoutError
        with pytest.raises(FanoutError, match=">= 1"):
            run_sweep(small_grid(), workers=0)
        with pytest.raises(FanoutError, match="at least one"):
            run_sweep(small_grid(), workers=[])


class PoisonedEngine:
    """Wraps a real engine but refuses one content-addressed point."""

    def __init__(self, poison_key: str):
        self._inner = ExecutionEngine(max_workers=1)
        self._poison = poison_key
        self.progress = None

    @property
    def stats(self):
        return self._inner.stats

    def run(self, requests):
        if any(request.cache_key() == self._poison for request in requests):
            raise RuntimeError("poisoned point")
        self._inner.progress = self.progress
        try:
            return self._inner.run(requests)
        finally:
            self._inner.progress = None

    def close(self):
        self._inner.close()


class TestQuarantine:
    def poison_key(self):
        expansion = small_grid().expand()
        return expansion.keys[0], len(expansion)

    def test_poisoned_point_is_retried_on_another_worker(self, tmp_path):
        key, total = self.poison_key()
        guard = threading.Lock()
        built = []

        def factory():
            with guard:
                first = not built
                built.append(1)
            return PoisonedEngine(key) if first else serial_engine()

        outcome = run_sweep(small_grid(), workers=2, engine_factory=factory,
                            ledger=str(tmp_path / "heal.jsonl"), window=1)
        # The poisoned worker failed the point once; the healthy worker
        # completed it — the sweep is whole.
        assert outcome.complete
        assert outcome.accounting.failed == 0
        assert outcome.accounting.retried >= 1
        assert len(outcome.entries) == total

    def test_twice_poisoned_point_is_reported_not_fatal(self, tmp_path):
        key, total = self.poison_key()
        outcome = run_sweep(small_grid(), workers=2,
                            engine_factory=lambda: PoisonedEngine(key),
                            ledger=str(tmp_path / "sick.jsonl"), window=1)
        assert not outcome.complete
        acct = outcome.accounting
        assert acct.failed == 1
        assert len(acct.failed_points) == 1
        # Named by scheme/workload plus a key prefix, not just an index.
        assert key[:12] in acct.failed_points[0]
        assert "poisoned point" in acct.failed_points[0]
        # Every other point still completed and reached the ledger.
        assert len(outcome.entries) == total - 1
        assert "FAILED" in acct.format_block()


# ---------------------------------------------------------------------------
# lock discipline: witness-clean against the static model
# ---------------------------------------------------------------------------

class TestFanoutLockDiscipline:
    def test_fanout_locks_stay_inside_the_predicted_graph(self, tmp_path):
        analysis = analyze_paths(
            ["src/repro/service", "src/repro/exec", "src/repro/sweeps"])
        assert analysis.cycles() == []
        assert analysis.self_deadlocks() == []
        assert analysis.blocking_violations == []

        with LockOrderWitness() as witness:
            outcome = run_sweep(small_grid(), workers=2,
                                engine_factory=serial_engine,
                                ledger=str(tmp_path / "wit.jsonl"),
                                window=1)
        assert outcome.complete

        taken = witness.acquisitions()
        labels = {label for label, _ in taken}
        assert "_FanoutQueue._lock" in labels
        assert "_OrderedWriter._lock" in labels
        assert witness.cycle() is None
        assert witness.ordering_violations() == []
        unpredicted = witness.unpredicted_edges(analysis.predicted_edges())
        assert not unpredicted, witness.report()


# ---------------------------------------------------------------------------
# accounting surface
# ---------------------------------------------------------------------------

class TestAccountingSurface:
    def test_as_dict_carries_fanout_fields(self):
        outcome = run_sweep(small_grid(), workers=2,
                            engine_factory=serial_engine)
        payload = outcome.accounting.as_dict()
        assert payload["mode"] == "fanout-local[2]"
        assert len(payload["workers"]) == 2
        for stats in payload["workers"]:
            assert {"worker", "claimed", "completed", "executed",
                    "stolen", "failures"} <= set(stats)
        assert payload["failed"] == 0 and payload["failed_points"] == []
        block = outcome.accounting.format_block()
        assert "fanout    2 workers" in block
        assert json.dumps(payload)  # JSON-serializable end to end
