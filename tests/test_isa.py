"""Unit tests for the ISA layer: micro-ops, traces, opcode helpers."""

import pytest

from repro.errors import TraceError
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import (
    FP_CLASSES,
    InstrClass,
    MEM_CLASSES,
    is_fp_reg,
    uses_fp_queue,
)
from repro.isa.trace import Trace, validate_trace


class TestOpcodes:
    def test_is_fp_reg(self):
        assert not is_fp_reg(0) and not is_fp_reg(31)
        assert is_fp_reg(32) and is_fp_reg(63)

    def test_fp_queue_for_fp_arith(self):
        for cls in FP_CLASSES:
            assert uses_fp_queue(cls, dst=None)

    def test_fp_queue_for_memory_by_dst(self):
        assert uses_fp_queue(InstrClass.LOAD, dst=40)
        assert not uses_fp_queue(InstrClass.LOAD, dst=5)
        assert not uses_fp_queue(InstrClass.STORE, dst=None)

    def test_int_classes_stay_int(self):
        assert not uses_fp_queue(InstrClass.IALU, dst=5)
        assert not uses_fp_queue(InstrClass.BRANCH, dst=None)

    def test_mem_classes(self):
        assert InstrClass.LOAD in MEM_CLASSES and InstrClass.STORE in MEM_CLASSES
        assert InstrClass.IALU not in MEM_CLASSES


class TestMicroOpValidation:
    def test_valid_load(self):
        MicroOp(0x100, InstrClass.LOAD, srcs=(28,), dst=1, mem_addr=0x80, mem_size=8).validate()

    def test_misaligned_access_rejected(self):
        op = MicroOp(0x100, InstrClass.LOAD, dst=1, mem_addr=0x81, mem_size=8)
        with pytest.raises(TraceError, match="misaligned"):
            op.validate()

    def test_illegal_size_rejected(self):
        op = MicroOp(0x100, InstrClass.LOAD, dst=1, mem_addr=0x80, mem_size=3)
        with pytest.raises(TraceError, match="size"):
            op.validate()

    def test_register_range_checked(self):
        with pytest.raises(TraceError):
            MicroOp(0x100, InstrClass.IALU, srcs=(99,), dst=1).validate()
        with pytest.raises(TraceError):
            MicroOp(0x100, InstrClass.IALU, srcs=(), dst=64).validate()

    def test_data_src_only_for_stores(self):
        op = MicroOp(0x100, InstrClass.IALU, srcs=(), dst=1, data_src=2)
        with pytest.raises(TraceError, match="data_src"):
            op.validate()

    def test_store_data_src_range(self):
        op = MicroOp(0x100, InstrClass.STORE, mem_addr=0x80, mem_size=8, data_src=200)
        with pytest.raises(TraceError):
            op.validate()

    def test_flags(self):
        load = MicroOp(0, InstrClass.LOAD, dst=1, mem_addr=0, mem_size=8)
        store = MicroOp(0, InstrClass.STORE, mem_addr=0, mem_size=8)
        branch = MicroOp(0, InstrClass.BRANCH, taken=True, target=4)
        assert load.is_load and load.is_mem and not load.is_store
        assert store.is_store and store.is_mem
        assert branch.is_branch and not branch.is_mem

    def test_repr_contains_class(self):
        op = MicroOp(0x40, InstrClass.STORE, mem_addr=0x80, mem_size=4)
        assert "STORE" in repr(op)


class TestTrace:
    def test_validate_empty_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            validate_trace(Trace("t"))

    def test_validate_bad_group(self):
        t = Trace("t", [MicroOp(0, InstrClass.NOP)], group="VEC")
        with pytest.raises(TraceError, match="group"):
            validate_trace(t)

    def test_validate_flags_position(self):
        t = Trace("t", [MicroOp(0, InstrClass.NOP), MicroOp(4, InstrClass.LOAD, dst=1, mem_addr=3, mem_size=8)])
        with pytest.raises(TraceError, match=r"t\[1\]"):
            validate_trace(t)

    def test_taken_non_branch_rejected(self):
        op = MicroOp(0, InstrClass.IALU, dst=1)
        op.taken = True
        with pytest.raises(TraceError, match="non-branch"):
            validate_trace(Trace("t", [op]))

    def test_mix(self):
        t = Trace("t", [
            MicroOp(0, InstrClass.IALU, dst=1),
            MicroOp(4, InstrClass.LOAD, dst=1, mem_addr=0, mem_size=8),
            MicroOp(8, InstrClass.LOAD, dst=1, mem_addr=8, mem_size=8),
            MicroOp(12, InstrClass.STORE, mem_addr=0, mem_size=8),
        ])
        mix = t.mix()
        assert mix["LOAD"] == 0.5 and mix["IALU"] == 0.25

    def test_container_protocol(self):
        op = MicroOp(0, InstrClass.NOP)
        t = Trace("t", [op])
        assert len(t) == 1 and t[0] is op and list(t) == [op]
