"""Orchestrator + resume semantics (PR: design-space autopilot).

The headline guarantee (issue satellite): kill a sweep mid-grid, re-run
it, and the completed points are served from the ledger without
re-simulation — with the final ledger and report **bit-identical** to an
uninterrupted run.  ``limit=`` models the kill deterministically.
"""

import json

import pytest

from repro.cli import main
from repro.exec.engine import ExecutionEngine
from repro.sweeps import (
    GridSpec,
    SweepError,
    get_preset,
    run_sweep,
    validate_report_payload,
)

BUDGET = 600


def small_grid() -> GridSpec:
    return GridSpec(
        name="autopilot-test",
        axes={"scheme": ["dmdc"], "table": [256, 512],
              "workload": ["gzip", "mcf"]},
        base={"instructions": BUDGET, "seed": 1},
        baseline="conventional",
    )


class TestRunSweepLocal:
    def test_completes_the_grid_and_accounts_for_it(self, tmp_path):
        engine = ExecutionEngine(max_workers=1)
        outcome = run_sweep(small_grid(), engine=engine,
                            ledger=str(tmp_path / "sweep.jsonl"))
        acct = outcome.accounting
        assert outcome.complete
        assert len(outcome.entries) == 6  # 4 candidates + 2 baselines
        assert [e["key"] for e in outcome.entries] == outcome.keys
        assert acct.mode == "local"
        assert acct.total_points == 6
        assert acct.baseline_points == 2
        assert acct.submitted == acct.executed == 6
        assert acct.hit_rate == 0.0
        assert acct.from_ledger == 0
        assert "simulated 6" in acct.format_block()
        assert acct.as_dict()["executed"] == 6

    def test_progress_reports_every_point(self):
        seen = []
        engine = ExecutionEngine(max_workers=1)
        run_sweep(small_grid(), engine=engine,
                  progress=lambda done, total, point, source:
                  seen.append((done, total, source)))
        assert [done for done, _, _ in seen] == list(range(1, 7))
        assert all(total == 6 for _, total, _ in seen)
        assert all(source in ("run", "memo", "cache") for _, _, source in seen)

    def test_works_without_a_ledger(self):
        engine = ExecutionEngine(max_workers=1)
        outcome = run_sweep(small_grid(), engine=engine)
        assert outcome.complete and outcome.ledger_path is None

    def test_report_over_the_outcome(self):
        engine = ExecutionEngine(max_workers=1)
        outcome = run_sweep(small_grid(), engine=engine)
        report = outcome.report()
        assert report.baseline == "conventional"
        assert len(report.rows) == 6
        text = report.render()
        assert "dmdc-table256" in text and "(baseline)" in text
        assert validate_report_payload(report.to_dict()) == []

    def test_backend_arguments_are_validated(self):
        with pytest.raises(SweepError, match="not both"):
            run_sweep(small_grid(), engine=ExecutionEngine(max_workers=1),
                      client=object())
        with pytest.raises(SweepError, match="chunk"):
            run_sweep(small_grid(), chunk=0,
                      engine=ExecutionEngine(max_workers=1))


class TestResume:
    def test_killed_sweep_resumes_without_resimulating(self, tmp_path):
        """The satellite's scenario, end to end."""
        straight = str(tmp_path / "straight.jsonl")
        resumed = str(tmp_path / "resumed.jsonl")

        # The uninterrupted reference run.
        reference = run_sweep(small_grid(),
                              engine=ExecutionEngine(max_workers=1),
                              ledger=straight)
        assert reference.complete

        # "Kill" the orchestrator after 2 of 6 points.
        first = run_sweep(small_grid(), engine=ExecutionEngine(max_workers=1),
                          ledger=resumed, limit=2)
        assert not first.complete
        assert first.accounting.executed == 2
        assert len(first.entries) == 2

        # Re-run with a FRESH engine: nothing but the ledger can serve
        # the finished points.
        engine = ExecutionEngine(max_workers=1)
        sources = []
        second = run_sweep(small_grid(), engine=engine, ledger=resumed,
                           progress=lambda done, total, point, source:
                           sources.append(source))
        assert second.complete
        assert second.accounting.from_ledger == 2
        assert second.accounting.submitted == 4
        assert second.accounting.executed == 4
        assert engine.stats.executed == 4  # completed points never re-ran
        assert sources[:2] == ["ledger", "ledger"]

        # Interrupted + resumed ledger is byte-identical to the straight
        # run, and so is the report artifact.
        assert open(resumed, "rb").read() == open(straight, "rb").read()
        assert second.report().to_dict() == reference.report().to_dict()

    def test_rerunning_a_complete_sweep_is_free(self, tmp_path):
        ledger = str(tmp_path / "sweep.jsonl")
        run_sweep(small_grid(), engine=ExecutionEngine(max_workers=1),
                  ledger=ledger)
        engine = ExecutionEngine(max_workers=1)
        again = run_sweep(small_grid(), engine=engine, ledger=ledger)
        assert again.complete
        assert again.accounting.from_ledger == 6
        assert again.accounting.submitted == 0
        assert again.accounting.executed == 0
        assert again.accounting.hit_rate == 1.0
        assert engine.stats.requested == 0

    def test_changed_grid_refuses_the_old_ledger(self, tmp_path):
        from repro.sweeps import LedgerError
        ledger = str(tmp_path / "sweep.jsonl")
        run_sweep(small_grid(), engine=ExecutionEngine(max_workers=1),
                  ledger=ledger, limit=1)
        other = small_grid()
        other.base["instructions"] = BUDGET + 1
        with pytest.raises(LedgerError, match="does not match"):
            run_sweep(other, engine=ExecutionEngine(max_workers=1),
                      ledger=ledger)


class TestCli:
    def _sweep(self, tmp_path, *extra):
        argv = ["sweep", "--axis", "scheme=dmdc", "--axis", "table=256,512",
                "--workload", "gzip", "--instructions", str(BUDGET),
                "--baseline", "conventional", "--name", "cli-test",
                "--no-cache", "--jobs", "1", "--quiet",
                "--ledger", str(tmp_path / "cli.jsonl")]
        return main(argv + list(extra))

    def test_end_to_end_with_artifact(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert self._sweep(tmp_path, "--json-out", str(out)) == 0
        stdout = capsys.readouterr().out
        assert "hit rate" in stdout
        assert "sweep report: cli-test" in stdout
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1 and payload["complete"]
        assert payload["accounting"]["executed"] == 3
        assert validate_report_payload(payload["report"]) == []

    def test_second_invocation_serves_from_the_ledger(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert self._sweep(tmp_path) == 0
        stdout = capsys.readouterr().out
        assert "ledger 3 | submitted 0 | simulated 0" in stdout
        assert "hit rate 100.0%" in stdout

    def test_limit_reports_incomplete_with_resume_hint(self, tmp_path, capsys):
        assert self._sweep(tmp_path, "--limit", "1") == 0
        stdout = capsys.readouterr().out
        assert "sweep incomplete: 1/3" in stdout
        assert "--ledger" in stdout

    def test_list_presets(self, capsys):
        assert main(["sweep", "--list-presets"]) == 0
        stdout = capsys.readouterr().out
        for name in ("demo64", "ci-smoke", "width-scaling"):
            assert name in stdout

    def test_bad_grid_exits_2(self, capsys):
        assert main(["sweep", "--axis", "bogus=1", "--quiet"]) == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_preset_and_axes_conflict_exits_2(self, capsys):
        assert main(["sweep", "--preset", "ci-smoke", "--axis",
                     "table=256", "--quiet"]) == 2
        assert "not both" in capsys.readouterr().err


class TestPresetSmoke:
    def test_ci_smoke_preset_runs_end_to_end(self, tmp_path):
        outcome = run_sweep(get_preset("ci-smoke"),
                            engine=ExecutionEngine(max_workers=1),
                            ledger=str(tmp_path / "ci.jsonl"))
        assert outcome.complete
        report = outcome.report()
        assert report.baseline == "conventional"
        assert validate_report_payload(report.to_dict()) == []
