"""Shadow-oracle sweep over the full scheme matrix.

Acceptance criteria for the sanitizer subsystem, on the same nine scheme
configurations x two workloads the fast-path equivalence suite pins:

* zero missed violations and zero probe failures everywhere (every scheme
  the simulator implements is sound on these runs);
* the sanitizer is bit-invisible — the ``to_dict()`` payload of a
  sanitized run equals the plain run's exactly;
* the sweep is not vacuous: the oracle observes real violations on at
  least one cell, and the shadow oracle never diverges from the built-in
  ground-truth checker.
"""

import pytest

from repro.analysis.sanitizer import SCHEME_MATRIX, run_sanitized
from repro.sim.config import CONFIG2
from repro.sim.runner import run_trace
from repro.workloads import get_workload

#: Budget chosen (with seed 1) so mcf crosses a true ordering violation —
#: see the vacuousness test below; a sweep with no violations would prove
#: soundness trivially.
BUDGET = 6_000

WORKLOADS = ("gzip", "mcf")

_TRACES = {}
_REPORTS = {}


def _trace(name):
    if name not in _TRACES:
        _TRACES[name] = get_workload(name).generate(BUDGET + 2_000)
    return _TRACES[name]


def _sanitized(workload, scheme_label):
    key = (workload, scheme_label)
    if key not in _REPORTS:
        config = CONFIG2.with_scheme(SCHEME_MATRIX[scheme_label])
        _REPORTS[key] = run_sanitized(
            config, _trace(workload), max_instructions=BUDGET, seed=1)
    return _REPORTS[key]


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme_label", sorted(SCHEME_MATRIX))
def test_no_missed_violations(workload, scheme_label):
    _, report = _sanitized(workload, scheme_label)
    assert report.missed_violations == 0, report.format()
    assert report.probe_failure_count == 0, report.format()
    assert report.oracle_divergence == 0, report.format()
    assert report.clean


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme_label", sorted(SCHEME_MATRIX))
def test_sanitizer_is_bit_invisible(workload, scheme_label):
    result, _ = _sanitized(workload, scheme_label)
    config = CONFIG2.with_scheme(SCHEME_MATRIX[scheme_label])
    plain = run_trace(config, _trace(workload), max_instructions=BUDGET, seed=1)
    assert result.to_dict() == plain.to_dict()


def test_sweep_is_not_vacuous():
    """At least one cell must cross a true violation, and every scheme must
    replay it (true_replays >= violations seen)."""
    total = 0
    for scheme_label in sorted(SCHEME_MATRIX):
        _, report = _sanitized("mcf", scheme_label)
        total += report.oracle_violations
        assert report.true_replays >= report.oracle_violations
    assert total > 0


def test_probes_exercised_everywhere():
    for workload in WORKLOADS:
        for scheme_label in sorted(SCHEME_MATRIX):
            _, report = _sanitized(workload, scheme_label)
            assert report.probe_checks > 0
            assert report.events_checked > 0
