"""Tests for the store-set dependence predictor (extension)."""

import pytest

from repro.core.storesets import StoreSetPredictor
from repro.errors import ConfigError
from repro.sim.config import SchemeConfig, small_config
from repro.sim.runner import run_trace
from repro.workloads import SyntheticWorkload, WorkloadSpec


class TestPredictorUnit:
    def test_unknown_pcs_never_block(self):
        p = StoreSetPredictor()
        assert p.blocking_store(0x100, load_seq=50) is None

    def test_violation_creates_shared_set(self):
        p = StoreSetPredictor()
        p.record_violation(load_pc=0x100, store_pc=0x200)
        assert p.set_of(0x100) is not None
        assert p.set_of(0x100) == p.set_of(0x200)

    def test_inflight_store_blocks_trained_load(self):
        p = StoreSetPredictor()
        p.record_violation(0x100, 0x200)
        p.store_dispatched(0x200, store_seq=10)
        assert p.blocking_store(0x100, load_seq=20) == 10
        assert p.delays == 1

    def test_older_loads_not_blocked(self):
        p = StoreSetPredictor()
        p.record_violation(0x100, 0x200)
        p.store_dispatched(0x200, store_seq=30)
        assert p.blocking_store(0x100, load_seq=20) is None

    def test_resolution_unblocks(self):
        p = StoreSetPredictor()
        p.record_violation(0x100, 0x200)
        p.store_dispatched(0x200, 10)
        p.store_resolved(0x200, 10)
        assert p.blocking_store(0x100, 20) is None

    def test_squash_clears_younger_stores(self):
        p = StoreSetPredictor()
        p.record_violation(0x100, 0x200)
        p.store_dispatched(0x200, 50)
        p.squash(last_kept_seq=40)
        assert p.blocking_store(0x100, 60) is None

    def test_set_merging(self):
        p = StoreSetPredictor()
        p.record_violation(0x100, 0x200)
        p.record_violation(0x300, 0x400)
        p.record_violation(0x100, 0x400)  # joins the two sets
        assert p.merges == 1
        assert p.set_of(0x100) == p.set_of(0x400)

    def test_joining_existing_set(self):
        p = StoreSetPredictor()
        p.record_violation(0x100, 0x200)
        p.record_violation(0x100, 0x300)  # store joins load's set
        assert p.set_of(0x300) == p.set_of(0x100)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            StoreSetPredictor(ssit_entries=100)
        with pytest.raises(ConfigError):
            StoreSetPredictor(max_sets=0)


class TestIntegration:
    @pytest.fixture(scope="class")
    def stress_trace(self):
        spec = WorkloadSpec(name="alias", conflict_per_kinstr=10.0, seed=3)
        return SyntheticWorkload(spec).generate(4000)

    def _run(self, trace, store_sets):
        cfg = small_config(wrongpath_loads=False).with_scheme(
            SchemeConfig(kind="dmdc", store_sets=store_sets)
        )
        return run_trace(cfg, trace, max_instructions=3500)

    def test_prediction_reduces_true_replays(self, stress_trace):
        off = self._run(stress_trace, False)
        on = self._run(stress_trace, True)
        assert off.counters["replay.true"] > 0
        assert on.counters["replay.true"] < off.counters["replay.true"]
        assert on.counters["storesets.load_delays"] > 0

    def test_prediction_keeps_soundness(self, stress_trace):
        on = self._run(stress_trace, True)  # ground-truth checker active
        assert on.committed == 3500

    def test_predictor_counters_exported(self, stress_trace):
        on = self._run(stress_trace, True)
        assert on.counters["storesets.violations_recorded"] > 0
