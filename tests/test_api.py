"""Tests for the stable :mod:`repro.api` facade."""

import pytest

from repro import api
from repro.errors import ConfigError
from repro.exec.engine import ExecutionEngine, use_engine
from repro.workloads import WorkloadSpec

BUDGET = 800


class TestRun:
    def test_run_by_names(self):
        result = api.run("gzip", scheme="dmdc-local", instructions=BUDGET)
        assert result.workload == "gzip"
        assert result.ipc > 0
        assert result.scheme_name == "dmdc-local"
        assert result.config_name == "config2"

    def test_run_accepts_objects(self):
        spec = WorkloadSpec(name="api-custom", group="INT", seed=7)
        scheme = api.SchemeConfig(kind="dmdc", checking_queue_entries=8)
        result = api.run(spec, scheme=scheme, config=api.CONFIG1,
                         instructions=BUDGET)
        assert result.workload == "api-custom"
        assert result.scheme_name.startswith("dmdc")
        assert result.config_name == api.CONFIG1.name

    def test_run_overrides_enter_the_content_address(self):
        engine = ExecutionEngine(max_workers=1)
        with use_engine(engine):
            api.run("gzip", instructions=BUDGET, seed=5)
            api.run("gzip", instructions=BUDGET, seed=5,
                    overrides={"lq_size": 16})
        assert engine.stats.executed == 2  # distinct design points

    def test_run_rejects_unknowns(self):
        with pytest.raises(ConfigError):
            api.run("no-such-workload", instructions=BUDGET)
        with pytest.raises(ConfigError):
            api.run("gzip", scheme="magic", instructions=BUDGET)
        with pytest.raises(ConfigError):
            api.run("gzip", config="config9", instructions=BUDGET)

    def test_run_uses_shared_engine(self):
        engine = ExecutionEngine(max_workers=1)
        with use_engine(engine):
            first = api.run("gzip", instructions=BUDGET, seed=3)
            second = api.run("gzip", instructions=BUDGET, seed=3)
        assert engine.stats.executed == 1
        assert engine.stats.memo_hits == 1
        assert first.ipc == second.ipc


class TestSweep:
    def test_grid_shape_and_single_batch(self):
        engine = ExecutionEngine(max_workers=1)
        with use_engine(engine):
            grid = api.sweep(["gzip", "mcf"],
                             schemes=("conventional", "dmdc-local"),
                             instructions=BUDGET)
        assert sorted(grid) == ["conventional", "dmdc-local"]
        assert sorted(grid["dmdc-local"]) == ["gzip", "mcf"]
        assert grid["conventional"]["gzip"].ipc > 0
        assert engine.stats.executed == 4

    def test_sweep_deduplicates(self):
        engine = ExecutionEngine(max_workers=1)
        with use_engine(engine):
            grid = api.sweep(["gzip", "gzip"], schemes=("conventional",),
                             instructions=BUDGET)
        assert engine.stats.executed == 1
        # Duplicate points now collapse at grid expansion, before they
        # ever reach the engine; the accounting lives on the result.
        assert grid.stats["requested"] == 2
        assert grid.stats["collapsed"] == 1
        assert grid.stats["unique"] == 1
        assert grid.stats["executed"] == 1
        assert list(grid["conventional"]) == ["gzip"]

    def test_sweep_result_surface(self):
        engine = ExecutionEngine(max_workers=1)
        with use_engine(engine):
            grid = api.sweep(["gzip"], schemes=("conventional", "dmdc"),
                             instructions=BUDGET)
        assert isinstance(grid, api.SweepResult)
        assert grid.schemes == ["conventional", "dmdc"]
        assert grid.workloads == ["gzip"]
        # Tuple indexing reaches a single result directly.
        assert grid["dmdc", "gzip"] is grid["dmdc"]["gzip"]
        table = grid.table()
        assert "conventional" in table and "gzip" in table
        assert len(list(grid.results())) == 2

    def test_sweep_accepts_grid_spec(self):
        spec = api.GridSpec(
            axes={"scheme": ["conventional", "dmdc"], "workload": ["gzip"]},
            base={"instructions": BUDGET},
        )
        engine = ExecutionEngine(max_workers=1)
        with use_engine(engine):
            grid = api.sweep(spec)
        assert sorted(grid) == ["conventional", "dmdc"]
        assert engine.stats.executed == 2


class TestCompare:
    def test_report_fields_and_table(self):
        report = api.compare("gzip", scheme="dmdc", instructions=BUDGET)
        assert report.baseline.scheme_name == "conventional"
        assert report.candidate.scheme_name.startswith("dmdc")
        assert report.energy_baseline.lq > report.energy_candidate.lq
        assert 0 < report.lq_savings <= 1
        text = report.table()
        assert "IPC" in text and "total energy" in text
        assert "LQ savings" in report.verdict()


class TestCheck:
    def test_static_half(self):
        payload = api.check(static=True, sanitize=False)
        assert payload["ok"] is True
        assert payload["static"] == []
        assert "sanitize" not in payload

    def test_sanitize_half(self):
        payload = api.check(static=False, sanitize=True,
                            schemes=["conventional", "dmdc"],
                            workloads=["gzip"], instructions=1_500)
        assert payload["ok"] is True
        assert len(payload["sanitize"]) == 2
        labels = {entry["label"] for entry in payload["sanitize"]}
        assert labels == {"conventional", "dmdc"}

    def test_sanitize_rejects_unknown_scheme(self):
        with pytest.raises(ConfigError):
            api.check(static=False, sanitize=True, schemes=["magic"],
                      workloads=["gzip"], instructions=1_000)


class TestFacadeSurface:
    def test_all_names_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_verbs_reexported_from_package(self):
        import repro
        assert repro.run is api.run
        assert repro.sweep is api.sweep
        assert repro.compare is api.compare
        assert repro.check is api.check
        assert repro.api is api

    def test_simulate_trace_via_advanced(self):
        adv = api.advanced
        trace = adv.Trace("api-demo")
        pc = 0x100
        for i in range(32):
            trace.append(adv.MicroOp(pc, adv.InstrClass.IALU,
                                     srcs=(28,), dst=1 + i % 4))
            pc += 4
        result = adv.simulate_trace(trace, scheme="dmdc")
        assert result.committed == 32

    def test_moved_names_warn_but_resolve(self):
        from repro.api import advanced
        with pytest.warns(DeprecationWarning, match="repro.api.advanced"):
            assert api.RunRequest is advanced.RunRequest
        with pytest.warns(DeprecationWarning):
            assert api.simulate_trace is advanced.simulate_trace

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            api.no_such_name
