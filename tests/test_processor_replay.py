"""Integration tests for memory-ordering violation detection and replay.

The crafted violation: a store whose address depends on a long-latency
divide (resolves very late) followed closely by an always-ready load to
the same address.  The load issues speculatively, reads stale data, and
every sound scheme must replay it.
"""

import pytest

from repro.core.schemes.base import CheckScheme, CommitDecision
from repro.errors import OrderingViolationMissed
from repro.isa.opcodes import InstrClass
from repro.sim.config import SchemeConfig, small_config
from repro.sim.processor import Processor
from repro.sim.runner import run_trace
from tests.conftest import TraceBuilder


def violation_trace(n_fill=30):
    b = TraceBuilder()
    b.fill(4)
    b.alu(dst=10, cls=InstrClass.IDIV)          # slow address producer
    b.store(0x800, srcs=(10,), data_src=28)     # resolves ~20 cycles late
    b.load(0x800, dst=11)                       # issues immediately: premature
    b.fill(n_fill)
    return b.build()


SCHEMES = [
    SchemeConfig(kind="conventional"),
    SchemeConfig(kind="yla"),
    SchemeConfig(kind="bloom"),
    SchemeConfig(kind="dmdc"),
    SchemeConfig(kind="dmdc", local=True),
    SchemeConfig(kind="dmdc", checking_queue_entries=8),
    SchemeConfig(kind="dmdc", coherence=True),
]


class TestViolationDetection:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: f"{s.kind}-{s.local}-{s.checking_queue_entries}-{s.coherence}")
    def test_every_scheme_replays_the_premature_load(self, scheme):
        config = small_config(wrongpath_loads=False).with_scheme(scheme)
        result = run_trace(config, violation_trace())
        assert result.counters["groundtruth.violations"] >= 1
        assert result.counters["replays"] >= 1
        assert result.committed == len(violation_trace())

    def test_conventional_detects_at_execution_time(self):
        config = small_config(wrongpath_loads=False)
        result = run_trace(config, violation_trace())
        assert result.counters["replays.execution_time"] >= 1
        assert result.counters["replays.commit_time"] == 0

    def test_dmdc_detects_at_commit_time(self):
        config = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind="dmdc"))
        result = run_trace(config, violation_trace())
        assert result.counters["replays.commit_time"] >= 1
        assert result.counters["replays.execution_time"] == 0
        assert result.counters["replay.true"] >= 1

    def test_forwarded_load_is_not_a_violation(self):
        """A load forwarded from a *younger-than-conflicting* store is fine;
        with no conflicting store at all there is nothing to replay."""
        b = TraceBuilder()
        b.alu(dst=5)
        b.store(0x100, data_src=5)
        b.load(0x100, dst=6)
        b.fill(20)
        config = small_config(wrongpath_loads=False)
        result = run_trace(config, b.build())
        assert result.counters["groundtruth.violations"] == 0
        assert result.counters["replays"] == 0


class _BlindScheme(CheckScheme):
    """A deliberately unsound scheme: never searches, never replays."""

    name = "blind"
    uses_associative_lq = False


class TestGroundTruthChecker:
    def test_unsound_scheme_is_caught(self):
        config = small_config(wrongpath_loads=False)
        trace = violation_trace()
        proc = Processor(config, trace)
        proc.scheme = _BlindScheme()
        with pytest.raises(OrderingViolationMissed):
            proc.run(len(trace))

    def test_sound_scheme_passes_same_trace(self):
        config = small_config(wrongpath_loads=False)
        trace = violation_trace()
        Processor(config, trace).run(len(trace))  # must not raise


class TestReplayMechanics:
    def test_replay_reexecutes_from_the_load(self):
        config = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind="dmdc"))
        trace = violation_trace()
        result = run_trace(config, trace)
        # Every instruction still commits exactly once in program order.
        assert result.committed == len(trace)
        assert result.counters["squash.instructions"] >= 1

    def test_replay_guard_terminates_pathological_loops(self):
        """Even with a 1-entry checking table (everything aliases), runs
        terminate thanks to the replay guard forcing non-speculative issue."""
        config = small_config(wrongpath_loads=False).with_scheme(
            SchemeConfig(kind="dmdc", table_entries=1)
        )
        trace = violation_trace(n_fill=60)
        result = run_trace(config, trace)
        assert result.committed == len(trace)

    def test_replays_counted_per_minstr(self):
        config = small_config(wrongpath_loads=False).with_scheme(SchemeConfig(kind="dmdc"))
        result = run_trace(config, violation_trace())
        assert result.replays_per_minstr > 0
