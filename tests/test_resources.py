"""Unit tests for functional units, physical registers, and DynInstr."""

import pytest

from repro.backend.dyninst import DynInstr, InstrState
from repro.backend.resources import FunctionalUnits, PhysRegFile
from repro.errors import ConfigError, SimulationError
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass


class TestFunctionalUnits:
    def test_pool_limits(self):
        fus = FunctionalUnits(int_alu=2, int_muldiv=1, fp_alu=2, fp_muldiv=1)
        fus.new_cycle()
        assert fus.try_acquire(InstrClass.IALU)
        assert fus.try_acquire(InstrClass.LOAD)   # loads share the int pool
        assert not fus.try_acquire(InstrClass.STORE)
        assert fus.try_acquire(InstrClass.IMUL)
        assert not fus.try_acquire(InstrClass.IDIV)  # muldiv pool exhausted
        assert fus.try_acquire(InstrClass.FALU)

    def test_new_cycle_restores(self):
        fus = FunctionalUnits(int_alu=1)
        fus.new_cycle()
        assert fus.try_acquire(InstrClass.IALU)
        assert not fus.try_acquire(InstrClass.IALU)
        fus.new_cycle()
        assert fus.try_acquire(InstrClass.IALU)

    def test_latencies(self):
        fus = FunctionalUnits()
        assert fus.latency(InstrClass.IALU) == 1
        assert fus.latency(InstrClass.IDIV) > fus.latency(InstrClass.IMUL)
        assert fus.latency(InstrClass.FDIV) > fus.latency(InstrClass.FMUL)

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            FunctionalUnits(int_alu=0)


class TestPhysRegFile:
    def test_alloc_until_exhausted(self):
        regs = PhysRegFile(total=34)  # 2 free beyond architectural
        assert regs.try_allocate()
        assert regs.try_allocate()
        assert not regs.try_allocate()

    def test_release_returns_to_pool(self):
        regs = PhysRegFile(total=33)
        assert regs.try_allocate()
        regs.release()
        assert regs.try_allocate()

    def test_double_release_detected(self):
        regs = PhysRegFile(total=33)
        with pytest.raises(SimulationError):
            regs.release()

    def test_rejects_too_small(self):
        with pytest.raises(ConfigError):
            PhysRegFile(total=32)


class TestDynInstr:
    def _mk(self, cls=InstrClass.LOAD, **kw):
        uop = MicroOp(0x100, cls, mem_addr=kw.pop("addr", 0x80), mem_size=8,
                      dst=kw.pop("dst", 1))
        return DynInstr(uop, trace_idx=0, seq=5, fp_side=False)

    def test_initial_state(self):
        d = self._mk()
        assert d.state == InstrState.DISPATCHED
        assert not d.resolved and not d.squashed
        assert d.true_violation_store == -1

    def test_resolved_after_resolve_cycle(self):
        d = self._mk(cls=InstrClass.STORE, dst=None)
        d.resolve_cycle = 12
        assert d.resolved

    def test_flags_passthrough(self):
        assert self._mk(cls=InstrClass.LOAD).is_load
        d = DynInstr(MicroOp(0, InstrClass.BRANCH, taken=True, target=4), 0, 1, False)
        assert d.is_branch

    def test_addr_size_passthrough(self):
        d = self._mk(addr=0x88)
        assert d.addr == 0x88 and d.size == 8

    def test_repr(self):
        assert "LOAD" in repr(self._mk())
