"""CI-checked paper claims: the headline shapes at reduced scale.

These run a 4-workload mini-suite (2 INT + 2 FP, 5k instructions) on
config2 and assert the *orderings and bands* the reproduction stands on.
They are the fastest early-warning signal that a model change broke the
science, sitting between unit tests and the full benchmark harness.
"""

import pytest

from repro.energy.model import EnergyModel
from repro.sim.config import CONFIG2, SchemeConfig
from repro.sim.runner import run_workload
from repro.workloads import get_workload

WORKLOADS = ("gzip", "crafty", "swim", "art")
BUDGET = 5_000


@pytest.fixture(scope="module")
def runs():
    """All (scheme, workload) results this module asserts over."""
    schemes = {
        "base": SchemeConfig(kind="conventional"),
        "yla1": SchemeConfig(kind="yla", yla_registers=1),
        "yla8": SchemeConfig(kind="yla", yla_registers=8),
        "yla8_line": SchemeConfig(kind="yla", yla_registers=8, yla_granularity=128),
        "bloom64": SchemeConfig(kind="bloom", bloom_entries=64),
        "dmdc": SchemeConfig(kind="dmdc"),
        "dmdc_local": SchemeConfig(kind="dmdc", local=True),
    }
    out = {}
    for key, scheme in schemes.items():
        out[key] = {
            name: run_workload(CONFIG2.with_scheme(scheme), get_workload(name),
                               max_instructions=BUDGET)
            for name in WORKLOADS
        }
    return out


def mean(runs_for_scheme, metric):
    vals = [metric(r) for r in runs_for_scheme.values()]
    return sum(vals) / len(vals)


class TestSection3Claims:
    def test_one_register_filters_a_majority(self, runs):
        assert mean(runs["yla1"], lambda r: r.safe_store_fraction) > 0.6

    def test_eight_registers_beat_one(self, runs):
        assert (mean(runs["yla8"], lambda r: r.safe_store_fraction)
                > mean(runs["yla1"], lambda r: r.safe_store_fraction))

    def test_eight_registers_filter_most_searches(self, runs):
        assert mean(runs["yla8"], lambda r: r.safe_store_fraction) > 0.88

    def test_quadword_beats_line_interleaving(self, runs):
        assert (mean(runs["yla8"], lambda r: r.safe_store_fraction)
                >= mean(runs["yla8_line"], lambda r: r.safe_store_fraction) - 0.01)

    def test_one_register_beats_small_bloom(self, runs):
        assert (mean(runs["yla1"], lambda r: r.safe_store_fraction)
                > mean(runs["bloom64"], lambda r: r.safe_store_fraction))

    def test_filtering_never_slows_down(self, runs):
        for name in WORKLOADS:
            assert runs["yla8"][name].cycles == pytest.approx(
                runs["base"][name].cycles, rel=0.02)


class TestSection6Claims:
    def test_dmdc_eliminates_lq_searches(self, runs):
        for name in WORKLOADS:
            assert runs["dmdc"][name].counters["lq.searches_assoc"] == 0

    def test_dmdc_lq_energy_savings_band(self, runs):
        model = EnergyModel(CONFIG2)
        for name in WORKLOADS:
            base = model.evaluate(runs["base"][name]).lq
            dmdc = model.evaluate(runs["dmdc"][name]).lq
            assert dmdc < 0.20 * base, name

    def test_dmdc_net_processor_savings_positive(self, runs):
        model = EnergyModel(CONFIG2)
        savings = []
        for name in WORKLOADS:
            base = model.evaluate(runs["base"][name]).total
            dmdc = model.evaluate(runs["dmdc"][name]).total
            savings.append(1 - dmdc / base)
        assert sum(savings) / len(savings) > 0.02

    def test_dmdc_slowdown_small(self, runs):
        for name in WORKLOADS:
            slow = runs["dmdc"][name].cycles / runs["base"][name].cycles - 1
            assert slow < 0.05, (name, slow)

    def test_safe_loads_are_the_majority(self, runs):
        assert mean(runs["dmdc"], lambda r: r.safe_load_fraction) > 0.7

    def test_fp_checks_less_than_int(self, runs):
        int_chk = (runs["dmdc"]["gzip"].checking_cycle_fraction
                   + runs["dmdc"]["crafty"].checking_cycle_fraction)
        fp_chk = (runs["dmdc"]["swim"].checking_cycle_fraction
                  + runs["dmdc"]["art"].checking_cycle_fraction)
        assert fp_chk < int_chk

    def test_local_windows_shorter_than_global(self, runs):
        glob = mean(runs["dmdc"], lambda r: r.mean_window_instrs or 0.0)
        loc = mean(runs["dmdc_local"], lambda r: r.mean_window_instrs or 0.0)
        if glob > 0 and loc > 0:
            assert loc < glob

    def test_true_violations_rare(self, runs):
        for name in WORKLOADS:
            assert runs["dmdc"][name].per_minstr("replay.true") < 100
