"""The observability recorder: one object on every observer seam.

:class:`ObservabilityRecorder` is simultaneously

* the processor's **tracer** (it implements the tracer protocol's
  ``record(kind, instr, cycle)``), forwarding each pipeline event to an
  internal :class:`~repro.sim.pipetrace.PipelineTracer` for the
  pipetrace-aligned timeline while accumulating attribution totals;
* the target of the processor's **replay seam** (``Processor.obs``):
  :meth:`replay` receives every replay with its detection site
  (commit/execution/coherence) and derives the verdict (true/false) from
  the simulator's ground-truth flag;
* the target of the **scheme emit seam** (``CheckScheme.obs``):
  :meth:`store_classified`, :meth:`window_opened`, :meth:`window_closed`,
  :meth:`table_marked`, :meth:`table_probed` receive YLA filter outcomes
  and checking-window/table activity;
* a registered **hook** (via :meth:`~repro.sim.processor.Processor.attach_hook`),
  which is what turns the event-horizon cycle skipper off so per-cycle
  attribution sees every cycle individually.

Attribution is streaming: cycle buckets, structure residency integrals,
and replay-site tallies are folded as events arrive, so memory stays
bounded regardless of run length.  :func:`attach_observer` wires one
recorder onto a freshly-built processor; :func:`detach_observer` undoes
it (restoring the fast path once no hooks remain).
"""

from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.obs.events import EventRing, JsonlSink, ObsEvent
from repro.sim.pipetrace import PipelineTracer

#: Cycle-classification bitmask per pipeline event kind.  A cycle with at
#: least one event is attributed to exactly one bucket by priority
#: (replay > commit > issue > dispatch > fetch > writeback); cycles with
#: no pipeline event at all are idle.
_BIT_REPLAY = 1
_BIT_COMMIT = 2
_BIT_ISSUE = 4
_BIT_DISPATCH = 8
_BIT_FETCH = 16
_BIT_WRITEBACK = 32

_KIND_BITS = {
    "commit": _BIT_COMMIT,
    "issue": _BIT_ISSUE,
    "reject": _BIT_ISSUE,
    "dispatch": _BIT_DISPATCH,
    "fetch": _BIT_FETCH,
    "complete": _BIT_WRITEBACK,
    "squash": _BIT_WRITEBACK,
}

#: Bucket names in classification priority order, plus the derived idle
#: remainder.  ``replay`` cycles are squash-and-refetch turnarounds;
#: ``writeback`` is a cycle whose only activity was completion/squash.
CYCLE_BUCKETS = ("replay", "commit", "issue", "dispatch", "fetch",
                 "writeback", "idle")

#: Pipeline event kinds counted by :meth:`ObservabilityRecorder.record`.
PIPELINE_KINDS = ("fetch", "dispatch", "issue", "reject", "complete",
                  "commit", "squash")

#: Replay detection sites, matching the three processor replay paths.
REPLAY_SITES = ("commit", "execution", "coherence")


class ReplaySite:
    """Per-PC replay tally with a cause breakdown."""

    __slots__ = ("pc", "count", "causes", "last_seq", "last_cycle")

    def __init__(self, pc: int):
        self.pc = pc
        self.count = 0
        self.causes: Dict[str, int] = {}
        self.last_seq = -1
        self.last_cycle = -1

    def to_dict(self) -> dict:
        return {"pc": self.pc, "count": self.count, "causes": dict(self.causes),
                "last_seq": self.last_seq, "last_cycle": self.last_cycle}


class ObservabilityRecorder:
    """Streaming event recorder + attribution accumulator (one per run)."""

    def __init__(self, ring_capacity: int = 4096,
                 jsonl_path: Optional[str] = None,
                 timeline_capacity: int = 256):
        self.ring = EventRing(ring_capacity)
        self.jsonl: Optional[JsonlSink] = (
            JsonlSink(jsonl_path) if jsonl_path else None)
        #: Internal pipetrace for the profile's timeline rendering.
        self.tracer = PipelineTracer(capacity=timeline_capacity)
        self.events_emitted = 0

        # -- pipeline event counts ----------------------------------------
        self.pipeline_counts: Dict[str, int] = {k: 0 for k in PIPELINE_KINDS}
        self.dispatch_loads = 0
        self.dispatch_stores = 0

        # -- cycle buckets (streaming) -------------------------------------
        self.cycle_buckets: Dict[str, int] = {b: 0 for b in CYCLE_BUCKETS}
        self._cur_cycle = -1
        self._cur_flags = 0

        # -- structure residency integrals ---------------------------------
        # Residency is summed at exit (commit or squash) from each
        # instruction's own dispatch cycle, so no per-entry storage is
        # needed: mean occupancy = residency / total cycles.
        self.rob_residency = 0
        self.lq_residency = 0
        self.sq_residency = 0
        self.rob_retired = 0
        self.rob_squashed = 0
        self.lq_retired = 0
        self.lq_squashed = 0
        self.sq_retired = 0
        self.sq_squashed = 0

        # -- replays --------------------------------------------------------
        self.replay_total = 0
        self.replays_by_site: Dict[str, int] = {s: 0 for s in REPLAY_SITES}
        self.replays_by_verdict: Dict[str, int] = {"true": 0, "false": 0,
                                                   "coherence": 0}
        self.replays_by_cause: Dict[str, int] = {}
        self.replay_sites: Dict[int, ReplaySite] = {}

        # -- scheme events ---------------------------------------------------
        self.stores_safe = 0
        self.stores_unsafe = 0
        self.windows_opened = 0
        self.windows_closed = 0
        self.window_cycles = 0
        self._window_open_cycle = -1
        self.table_marks = 0
        self.table_probes = 0
        self.table_probe_hits = 0
        self.finished = False

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _emit(self, cycle: int, kind: str, seq: int, pc: int, detail: str) -> None:
        event = ObsEvent(cycle, kind, seq, pc, detail)
        self.ring.append(event)
        if self.jsonl is not None:
            self.jsonl.append(event)
        self.events_emitted += 1

    def _tick(self, cycle: int, bit: int) -> None:
        """Fold one pipeline event into the streaming cycle buckets.

        Events arrive cycle-monotonic (every stage of one ``step()`` shares
        the processor's current cycle), so a single current-cycle flag word
        suffices.
        """
        if cycle != self._cur_cycle:
            if self._cur_cycle >= 0:
                self._flush_bucket()
            self._cur_cycle = cycle
            self._cur_flags = bit
        else:
            self._cur_flags |= bit

    def _flush_bucket(self) -> None:
        flags = self._cur_flags
        buckets = self.cycle_buckets
        if flags & _BIT_REPLAY:
            buckets["replay"] += 1
        elif flags & _BIT_COMMIT:
            buckets["commit"] += 1
        elif flags & _BIT_ISSUE:
            buckets["issue"] += 1
        elif flags & _BIT_DISPATCH:
            buckets["dispatch"] += 1
        elif flags & _BIT_FETCH:
            buckets["fetch"] += 1
        elif flags:
            buckets["writeback"] += 1

    # ------------------------------------------------------------------
    # tracer-protocol seam (pipeline stage events)
    # ------------------------------------------------------------------
    def record(self, kind: str, instr, cycle: int) -> None:
        """Tracer-protocol entry: one pipeline event for one instruction."""
        self.tracer.record(kind, instr, cycle)
        if kind == "replay":
            # The cause-tagged replay arrives via the dedicated replay()
            # seam; the tracer record above keeps the timeline complete.
            return
        self.pipeline_counts[kind] += 1
        self._tick(cycle, _KIND_BITS[kind])
        if kind == "commit":
            residency = cycle - instr.dispatch_cycle + 1
            self.rob_residency += residency
            self.rob_retired += 1
            if instr.is_load:
                self.lq_residency += residency
                self.lq_retired += 1
            elif instr.is_store:
                self.sq_residency += residency
                self.sq_retired += 1
        elif kind == "squash":
            if instr.dispatch_cycle >= 0:
                residency = cycle - instr.dispatch_cycle + 1
                self.rob_residency += residency
                self.rob_squashed += 1
                if instr.is_load:
                    self.lq_residency += residency
                    self.lq_squashed += 1
                elif instr.is_store:
                    self.sq_residency += residency
                    self.sq_squashed += 1
        elif kind == "dispatch":
            if instr.is_load:
                self.dispatch_loads += 1
            elif instr.is_store:
                self.dispatch_stores += 1
        self._emit(cycle, kind, instr.seq, instr.uop.pc, "")

    # ------------------------------------------------------------------
    # processor replay seam
    # ------------------------------------------------------------------
    def replay(self, victim, site: str, cycle: int) -> None:
        """One replay, from detection site ``site`` (see REPLAY_SITES).

        The verdict distinguishes the paper's taxonomy at the granularity
        the processor can see: a *true* replay squashes a load the
        ground-truth checker flagged premature; a *false* one squashes a
        clean load; coherence-site replays are invalidation-ordering
        replays and are tallied separately.
        """
        if site == "coherence":
            verdict = "coherence"
        elif victim.true_violation_store >= 0:
            verdict = "true"
        else:
            verdict = "false"
        cause = site + ":" + verdict
        self.replay_total += 1
        self.replays_by_site[site] += 1
        self.replays_by_verdict[verdict] += 1
        self.replays_by_cause[cause] = self.replays_by_cause.get(cause, 0) + 1
        pc = victim.uop.pc
        entry = self.replay_sites.get(pc)
        if entry is None:
            entry = ReplaySite(pc)
            self.replay_sites[pc] = entry
        entry.count += 1
        entry.causes[cause] = entry.causes.get(cause, 0) + 1
        entry.last_seq = victim.seq
        entry.last_cycle = cycle
        self._tick(cycle, _BIT_REPLAY)
        self._emit(cycle, "replay", victim.seq, pc, cause)

    # ------------------------------------------------------------------
    # scheme emit seam
    # ------------------------------------------------------------------
    def store_classified(self, store, safe: bool, cycle: int) -> None:
        """A resolving store was classified by the scheme's filter.

        ``safe`` means the YLA/Bloom/age-hash filter proved no younger
        issued load can alias (a filter *hit*: the LQ search or checking
        work is skipped); unsafe stores pay the full checking cost.
        """
        if safe:
            self.stores_safe += 1
            self._emit(cycle, "store_safe", store.seq, store.uop.pc, "")
        else:
            self.stores_unsafe += 1
            self._emit(cycle, "store_unsafe", store.seq, store.uop.pc, "")

    def window_opened(self, cycle: int) -> None:
        self.windows_opened += 1
        self._window_open_cycle = cycle
        self._emit(cycle, "window_open", -1, -1, "")

    def window_closed(self, cycle: int, instrs: int, loads: int,
                      unsafe_stores: int) -> None:
        self.windows_closed += 1
        # Mirrors the scheme's own checking.cycles accounting exactly.
        self.window_cycles += max(1, cycle - self._window_open_cycle + 1)
        self._window_open_cycle = -1
        self._emit(cycle, "window_close", -1, -1,
                   f"instrs={instrs} loads={loads} unsafe_stores={unsafe_stores}")

    def table_marked(self, store, cycle: int) -> None:
        self.table_marks += 1
        self._emit(cycle, "table_mark", store.seq, store.uop.pc, "")

    def table_probed(self, load, hit: bool, cycle: int) -> None:
        self.table_probes += 1
        if hit:
            self.table_probe_hits += 1
        self._emit(cycle, "table_probe", load.seq, load.uop.pc,
                   "hit" if hit else "miss")

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def finish(self, total_cycles: int) -> None:
        """Flush the streaming state; called once after the run completes."""
        if self.finished:
            return
        if self._cur_cycle >= 0:
            self._flush_bucket()
            self._cur_cycle = -1
            self._cur_flags = 0
        classified = sum(self.cycle_buckets[b] for b in CYCLE_BUCKETS
                         if b != "idle")
        self.cycle_buckets["idle"] = max(0, total_cycles - classified)
        if self.jsonl is not None:
            self.jsonl.close()
        self.finished = True

    def top_replay_sites(self, n: int = 10) -> List[ReplaySite]:
        """The ``n`` program counters with the most replays, descending."""
        ranked = sorted(self.replay_sites.values(),
                        key=lambda site: (-site.count, site.pc))
        return ranked[:n]


def _innermost_scheme(scheme):
    """Unwrap observer wrappers (e.g. the sanitizer) to the real scheme."""
    seen = set()
    while hasattr(scheme, "inner") and id(scheme) not in seen:
        seen.add(id(scheme))
        scheme = scheme.inner
    return scheme


def attach_observer(processor,
                    recorder: Optional[ObservabilityRecorder] = None,
                    **recorder_kwargs) -> ObservabilityRecorder:
    """Wire one recorder onto every observer seam of ``processor``.

    Must run before the first cycle (the recorder needs to see every
    event from cycle zero for its attribution to reconcile).  Attaching
    registers the recorder as a hook, which disables the event-horizon
    cycle skipper for the run — results are bit-identical regardless
    (pinned by ``tests/test_obs_matrix.py``).
    """
    if processor.cycle != 0:
        raise SimulationError(
            "attach_observer requires a fresh processor (cycle 0); "
            f"this one is at cycle {processor.cycle}")
    if processor.tracer is not None:
        raise SimulationError(
            "processor already has a tracer; the recorder provides its own "
            "timeline (ObservabilityRecorder.tracer)")
    if recorder is None:
        recorder = ObservabilityRecorder(**recorder_kwargs)
    processor.tracer = recorder
    processor.obs = recorder
    _innermost_scheme(processor.scheme).obs = recorder
    processor.attach_hook(recorder)
    return recorder


def detach_observer(processor, recorder: ObservabilityRecorder) -> None:
    """Undo :func:`attach_observer` (restores the fast path once no hooks
    remain attached)."""
    if processor.tracer is recorder:
        processor.tracer = None
    if processor.obs is recorder:
        processor.obs = None
    scheme = _innermost_scheme(processor.scheme)
    if getattr(scheme, "obs", None) is recorder:
        scheme.obs = None
    processor.detach_hook(recorder)
