"""Per-structure attribution, reconciled exactly against the counters.

The recorder accumulates everything from *events*; the simulation result
carries the pipeline's own :class:`~repro.stats.counters.CounterSet`.
:func:`build_attribution` derives the "where did the cycles go" report
from the event side and then checks, line by line, that every
event-derived total equals the corresponding counter total — an exact
integer reconciliation, not a tolerance check.  A mismatch means an
event seam is missing or double-firing, which is precisely the bug class
this layer exists to catch (the profile CLI exits non-zero on it).
"""

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple

from repro.obs.recorder import CYCLE_BUCKETS, ObservabilityRecorder
from repro.sim.result import SimulationResult
from repro.stats.report import format_table


class ReconLine(NamedTuple):
    """One reconciliation identity: events-derived vs counter-derived."""

    name: str
    from_events: int
    from_counters: int

    @property
    def ok(self) -> bool:
        return self.from_events == self.from_counters

    def to_dict(self) -> dict:
        return {"name": self.name, "from_events": self.from_events,
                "from_counters": self.from_counters, "ok": self.ok}


@dataclass
class AttributionReport:
    """Cycle, occupancy, and replay attribution for one run."""

    workload: str
    scheme: str
    cycles: int
    committed: int
    #: Cycle partition over CYCLE_BUCKETS; sums exactly to ``cycles``.
    cycle_buckets: Dict[str, int] = field(default_factory=dict)
    #: Per-structure occupancy/throughput accounting (rob/lq/sq/checking).
    structures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Replay totals: overall, by detection site, by verdict, by cause.
    replays: Dict[str, object] = field(default_factory=dict)
    #: The exact event-vs-counter identities checked for this run.
    reconciliation: List[ReconLine] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every reconciliation line holds exactly."""
        return all(line.ok for line in self.reconciliation)

    def mismatches(self) -> List[ReconLine]:
        return [line for line in self.reconciliation if not line.ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "cycles": self.cycles,
            "committed": self.committed,
            "cycle_buckets": dict(self.cycle_buckets),
            "structures": {k: dict(v) for k, v in self.structures.items()},
            "replays": dict(self.replays),
            "reconciliation": [line.to_dict() for line in self.reconciliation],
            "ok": self.ok,
        }

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        lines = [f"{self.workload} under {self.scheme}: "
                 f"{self.committed} instructions in {self.cycles} cycles "
                 f"(IPC {self.committed / self.cycles:.3f})"
                 if self.cycles else
                 f"{self.workload} under {self.scheme}: empty run"]
        rows = []
        for bucket in CYCLE_BUCKETS:
            count = self.cycle_buckets.get(bucket, 0)
            share = count / self.cycles if self.cycles else 0.0
            rows.append([bucket, count, f"{share:.1%}"])
        lines.append(format_table(["cycles went to", "cycles", "share"], rows,
                                  title="Cycle attribution"))
        rows = []
        for name, stats in self.structures.items():
            rows.append([
                name,
                f"{stats.get('occupancy_mean', 0.0):.2f}",
                stats.get("retired", ""),
                stats.get("squashed", ""),
            ])
        lines.append(format_table(
            ["structure", "mean occupancy", "retired", "squashed"], rows,
            title="Structure occupancy"))
        by_cause = self.replays.get("by_cause", {})
        if by_cause:
            rows = [[cause, count] for cause, count in sorted(by_cause.items())]
            lines.append(format_table(["replay cause (site:verdict)", "count"],
                                      rows, title="Replay breakdown"))
        else:
            lines.append("replays: none")
        status = "OK" if self.ok else "MISMATCH"
        rows = [[line.name, line.from_events, line.from_counters,
                 "ok" if line.ok else "MISMATCH"]
                for line in self.reconciliation]
        lines.append(format_table(
            ["identity", "from events", "from counters", ""], rows,
            title=f"Counter reconciliation: {status}"))
        return "\n\n".join(lines)


def build_attribution(recorder: ObservabilityRecorder,
                      result: SimulationResult) -> AttributionReport:
    """Derive the attribution report and reconcile it with ``result``.

    ``recorder`` must have observed the run that produced ``result`` from
    cycle zero; :meth:`ObservabilityRecorder.finish` is called here if the
    caller has not already done so.
    """
    recorder.finish(result.cycles)
    c = result.counters
    counts = recorder.pipeline_counts
    cycles = result.cycles

    structures: Dict[str, Dict[str, object]] = {
        "rob": {
            "occupancy_mean": recorder.rob_residency / cycles if cycles else 0.0,
            "residency_cycles": recorder.rob_residency,
            "retired": recorder.rob_retired,
            "squashed": recorder.rob_squashed,
        },
        "lq": {
            "occupancy_mean": recorder.lq_residency / cycles if cycles else 0.0,
            "residency_cycles": recorder.lq_residency,
            "retired": recorder.lq_retired,
            "squashed": recorder.lq_squashed,
        },
        "sq": {
            "occupancy_mean": recorder.sq_residency / cycles if cycles else 0.0,
            "residency_cycles": recorder.sq_residency,
            "retired": recorder.sq_retired,
            "squashed": recorder.sq_squashed,
        },
        "checking_table": {
            "occupancy_mean": (recorder.window_cycles / cycles
                               if cycles else 0.0),
            "window_cycles": recorder.window_cycles,
            "retired": recorder.table_marks,      # entries marked
            "squashed": recorder.table_probe_hits,  # probes that hit -> replay
        },
    }

    replays: Dict[str, object] = {
        "total": recorder.replay_total,
        "by_site": dict(recorder.replays_by_site),
        "by_verdict": dict(recorder.replays_by_verdict),
        "by_cause": dict(recorder.replays_by_cause),
    }

    recon = [
        ReconLine("fetch.events", counts["fetch"], c["fetch.instructions"]),
        ReconLine("dispatch.events", counts["dispatch"], c["rename.ops"]),
        ReconLine("dispatch.loads", recorder.dispatch_loads, c["lq.writes"]),
        ReconLine("dispatch.stores", recorder.dispatch_stores, c["sq.writes"]),
        ReconLine("issue.events", counts["issue"],
                  c["issue.instructions"] + c["issue.loads"] + c["issue.stores"]),
        ReconLine("reject.events", counts["reject"], c["load.rejections"]),
        ReconLine("commit.events", counts["commit"], c["commit.instructions"]),
        ReconLine("squash.events", counts["squash"], c["squash.instructions"]),
        ReconLine("replay.events", recorder.replay_total, c["replays"]),
        ReconLine("replay.commit_time", recorder.replays_by_site["commit"],
                  c["replays.commit_time"]),
        ReconLine("replay.execution_time",
                  recorder.replays_by_site["execution"],
                  c["replays.execution_time"]),
        ReconLine("replay.coherence", recorder.replays_by_site["coherence"],
                  c["replays.coherence"]),
        ReconLine("stores.classified",
                  recorder.stores_safe + recorder.stores_unsafe,
                  c["stores.resolved"]),
        ReconLine("stores.filter_safe", recorder.stores_safe, c["stores.safe"]),
        ReconLine("windows.opened", recorder.windows_opened,
                  c["windows.opened"]),
        ReconLine("windows.closed", recorder.windows_closed,
                  c["windows.closed"]),
        ReconLine("window.cycles", recorder.window_cycles,
                  c["checking.cycles"]),
        ReconLine("table.marks", recorder.table_marks,
                  c["stores.unsafe_committed"]),
        ReconLine("table.probes", recorder.table_probes,
                  c["loads.checked"] - c["replay.overflow"]),
        ReconLine("cycles.partitioned",
                  sum(recorder.cycle_buckets.values()), c["cycles"]),
    ]

    return AttributionReport(
        workload=result.workload,
        scheme=result.scheme_name,
        cycles=cycles,
        committed=result.committed,
        cycle_buckets=dict(recorder.cycle_buckets),
        structures=structures,
        replays=replays,
        reconciliation=recon,
    )
