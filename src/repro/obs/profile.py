"""The ``repro profile`` entry points (CLI, API, and service).

A profile run is a plain simulation with one
:class:`~repro.obs.recorder.ObservabilityRecorder` attached: identical
results (bit-invisibility is pinned by ``tests/test_obs_matrix.py``),
plus the full attribution report, the top replay sites, and a
pipetrace-aligned timeline of the most recent instructions.

Profile runs bypass the execution engine's result cache on purpose — the
event stream is a per-run observation, not part of the content-addressed
result — so they always simulate.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.attribution import AttributionReport, build_attribution
from repro.obs.recorder import (
    ObservabilityRecorder,
    ReplaySite,
    attach_observer,
)
from repro.sim.config import MachineConfig
from repro.sim.processor import Processor
from repro.sim.result import SimulationResult
from repro.stats.report import format_table


@dataclass
class ProfileReport:
    """Everything one profiled run produced."""

    result: SimulationResult
    attribution: AttributionReport
    recorder: ObservabilityRecorder

    @property
    def ok(self) -> bool:
        """True when the attribution reconciles exactly with the counters."""
        return self.attribution.ok

    def top_sites(self, n: int = 10) -> List[ReplaySite]:
        return self.recorder.top_replay_sites(n)

    def timeline(self, max_rows: int = 32, max_width: int = 100) -> str:
        return self.recorder.tracer.render_timeline(
            max_rows=max_rows, max_width=max_width)

    def summary(self) -> Dict[str, object]:
        """Compact JSON-ready digest (the service's ``trace`` field)."""
        return {
            "events_emitted": self.recorder.events_emitted,
            "cycle_buckets": dict(self.attribution.cycle_buckets),
            "structures": {
                name: stats.get("occupancy_mean", 0.0)
                for name, stats in self.attribution.structures.items()
            },
            "replays": dict(self.attribution.replays),
            "top_replay_sites": [site.to_dict() for site in self.top_sites(5)],
            "windows": {
                "opened": self.recorder.windows_opened,
                "closed": self.recorder.windows_closed,
                "cycles": self.recorder.window_cycles,
            },
            "filtering": {
                "stores_safe": self.recorder.stores_safe,
                "stores_unsafe": self.recorder.stores_unsafe,
                "table_marks": self.recorder.table_marks,
                "table_probes": self.recorder.table_probes,
                "table_probe_hits": self.recorder.table_probe_hits,
            },
            "reconciled": self.ok,
        }

    def to_dict(self, include_events: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "summary": self.result.summary(),
            "attribution": self.attribution.to_dict(),
            "trace": self.summary(),
        }
        if include_events:
            payload["events"] = [e.to_dict() for e in self.recorder.ring.events()]
        return payload

    def render(self, top: int = 10, timeline_rows: int = 24,
               timeline_width: int = 100) -> str:
        """The full human-readable profile (CLI output)."""
        parts = [self.attribution.render()]
        sites = self.top_sites(top)
        if sites:
            rows = []
            for site in sites:
                causes = ", ".join(f"{cause}={count}" for cause, count
                                   in sorted(site.causes.items()))
                rows.append([f"{site.pc:#x}", site.count, causes])
            parts.append(format_table(
                ["pc", "replays", "causes"], rows,
                title=f"Top {len(sites)} replay sites"))
        parts.append("Recent pipeline timeline:\n"
                     + self.timeline(timeline_rows, timeline_width))
        return "\n\n".join(parts)


def profile_run(config: MachineConfig, trace, *,
                instructions: Optional[int] = None,
                seed: int = 1,
                prewarm: bool = True,
                ring_capacity: int = 4096,
                jsonl_path: Optional[str] = None,
                timeline_capacity: int = 256) -> ProfileReport:
    """Simulate ``trace`` on ``config`` with full observability attached."""
    processor = Processor(config, trace, seed=seed)
    recorder = attach_observer(
        processor,
        ring_capacity=ring_capacity,
        jsonl_path=jsonl_path,
        timeline_capacity=timeline_capacity,
    )
    if prewarm:
        processor.prewarm()
    budget = instructions if instructions is not None else len(trace)
    result = processor.run(budget)
    attribution = build_attribution(recorder, result)
    return ProfileReport(result=result, attribution=attribution,
                         recorder=recorder)


def profile_workload(config: MachineConfig, workload, *,
                     instructions: int,
                     seed: int = 1,
                     ring_capacity: int = 4096,
                     jsonl_path: Optional[str] = None,
                     timeline_capacity: int = 256) -> ProfileReport:
    """Generate ``workload``'s trace (with tail slack) and profile it."""
    trace = workload.generate(instructions + 2_000)
    return profile_run(config, trace, instructions=instructions, seed=seed,
                       ring_capacity=ring_capacity, jsonl_path=jsonl_path,
                       timeline_capacity=timeline_capacity)


def profile_request(request) -> Tuple[SimulationResult, Dict[str, object]]:
    """Profile one :class:`~repro.exec.request.RunRequest` (service path).

    Returns the (uncached) simulation result plus the compact trace
    summary for the response body.  The result is bit-identical to what
    the engine would have produced for the same request.
    """
    report = profile_workload(
        request.config, request.resolve_workload(),
        instructions=request.budget, seed=request.seed)
    return report.result, report.summary()
