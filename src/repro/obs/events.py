"""Typed observability events and bounded sinks.

Every event the recorder emits is one :class:`ObsEvent` — a flat record
(cycle, kind, seq, pc, detail) cheap enough to produce per pipeline event
and trivially serializable.  Two sinks are provided: the in-memory
:class:`EventRing` (keeps the most recent N events; the default for the
profile CLI and the service's ``trace=true`` path) and :class:`JsonlSink`
(append-only file, one JSON object per line, for offline analysis).
"""

import json
from collections import deque
from typing import IO, Deque, List, NamedTuple, Optional

#: Every event kind the recorder can emit.  The first eight mirror the
#: pipeline tracer's mnemonics one-to-one; the rest are scheme-level
#: events (YLA classification, checking-window and checking-table
#: activity) plus the cause-tagged ``replay``.
EVENT_KINDS = (
    # pipeline stage events (from the tracer seam)
    "fetch", "dispatch", "issue", "reject", "complete", "commit", "squash",
    # replay with cause detail "<site>:<verdict>" (from the processor seam)
    "replay",
    # scheme events (from the scheme emit seam)
    "store_safe", "store_unsafe",
    "window_open", "window_close",
    "table_mark", "table_probe",
)


class ObsEvent(NamedTuple):
    """One observability event.

    ``detail`` carries kind-specific context: the replay cause
    (``"commit:true"``, ``"execution:false"``, ``"coherence:coherence"``),
    the probe outcome (``"hit"``/``"miss"``), or window-close totals.
    """

    cycle: int
    kind: str
    seq: int
    pc: int
    detail: str

    def to_dict(self) -> dict:
        return {"cycle": self.cycle, "kind": self.kind, "seq": self.seq,
                "pc": self.pc, "detail": self.detail}


class EventRing:
    """Bounded in-memory sink keeping the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        # maxlen=0 is a valid deque bound: capacity 0 counts events but
        # retains none (never unbounded).
        self._events: Deque[ObsEvent] = deque(maxlen=max(0, capacity))
        self.appended = 0

    def append(self, event: ObsEvent) -> None:
        self._events.append(event)
        self.appended += 1

    def events(self) -> List[ObsEvent]:
        """Retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events appended but no longer retained."""
        return self.appended - len(self._events)


class JsonlSink:
    """Append-only JSONL event writer (one JSON object per line)."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w")
        self.appended = 0

    def append(self, event: ObsEvent) -> None:
        if self._fh is None:
            return
        json.dump(event.to_dict(), self._fh, sort_keys=True)
        self._fh.write("\n")
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
