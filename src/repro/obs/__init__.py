"""Structured observability for the simulator (see ``docs/observability.md``).

The package turns the pipeline's existing observer seams — the tracer
protocol and :meth:`~repro.sim.processor.Processor.attach_hook` — into a
typed event stream plus exact per-structure attribution:

* :mod:`repro.obs.events` — the :class:`ObsEvent` record, the bounded
  in-memory :class:`EventRing`, and the :class:`JsonlSink` file writer;
* :mod:`repro.obs.recorder` — :class:`ObservabilityRecorder`, which sits
  on every seam at once (tracer, replay-cause seam, scheme emit seam) and
  accumulates cycle buckets, structure residency, and replay taxonomy
  while the simulation runs;
* :mod:`repro.obs.attribution` — reconciles the event-derived totals
  against the run's own :class:`~repro.stats.counters.CounterSet`,
  line by line and exactly;
* :mod:`repro.obs.profile` — the ``repro profile`` / ``repro.api.profile``
  entry points rendering the report, top replay sites, and a
  pipetrace-aligned timeline.

Observability is strictly zero-cost when off: every emit site in the
pipeline and the schemes is an ``is None`` test on a pre-bound attribute,
and attaching a recorder is proven bit-invisible across the full scheme
matrix (``tests/test_obs_matrix.py``).
"""

from repro.obs.attribution import AttributionReport, ReconLine, build_attribution
from repro.obs.events import EVENT_KINDS, EventRing, JsonlSink, ObsEvent
from repro.obs.recorder import (
    ObservabilityRecorder,
    attach_observer,
    detach_observer,
)
from repro.obs.profile import (
    ProfileReport,
    profile_request,
    profile_run,
    profile_workload,
)

__all__ = [
    "EVENT_KINDS",
    "ObsEvent",
    "EventRing",
    "JsonlSink",
    "ObservabilityRecorder",
    "attach_observer",
    "detach_observer",
    "AttributionReport",
    "ReconLine",
    "build_attribution",
    "ProfileReport",
    "profile_run",
    "profile_workload",
    "profile_request",
]
