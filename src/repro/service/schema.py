"""Wire schema: JSON payloads -> canonical :class:`RunRequest`s.

Every request entering the service is normalized here into the same
content-address space the execution engine and disk cache already use,
which is what makes in-flight dedup across independent HTTP clients
sound: two clients asking for the same design point produce the same
``cache_key()`` and share one simulation.

A run payload::

    {
      "workload": "gzip" | {...WorkloadSpec fields...},
      "scheme":   "dmdc-local" | {...SchemeConfig fields...},   # default "conventional"
      "config":   "config2",                                    # config1|config2|config3
      "overrides": {"lq_size": 48, ...},                        # machine-field overrides
      "instructions": 12000,                                    # aka "budget"
      "seed": 1,
      "trace": true                                             # /run only: attach observability
    }

``trace`` is stripped by :func:`parse_trace_flag` before the rest of the
payload is normalized; it is only honoured on ``POST /run`` (a traced
point always simulates, so sweeps — whose value is dedup — reject it).

Scheme strings go through the canonical label codec
(:meth:`SchemeConfig.from_label`), so the service speaks exactly the
labels the CLI, bench harness, and correctness matrix speak.
"""

from dataclasses import fields as dataclass_fields
from typing import Dict, Optional

from repro.errors import ConfigError, ServiceError
from repro.exec.request import RunRequest
from repro.sim.config import CONFIG1, CONFIG2, CONFIG3, MachineConfig, SchemeConfig
from repro.sim.result import SimulationResult
from repro.workloads import SUITE, WorkloadSpec

NAMED_CONFIGS: Dict[str, MachineConfig] = {
    "config1": CONFIG1,
    "config2": CONFIG2,
    "config3": CONFIG3,
}

#: Budget ceiling per design point — a service must bound the work one
#: request can demand (clients needing more split into several points).
MAX_INSTRUCTIONS = 1_000_000
DEFAULT_INSTRUCTIONS = 12_000


class SchemaError(ServiceError):
    """The request payload is malformed; maps to HTTP 400."""


def _require_mapping(payload: object, what: str) -> Dict:
    if not isinstance(payload, dict):
        raise SchemaError(f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def _dataclass_kwargs(payload: Dict, cls: type, what: str) -> Dict:
    allowed = {f.name for f in dataclass_fields(cls)}
    unknown = [key for key in payload if key not in allowed]
    if unknown:
        raise SchemaError(
            f"unknown {what} field(s): {', '.join(sorted(unknown))}")
    return payload


def parse_scheme(payload: object) -> SchemeConfig:
    """A scheme label or an explicit field object -> :class:`SchemeConfig`."""
    if payload is None:
        return SchemeConfig()
    if isinstance(payload, str):
        try:
            return SchemeConfig.from_label(payload)
        except ConfigError as exc:
            raise SchemaError(str(exc)) from None
    kwargs = _dataclass_kwargs(_require_mapping(payload, "scheme"),
                               SchemeConfig, "scheme")
    try:
        return SchemeConfig(**kwargs)
    except (ConfigError, TypeError) as exc:
        raise SchemaError(f"bad scheme: {exc}") from None


def parse_workload(payload: object):
    """A suite name or an explicit spec object -> RunRequest workload."""
    if isinstance(payload, str):
        if payload not in SUITE:
            raise SchemaError(
                f"unknown workload {payload!r}; choices: {sorted(SUITE)}")
        return payload
    kwargs = _dataclass_kwargs(_require_mapping(payload, "workload"),
                               WorkloadSpec, "workload")
    if "name" not in kwargs:
        raise SchemaError("an explicit workload spec needs a 'name'")
    try:
        return WorkloadSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"bad workload spec: {exc}") from None


def _parse_int(payload: Dict, key: str, default: int,
               lo: int, hi: int) -> int:
    value = payload.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise SchemaError(f"{key} must be an integer")
    if not lo <= value <= hi:
        raise SchemaError(f"{key} must be in [{lo}, {hi}], got {value}")
    return value


def parse_trace_flag(payload: object) -> bool:
    """Pop and validate the opt-in ``trace`` flag of a ``/run`` payload.

    Mutates ``payload`` (removing the key) so the remainder parses with
    :func:`parse_run_payload`, which deliberately does not know ``trace``:
    a sweep point carrying it fails as an unknown field.
    """
    body = _require_mapping(payload, "run payload")
    flag = body.pop("trace", False)
    if not isinstance(flag, bool):
        raise SchemaError("'trace' must be a boolean")
    return flag


def parse_run_payload(payload: object,
                      defaults: Optional[Dict] = None) -> RunRequest:
    """One run payload (plus optional sweep-level defaults) -> request."""
    body = dict(defaults or {})
    body.update(_require_mapping(payload, "run payload"))
    known = {"workload", "scheme", "config", "overrides",
             "instructions", "budget", "seed"}
    unknown = [key for key in body if key not in known]
    if unknown:
        raise SchemaError(f"unknown field(s): {', '.join(sorted(unknown))}")
    if "workload" not in body:
        raise SchemaError("missing required field 'workload'")

    config_name = body.get("config", "config2")
    if config_name not in NAMED_CONFIGS:
        raise SchemaError(
            f"unknown config {config_name!r}; choices: {sorted(NAMED_CONFIGS)}")
    config = NAMED_CONFIGS[config_name].with_scheme(parse_scheme(body.get("scheme")))
    if "overrides" in body:
        overrides = _dataclass_kwargs(
            _require_mapping(body["overrides"], "overrides"),
            MachineConfig, "machine override")
        if "scheme" in overrides or "name" in overrides:
            raise SchemaError(
                "overrides cannot replace 'scheme' or 'name'; use the "
                "top-level fields")
        try:
            config = config.with_overrides(**overrides)
        except (ConfigError, TypeError) as exc:
            raise SchemaError(f"bad overrides: {exc}") from None

    if "instructions" in body and "budget" in body:
        raise SchemaError("give either 'instructions' or 'budget', not both")
    budget = _parse_int(body, "budget" if "budget" in body else "instructions",
                        DEFAULT_INSTRUCTIONS, 1, MAX_INSTRUCTIONS)
    seed = _parse_int(body, "seed", 1, 0, 2**31 - 1)
    return RunRequest(config, parse_workload(body["workload"]), budget, seed)


def describe_result(request: RunRequest, result: SimulationResult,
                    counters: bool = False) -> Dict[str, object]:
    """JSON-ready response body for one completed design point."""
    payload: Dict[str, object] = {
        "key": request.cache_key(),
        "workload": result.workload,
        "config": result.config_name,
        "scheme": request.config.scheme.label(),
        "budget": request.budget,
        "seed": request.seed,
        "summary": result.summary(),
    }
    if counters:
        payload["counters"] = result.counters.as_dict()
    return payload
