"""Wire schema: JSON payloads -> canonical :class:`RunRequest`s.

Since the sweep autopilot landed, the actual point grammar lives in
:mod:`repro.sweeps.points` — ONE normalization path shared by
``repro.api.sweep``, the autopilot's ledgers, and this service, so a
design point has the same ``cache_key()`` no matter which surface named
it.  That is what makes in-flight dedup across independent HTTP clients
sound: two clients asking for the same design point share one
simulation.

This module keeps the service-facing surface: the :class:`SchemaError`
-> HTTP 400 contract (codec errors are re-raised as ``SchemaError`` with
their message intact), and the ``trace`` flag, which is an HTTP-``/run``
concern, not part of a design point's identity.

See :mod:`repro.sweeps.points` for the payload grammar.
"""

from functools import wraps
from typing import Callable, TypeVar, Union

from repro.errors import ServiceError
from repro.exec.request import RunRequest
from repro.sim.config import SchemeConfig
from repro.sweeps import points as _points
from repro.sweeps.points import (  # noqa: F401  (re-exported service surface)
    DEFAULT_INSTRUCTIONS,
    MAX_INSTRUCTIONS,
    NAMED_CONFIGS,
    PointSpecError,
    describe_result,
)
from repro.workloads import WorkloadSpec

_T = TypeVar("_T")


class SchemaError(ServiceError):
    """The request payload is malformed; maps to HTTP 400."""


def _wire(func: Callable[..., _T]) -> Callable[..., _T]:
    """Translate codec errors into the service's 400 contract."""
    @wraps(func)
    def wrapper(*args: object, **kwargs: object) -> _T:
        try:
            return func(*args, **kwargs)
        except PointSpecError as exc:
            raise SchemaError(str(exc)) from None
    return wrapper


parse_scheme: Callable[[object], SchemeConfig] = _wire(_points.parse_scheme)
parse_workload: Callable[[object], Union[str, WorkloadSpec]] = (
    _wire(_points.parse_workload))
parse_run_payload: Callable[..., RunRequest] = _wire(_points.normalize_point)


def parse_trace_flag(payload: object) -> bool:
    """Pop and validate the opt-in ``trace`` flag of a ``/run`` payload.

    Mutates ``payload`` (removing the key) so the remainder parses with
    :func:`parse_run_payload`, which deliberately does not know ``trace``:
    a sweep point carrying it fails as an unknown field.
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"run payload must be a JSON object, got {type(payload).__name__}")
    flag = payload.pop("trace", False)
    if not isinstance(flag, bool):
        raise SchemaError("'trace' must be a boolean")
    return flag
