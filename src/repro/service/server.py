"""The JSON-over-HTTP simulation service (``repro serve``).

Stdlib only: :class:`http.server.ThreadingHTTPServer` accepts concurrent
clients, each handler thread normalizes its payload into the engine's
content-address space (:mod:`repro.service.schema`), admits it to the
shard pool (:mod:`repro.service.shards` — N micro-batching queues, each
owning a private engine, routed by content-address hash), and blocks on
the shared ticket.  Endpoints:

========================  =====================================================
``POST /run``             one design point -> summary (``?counters=1`` for all;
                          ``"trace": true`` attaches the observability layer
                          and adds a ``trace`` digest to the response)
``POST /sweep``           ``{"points": [...], "defaults": {...}}`` -> list
``GET /experiment/<id>``  re-render one paper artifact through the engine
``GET /metrics``          queue depth, batch shape, dedup/cache rates, latency,
                          simulator gauges (instructions/cycles/replays served)
                          — aggregated totals plus one block per shard
``GET /healthz``          200 ok / 503 draining
========================  =====================================================

Backpressure is explicit: a full admission queue answers **429** with a
``Retry-After`` hint derived from current queue depth and the recently
observed drain rate, a draining service answers **503**, and a request
that outlives the per-request timeout answers **503** while its
simulation keeps running for the benefit of the cache and any later
retry.  ``SIGTERM``/``SIGINT`` stop admissions, drain every in-flight
point, then exit 0 (see :func:`serve`).
"""

import json
import signal
import sys
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ServiceError, SimulationError
from repro.exec.engine import ExecutionEngine, set_engine, use_engine
from repro.exec.options import EngineOptions
from repro.exec.request import RunRequest
from repro.service.batcher import Draining, ResultTimeout, Saturated
from repro.service.schema import (
    SchemaError,
    describe_result,
    parse_run_payload,
    parse_trace_flag,
)
from repro.service.shards import ShardPool
from repro.utils.sync import make_lock

#: Hard cap on request body size (a sweep of ~4k explicit spec points).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Hard cap on points per sweep — beyond this, split the sweep.
MAX_SWEEP_POINTS = 1024


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8351
    max_queue: int = 256          # total admission bound (pending + executing)
    max_batch: int = 64           # engine batch ceiling, per shard
    batch_window: float = 0.005   # seconds a batch may accumulate
    request_timeout: float = 120.0  # per-request wait before 503
    drain_timeout: float = 60.0   # SIGTERM drain bound
    engine_options: EngineOptions = field(default_factory=EngineOptions.from_env)
    #: Shard count; ``None`` defers to ``engine_options.resolve_shards()``
    #: (the ``REPRO_SHARDS`` environment default, 1 when unset).
    shards: Optional[int] = None
    #: Force simulations onto worker processes even for singleton batches;
    #: ``None`` means "when sharded" (see :class:`ShardPool`).
    offload: Optional[bool] = None

    def resolve_shards(self) -> int:
        if self.shards is not None:
            return max(1, self.shards)
        return self.engine_options.resolve_shards()


class ReproService(ThreadingHTTPServer):
    """HTTP server dispatching to a pool of engine shards.

    ``self.shards`` is the :class:`ShardPool`; ``self.batcher`` and
    ``self.metrics`` stay as the pool-backed facades older callers and
    the tests use (aggregate depth/drain/close, merged counters).
    ``self.engine`` is shard 0's engine — the pool primary that also
    serves experiment re-rendering and traced runs.
    """

    daemon_threads = True
    # The socketserver default backlog (5) resets connections under the
    # very bursts this service exists to absorb.
    request_queue_size = 128

    #: Ownership map for ``repro check --concurrency`` (REPRO009): the
    #: active-request ledger is bumped by every handler thread and read
    #: by the drain path, always under ``_active_lock`` (also reached
    #: via the ``_active_idle`` condition built over it).
    _GUARDED_BY = {"_active": "_active_lock"}

    def __init__(self, config: ServiceConfig,
                 engine: Optional[ExecutionEngine] = None) -> None:
        self.config = config
        self.shards = ShardPool.build(
            config.resolve_shards(),
            config.engine_options,
            max_queue=config.max_queue,
            max_batch=config.max_batch,
            batch_window=config.batch_window,
            offload=config.offload,
            engine=engine,
        )
        self.engine = self.shards.shards[0].engine
        self.batcher = self.shards
        self.metrics = self.shards.metrics
        self._active = 0
        self._active_lock = make_lock("ReproService._active_lock")
        self._active_idle = threading.Condition(self._active_lock)
        super().__init__((config.host, config.port), RequestHandler)

    # -- request accounting (for drain) ----------------------------------
    def request_started(self) -> None:
        with self._active_lock:
            self._active += 1

    def request_finished(self) -> None:
        with self._active_idle:
            self._active -= 1
            self._active_idle.notify_all()

    def wait_requests_done(self, timeout: float) -> bool:
        import time
        deadline = time.monotonic() + timeout
        with self._active_idle:
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._active_idle.wait(remaining)
        return True

    # -- metrics ----------------------------------------------------------
    def observe_result(self, request: RunRequest, result,
                       traced: bool = False, events: int = 0) -> None:
        """Fold one returned result into its *home shard's* gauges, so
        per-shard simulator accounting matches per-shard routing."""
        shard = self.shards.shard_for(request.cache_key())
        shard.metrics.observe_simulation(result, traced=traced, events=events)

    def metrics_snapshot(self) -> Dict[str, object]:
        """Aggregated totals (the pre-sharding schema) plus a ``shards``
        list with the same blocks per shard."""
        pending, executing = self.shards.depth()
        snapshot = self.shards.merged_metrics().snapshot(
            queue_depth=pending,
            in_flight=executing,
            engine_stats=self.shards.engine_stats(),
            draining=self.shards.draining,
        )
        per_shard: List[Dict[str, object]] = []
        for shard in self.shards.shards:
            shard_pending, shard_executing = shard.depth()
            entry = shard.metrics.snapshot(
                queue_depth=shard_pending,
                in_flight=shard_executing,
                engine_stats=shard.engine.stats.summary(),
                draining=shard.batcher.draining,
            )
            entry["shard"] = shard.index
            per_shard.append(entry)
        snapshot["shards"] = per_shard
        return snapshot

    # -- shutdown ---------------------------------------------------------
    def drain_and_stop(self) -> bool:
        """Graceful shutdown: admissions off, in-flight work completes."""
        drained = self.shards.drain(timeout=self.config.drain_timeout)
        handlers_done = self.wait_requests_done(timeout=self.config.drain_timeout)
        self.shutdown()
        self.shards.close(timeout=1.0)
        return drained and handlers_done


class RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ReproService  # narrowed for the helpers below

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        # Access logs go to stderr only when the server asks for them.
        if getattr(self.server, "verbose", False):
            sys.stderr.write("service: %s\n" % (format % args))

    def _reply(self, status: int, payload: Dict[str, object],
               headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SchemaError("a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise SchemaError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}") from None

    # -- routing ----------------------------------------------------------
    def do_GET(self) -> None:
        self.server.request_started()
        try:
            url = urlparse(self.path)
            if url.path == "/healthz":
                self._get_healthz()
            elif url.path == "/metrics":
                self._reply(200, self.server.metrics_snapshot())
            elif url.path.startswith("/experiment/"):
                self._get_experiment(url.path[len("/experiment/"):],
                                     parse_qs(url.query))
            else:
                self._reply(404, {"error": f"no such endpoint {url.path!r}"})
        except ServiceError as exc:
            self._service_error(exc)
        finally:
            self.server.request_finished()

    def do_POST(self) -> None:
        self.server.request_started()
        try:
            url = urlparse(self.path)
            if url.path == "/run":
                self._post_run(parse_qs(url.query))
            elif url.path == "/sweep":
                self._post_sweep(parse_qs(url.query))
            else:
                self._reply(404, {"error": f"no such endpoint {url.path!r}"})
        except ServiceError as exc:
            self._service_error(exc)
        except SimulationError as exc:
            self._reply(500, {"error": str(exc)})
        finally:
            self.server.request_finished()

    def _service_error(self, exc: ServiceError) -> None:
        # Every error payload carries a machine-readable ``kind`` so
        # clients can discriminate retryable backpressure (saturated /
        # draining / timeout) from hard errors without sniffing message
        # text — ``ServiceClient``'s RetryPolicy keys off it.
        if isinstance(exc, SchemaError):
            self._reply(400, {"error": str(exc), "kind": "schema"})
        elif isinstance(exc, Saturated):
            hint = self.server.shards.retry_after_hint()
            self._reply(429, {"error": str(exc), "kind": "saturated"},
                        headers=(("Retry-After", str(hint)),))
        elif isinstance(exc, Draining):
            self._reply(503, {"error": str(exc), "kind": "draining"})
        elif isinstance(exc, ResultTimeout):
            self.server.metrics.timed_out()
            self._reply(503, {"error": str(exc), "kind": "timeout"})
        else:
            self._reply(500, {"error": str(exc), "kind": "internal"})

    # -- endpoints --------------------------------------------------------
    def _get_healthz(self) -> None:
        if self.server.batcher.draining:
            self._reply(503, {"status": "draining", "kind": "draining"})
        else:
            self._reply(200, {"status": "ok"})

    def _want_counters(self, query: Dict[str, List[str]]) -> bool:
        flag = (query.get("counters") or ["0"])[-1].lower()
        return flag in ("1", "true", "yes")

    def _post_run(self, query: Dict[str, List[str]]) -> None:
        body = self._read_json_body()
        trace = parse_trace_flag(body)
        request = parse_run_payload(body)
        if trace:
            # A traced point always simulates (the event stream is a
            # per-run observation, never cached), so it runs as a direct
            # call on the pool primary's batching thread — the one thread
            # that may touch that engine — like ``GET /experiment/<id>``.
            from repro.obs.profile import profile_request

            ticket = self.server.shards.call(lambda: profile_request(request))
            result, digest = ticket.result(
                timeout=self.server.config.request_timeout)
            payload = describe_result(request, result,
                                      counters=self._want_counters(query))
            payload["trace"] = digest
            self.server.observe_result(
                request, result, traced=True,
                events=int(digest.get("events_emitted", 0)))
            self._reply(200, payload)
            return
        ticket = self.server.shards.submit(request)
        result = ticket.result(timeout=self.server.config.request_timeout)
        self.server.observe_result(request, result)
        self._reply(200, describe_result(request, result,
                                         counters=self._want_counters(query)))

    def _post_sweep(self, query: Dict[str, List[str]]) -> None:
        body = self._read_json_body()
        if not isinstance(body, dict) or not isinstance(body.get("points"), list):
            raise SchemaError('a sweep body is {"points": [...], "defaults": {...}}')
        defaults = body.get("defaults") or {}
        if not isinstance(defaults, dict):
            raise SchemaError("sweep 'defaults' must be a JSON object")
        points = body["points"]
        if not points:
            raise SchemaError("a sweep needs at least one point")
        if len(points) > MAX_SWEEP_POINTS:
            raise SchemaError(
                f"sweep of {len(points)} points over the {MAX_SWEEP_POINTS} "
                f"cap; split it")
        if "trace" in defaults or any(isinstance(point, dict) and "trace" in point
                                      for point in points):
            raise SchemaError(
                "'trace' is only supported on POST /run — a traced point "
                "always simulates, which defeats sweep deduplication")
        requests = [parse_run_payload(point, defaults) for point in points]
        tickets = self.server.shards.submit_many(requests)
        timeout = self.server.config.request_timeout
        counters = self._want_counters(query)
        completed = [ticket.result(timeout=timeout) for ticket in tickets]
        for request, result in zip(requests, completed):
            self.server.observe_result(request, result)
        results = [
            describe_result(request, result, counters=counters)
            for request, result in zip(requests, completed)
        ]
        self._reply(200, {"points": results, "count": len(results)})

    def _get_experiment(self, exp_id: str, query: Dict[str, List[str]]) -> None:
        from repro.experiments.registry import EXPERIMENTS, run_experiment
        if exp_id not in EXPERIMENTS:
            self._reply(404, {"error": f"unknown experiment {exp_id!r}",
                              "choices": sorted(EXPERIMENTS)})
            return
        kwargs = {}
        raw_budget = (query.get("budget") or [None])[-1]
        if raw_budget is not None:
            if not raw_budget.isdigit():
                raise SchemaError("budget must be a positive integer")
            kwargs["budget"] = int(raw_budget)

        def render() -> str:
            # Experiments resolve the process-wide engine; pin it to the
            # pool primary's for the duration (we are on that shard's
            # batching thread, the only thread that ever touches it).
            with use_engine(self.server.engine):
                _, text = run_experiment(exp_id, **kwargs)
            return text

        ticket = self.server.shards.call(render)
        text = ticket.result(timeout=self.server.config.request_timeout)
        self._reply(200, {"id": exp_id, "artifact": text})


def create_server(config: Optional[ServiceConfig] = None,
                  engine: Optional[ExecutionEngine] = None) -> ReproService:
    """A ready-to-run service bound to ``config.host:config.port``.

    ``port=0`` binds an ephemeral port; read ``server.server_address``.
    """
    return ReproService(config or ServiceConfig(), engine)


def serve(config: Optional[ServiceConfig] = None,
          verbose: bool = False) -> int:
    """Run the service until SIGTERM/SIGINT, then drain and exit.

    Returns the process exit code: 0 when every in-flight request was
    completed during the drain, 1 otherwise.
    """
    server = create_server(config)
    server.verbose = verbose  # type: ignore[attr-defined]
    set_engine(server.engine)  # experiments / api calls share the engine
    host, port = server.server_address[0], server.server_address[1]
    stop = threading.Event()

    def _signalled(signum: int, frame: object) -> None:
        print(f"service: received signal {signum}, draining", file=sys.stderr)
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _signalled)

    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    # The one line tooling may parse: the bound address.
    print(f"repro serve: listening on http://{host}:{port}", flush=True)
    print(f"service: {len(server.shards)} shard(s) x "
          f"{server.engine.max_workers} worker(s), routing by content key",
          file=sys.stderr)
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    clean = server.drain_and_stop()
    thread.join(timeout=5.0)
    server.server_close()
    snapshot = server.metrics_snapshot()
    service = snapshot["service"]
    print(f"service: drained; {service['completed']} completed, "
          f"{service['errors']} errors, {service['timeouts']} timeouts",
          file=sys.stderr)
    return 0 if clean else 1
