"""A minimal stdlib client for the simulation service.

Used by the integration tests, the CI ``service-smoke`` jobs, and the
``repro bench --service`` load generator; also the reference for how to
talk to the service from any HTTP client.  One :class:`ServiceClient` is
safe to share across threads — each thread keeps its **own persistent
keep-alive connection** (the server speaks HTTP/1.1 with explicit
``Content-Length``, so connections are reusable), which matters once a
load generator drives thousands of requests: without reuse, every
request pays a TCP handshake and the client side bleeds ephemeral ports
in ``TIME_WAIT``.

A request that finds its cached connection dead (server restarted,
keep-alive timeout, drain) transparently reconnects and retries once.
Retrying is sound here because the service's write path is idempotent by
construction: a design point is content-addressed, so a re-submitted
request coalesces onto the in-flight entry (or hits the cache) instead
of running twice.
"""

import json
import threading
from http.client import (
    BadStatusLine,
    CannotSendRequest,
    HTTPConnection,
    ResponseNotReady,
)
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError

#: Connection-level failures that mean "stale keep-alive socket": safe to
#: reconnect and retry exactly once.  ``ConnectionError`` covers reset /
#: refused / aborted; the ``http.client`` states cover a connection the
#: server half-closed between our requests.
_RETRYABLE = (ConnectionError, BadStatusLine, CannotSendRequest,
              ResponseNotReady, BrokenPipeError)


class ServiceHTTPError(ServiceError):
    """A non-2xx service response, carrying status and decoded body."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Typed wrappers over the service's five endpoints."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8351,
                 timeout: float = 180.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()

    # -- transport --------------------------------------------------------
    def _connection(self) -> HTTPConnection:
        """This thread's persistent connection, created on first use."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
            self._local.connection = None

    def close(self) -> None:
        """Close *this thread's* cached connection (each thread owns its
        own; a shared client is fully closed once every using thread —
        or the client itself — is garbage collected)."""
        self._drop_connection()

    def _exchange(self, method: str, path: str, payload: Optional[bytes],
                  headers: Dict[str, str]) -> Tuple[int, Dict[str, object]]:
        connection = self._connection()
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        if response.will_close:
            self._drop_connection()
        decoded = json.loads(raw) if raw else {}
        return response.status, decoded

    def request(self, method: str, path: str,
                body: Optional[Dict] = None) -> Tuple[int, Dict[str, object]]:
        """One HTTP exchange on the keep-alive connection; returns
        (status, decoded JSON body)."""
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        try:
            return self._exchange(method, path, payload, headers)
        except _RETRYABLE:
            # The cached connection went stale between requests; one
            # reconnect, one retry.  Errors on the fresh connection are
            # real and propagate.
            self._drop_connection()
            return self._exchange(method, path, payload, headers)
        except Exception:
            self._drop_connection()
            raise

    def _checked(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict[str, object]:
        status, payload = self.request(method, path, body)
        if status >= 400:
            raise ServiceHTTPError(status, payload)
        return payload

    # -- endpoints --------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._checked("GET", "/metrics")

    def run(self, workload: str, scheme: str = "conventional",
            config: str = "config2", instructions: int = 12_000,
            seed: int = 1, counters: bool = False,
            **extra: object) -> Dict[str, object]:
        body: Dict[str, object] = {
            "workload": workload, "scheme": scheme, "config": config,
            "instructions": instructions, "seed": seed,
        }
        body.update(extra)
        path = "/run?counters=1" if counters else "/run"
        return self._checked("POST", path, body)

    def run_point(self, point: Dict[str, object],
                  counters: bool = False) -> Dict[str, object]:
        """POST one already-built run payload verbatim (load generator)."""
        path = "/run?counters=1" if counters else "/run"
        return self._checked("POST", path, dict(point))

    def sweep(self, points: List[Dict], defaults: Optional[Dict] = None,
              counters: bool = False) -> Dict[str, object]:
        body: Dict[str, object] = {"points": points}
        if defaults:
            body["defaults"] = defaults
        path = "/sweep?counters=1" if counters else "/sweep"
        return self._checked("POST", path, body)

    def experiment(self, exp_id: str,
                   budget: Optional[int] = None) -> Dict[str, object]:
        path = f"/experiment/{exp_id}"
        if budget is not None:
            path += f"?budget={budget}"
        return self._checked("GET", path)
