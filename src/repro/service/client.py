"""A minimal stdlib client for the simulation service.

Used by the integration tests, the CI ``service-smoke`` jobs, the
``repro bench --service`` load generator, and the sweep autopilot's
service backend; also the reference for how to talk to the service from
any HTTP client.  One :class:`ServiceClient` is safe to share across
threads — each thread keeps its **own persistent keep-alive connection**
(the server speaks HTTP/1.1 with explicit ``Content-Length``, so
connections are reusable), which matters once a load generator drives
thousands of requests: without reuse, every request pays a TCP handshake
and the client side bleeds ephemeral ports in ``TIME_WAIT``.

A request that finds its cached connection dead (server restarted,
keep-alive timeout, drain) transparently reconnects and retries once.
Retrying is sound here because the service's write path is idempotent by
construction: a design point is content-addressed, so a re-submitted
request coalesces onto the in-flight entry (or hits the cache) instead
of running twice.

**Backpressure** is handled by an optional :class:`RetryPolicy`: with
one installed, a 429 (saturated admission queue) sleeps out the server's
``Retry-After`` hint (clamped, jittered, under a cumulative wait budget)
and retries; a 503 whose cause is *draining* re-polls ``/healthz`` a
bounded number of times waiting for a restart, and a 503 whose cause is
a *result timeout* retries directly — the simulation kept running
server-side, so the retry coalesces or hits the cache.  Hard errors
(400/404/500) always propagate immediately.

``socket.timeout`` is deliberately **not** retryable: a timed-out
request may still be executing server-side, and a blind retransmit
doubles the load on a server that is already too slow — the opposite of
backing off.  Callers that want at-most-once semantics on timeout get
them; callers that know their request is idempotent can catch the
timeout and re-submit under their own budget (the sweep orchestrator's
ledger resume is the systematic form of that).
"""

import json
import random
import threading
import time
from dataclasses import dataclass
from http.client import (
    BadStatusLine,
    CannotSendRequest,
    HTTPConnection,
    ResponseNotReady,
)
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceError

#: Connection-level failures that mean "stale keep-alive socket": safe to
#: reconnect and retry exactly once.  ``ConnectionError`` covers reset /
#: refused / aborted; the ``http.client`` states cover a connection the
#: server half-closed between our requests.  ``socket.timeout`` is
#: intentionally absent — see the module docstring.
_RETRYABLE = (ConnectionError, BadStatusLine, CannotSendRequest,
              ResponseNotReady, BrokenPipeError)

#: Longest error-body snippet carried into a :class:`ServiceError` when
#: the body is not JSON (a proxy page, an HTML error, a torn drain).
_SNIPPET_BYTES = 200


class ServiceHTTPError(ServiceError):
    """A non-2xx service response, carrying status and decoded body.

    ``retry_after`` is the parsed ``Retry-After`` response header in
    seconds when the server sent one (the 429 saturation path), else
    ``None``.
    """

    def __init__(self, status: int, payload: Dict[str, object],
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`ServiceClient` rides out transient backpressure.

    The policy is deliberately bounded in three independent ways: per
    request it retries at most ``max_attempts`` times, sleeps at most
    ``max_retry_after`` seconds per attempt no matter what the server
    hints, and sleeps at most ``max_total_wait`` seconds cumulatively —
    whichever budget runs out first re-raises the underlying
    :class:`ServiceHTTPError` to the caller.  ``jitter`` stretches each
    wait by up to that fraction so a fleet of sweep workers released by
    the same hint does not re-slam the admission queue in lockstep.

    ``sleep`` and ``rng`` are injectable for tests (a recording fake
    makes backoff assertions exact and instant).
    """

    max_attempts: int = 8
    max_total_wait: float = 120.0
    max_retry_after: float = 30.0
    base_backoff: float = 0.25
    jitter: float = 0.1
    healthz_poll: float = 0.5
    healthz_attempts: int = 10
    sleep: Optional[Callable[[float], None]] = None
    rng: Optional[Callable[[], float]] = None

    def _sleep(self, seconds: float) -> None:
        (self.sleep or time.sleep)(seconds)

    def _jittered(self, seconds: float) -> float:
        roll = (self.rng or random.random)()
        return seconds * (1.0 + self.jitter * roll)

    def backoff(self, attempt: int,
                retry_after: Optional[float]) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if retry_after is not None and retry_after > 0:
            wait = min(float(retry_after), self.max_retry_after)
        else:
            wait = min(self.base_backoff * (2.0 ** (attempt - 1)),
                       self.max_retry_after)
        return self._jittered(wait)


def error_kind(status: int, payload: Dict[str, object]) -> str:
    """The machine-readable cause of a service error response.

    Servers from this repository stamp a ``kind`` field
    (``saturated`` / ``draining`` / ``timeout`` / ``schema`` /
    ``internal``); for anything older or foreign, fall back to the
    status code and a text sniff of the error message.
    """
    kind = payload.get("kind")
    if isinstance(kind, str):
        return kind
    if status == 429:
        return "saturated"
    if status == 503:
        text = (str(payload.get("error", ""))
                + str(payload.get("status", ""))).lower()
        if "drain" in text:
            return "draining"
        if "time" in text:
            return "timeout"
        return "draining"
    return "hard"


class ServiceClient:
    """Typed wrappers over the service's five endpoints."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8351,
                 timeout: float = 180.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: ``None`` keeps the historical raise-on-first-429 behavior;
        #: the sweep orchestrator and ``repro sweep`` install a policy.
        self.retry = retry
        self._local = threading.local()

    # -- transport --------------------------------------------------------
    def _connection(self) -> HTTPConnection:
        """This thread's persistent connection, created on first use."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
            self._local.connection = None

    def close(self) -> None:
        """Close *this thread's* cached connection (each thread owns its
        own; a shared client is fully closed once every using thread —
        or the client itself — is garbage collected)."""
        self._drop_connection()

    @staticmethod
    def _decode_body(status: int, raw: bytes) -> Dict[str, object]:
        """Decoded JSON body, surviving bodies that are not JSON.

        Error responses can come back as HTML or empty from a proxy or a
        mid-drain connection; those must surface as a structured error
        payload (status + snippet), never as a ``JSONDecodeError``.  A
        non-JSON body on a *success* status means the peer is not this
        service at all.
        """
        if not raw:
            return {}
        try:
            decoded = json.loads(raw)
        except ValueError:
            snippet = raw[:_SNIPPET_BYTES].decode("utf-8", "replace")
            if status < 400:
                raise ServiceError(
                    f"HTTP {status} with a non-JSON body "
                    f"({snippet!r}) — is that endpoint really a repro "
                    f"service?") from None
            return {"error": f"HTTP {status} with a non-JSON body",
                    "raw": snippet}
        if not isinstance(decoded, dict):
            return {"value": decoded}
        return decoded

    def _exchange(self, method: str, path: str, payload: Optional[bytes],
                  headers: Dict[str, str]
                  ) -> Tuple[int, Dict[str, object], Optional[float]]:
        connection = self._connection()
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        hint = response.getheader("Retry-After")
        if response.will_close:
            self._drop_connection()
        retry_after: Optional[float] = None
        if hint is not None:
            try:
                retry_after = float(hint)
            except ValueError:
                retry_after = None
        return response.status, self._decode_body(response.status, raw), \
            retry_after

    def _request(self, method: str, path: str, body: Optional[Dict]
                 ) -> Tuple[int, Dict[str, object], Optional[float]]:
        """One exchange with stale-socket recovery; returns
        ``(status, payload, retry_after_seconds)``."""
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        try:
            return self._exchange(method, path, payload, headers)
        except _RETRYABLE:
            # The cached connection went stale between requests; one
            # reconnect, one retry.  Errors on the fresh connection are
            # real and propagate.
            self._drop_connection()
            return self._exchange(method, path, payload, headers)
        except Exception:
            self._drop_connection()
            raise

    def request(self, method: str, path: str,
                body: Optional[Dict] = None) -> Tuple[int, Dict[str, object]]:
        """One HTTP exchange on the keep-alive connection; returns
        (status, decoded JSON body)."""
        status, payload, _ = self._request(method, path, body)
        return status, payload

    # -- backpressure -----------------------------------------------------
    def _await_not_draining(self, policy: RetryPolicy) -> bool:
        """Bounded ``/healthz`` re-poll: ``True`` once the service
        reports ready again, ``False`` when the poll budget runs out
        (the drain was a real shutdown)."""
        for _ in range(policy.healthz_attempts):
            policy._sleep(policy.healthz_poll)
            try:
                status, _, _ = self._request("GET", "/healthz", None)
            except _RETRYABLE:
                continue
            if status == 200:
                return True
        return False

    def _checked(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict[str, object]:
        policy = self.retry
        attempt = 0
        waited = 0.0
        while True:
            status, payload, retry_after = self._request(method, path, body)
            if status < 400:
                return payload
            error = ServiceHTTPError(status, payload,
                                     retry_after=retry_after)
            if policy is None:
                raise error
            kind = error_kind(status, payload)
            attempt += 1
            if kind not in ("saturated", "timeout", "draining"):
                raise error
            if attempt >= policy.max_attempts:
                raise error
            if kind == "draining":
                if not self._await_not_draining(policy):
                    raise error
                continue
            if kind == "timeout":
                # The simulation kept running server-side; an immediate
                # re-submit coalesces onto it or hits the cache.
                continue
            wait = policy.backoff(attempt, retry_after)
            if waited + wait > policy.max_total_wait:
                raise error
            policy._sleep(wait)
            waited += wait

    # -- endpoints --------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._checked("GET", "/metrics")

    def run(self, workload: str, scheme: str = "conventional",
            config: str = "config2", instructions: int = 12_000,
            seed: int = 1, counters: bool = False,
            **extra: object) -> Dict[str, object]:
        body: Dict[str, object] = {
            "workload": workload, "scheme": scheme, "config": config,
            "instructions": instructions, "seed": seed,
        }
        body.update(extra)
        path = "/run?counters=1" if counters else "/run"
        return self._checked("POST", path, body)

    def run_point(self, point: Dict[str, object],
                  counters: bool = False) -> Dict[str, object]:
        """POST one already-built run payload verbatim (load generator)."""
        path = "/run?counters=1" if counters else "/run"
        return self._checked("POST", path, dict(point))

    def sweep(self, points: List[Dict], defaults: Optional[Dict] = None,
              counters: bool = False) -> Dict[str, object]:
        body: Dict[str, object] = {"points": points}
        if defaults:
            body["defaults"] = defaults
        path = "/sweep?counters=1" if counters else "/sweep"
        return self._checked("POST", path, body)

    def experiment(self, exp_id: str,
                   budget: Optional[int] = None) -> Dict[str, object]:
        path = f"/experiment/{exp_id}"
        if budget is not None:
            path += f"?budget={budget}"
        return self._checked("GET", path)
