"""A minimal stdlib client for the simulation service.

Used by the integration tests and the CI ``service-smoke`` job; also the
reference for how to talk to the service from any HTTP client.  One
:class:`ServiceClient` is safe to share across threads — every call opens
its own connection.
"""

import json
from http.client import HTTPConnection
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError


class ServiceHTTPError(ServiceError):
    """A non-2xx service response, carrying status and decoded body."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Typed wrappers over the service's five endpoints."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8351,
                 timeout: float = 180.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport --------------------------------------------------------
    def request(self, method: str, path: str,
                body: Optional[Dict] = None) -> Tuple[int, Dict[str, object]]:
        """One HTTP exchange; returns (status, decoded JSON body)."""
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw) if raw else {}
            return response.status, decoded
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict[str, object]:
        status, payload = self.request(method, path, body)
        if status >= 400:
            raise ServiceHTTPError(status, payload)
        return payload

    # -- endpoints --------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._checked("GET", "/metrics")

    def run(self, workload: str, scheme: str = "conventional",
            config: str = "config2", instructions: int = 12_000,
            seed: int = 1, counters: bool = False,
            **extra: object) -> Dict[str, object]:
        body: Dict[str, object] = {
            "workload": workload, "scheme": scheme, "config": config,
            "instructions": instructions, "seed": seed,
        }
        body.update(extra)
        path = "/run?counters=1" if counters else "/run"
        return self._checked("POST", path, body)

    def sweep(self, points: List[Dict], defaults: Optional[Dict] = None,
              counters: bool = False) -> Dict[str, object]:
        body: Dict[str, object] = {"points": points}
        if defaults:
            body["defaults"] = defaults
        path = "/sweep?counters=1" if counters else "/sweep"
        return self._checked("POST", path, body)

    def experiment(self, exp_id: str,
                   budget: Optional[int] = None) -> Dict[str, object]:
        path = f"/experiment/{exp_id}"
        if budget is not None:
            path += f"?budget={budget}"
        return self._checked("GET", path)
