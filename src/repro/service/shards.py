"""The shard pool: N engines + N micro-batchers behind one HTTP frontend.

One :class:`MicroBatcher` owning one :class:`ExecutionEngine` caps
service throughput at roughly one core however many clients arrive.  A
:class:`ShardPool` runs N such (engine, batcher, metrics) triples and
routes every design point by its **content-address hash**, which gives
the scaling refactor its central invariant:

    one content key -> one shard, always.

Because routing is a pure function of the engine cache key, in-flight
dedup, micro-batch coalescing, and the in-process memo stay entirely
shard-local — two clients asking for the same point always land on the
same shard and share one simulation, and no cross-shard coordination
(locks on the engine, a shared memo, a distributed dedup map) is ever
needed.  The disk result cache *is* shared across shards: its writes are
atomic (tmp + rename), and a racy double-write of the same key is
byte-identical by construction.

Sweep admission stays all-or-nothing across shards: the pool holds every
involved shard's admission lock (in shard order, so two concurrent
sweeps cannot deadlock) while it checks room everywhere and only then
inserts tickets anywhere.

Shard engines are built with ``offload=True`` when the pool has more
than one shard: every simulation then runs in the shard's own worker
process, so N shards occupy N cores instead of contending for the
frontend's GIL.
"""

import threading
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.engine import ExecutionEngine
from repro.exec.options import EngineOptions
from repro.exec.request import RunRequest
from repro.service.batcher import Draining, MicroBatcher, Saturated, Ticket
from repro.service.metrics import ServiceMetrics
from repro.utils.sync import make_lock

__all__ = ["Shard", "ShardPool", "shard_for_key"]

#: Hex digits of the content key consumed by the router.  16 nibbles of
#: sha256 are uniform far beyond any realistic shard count.
_ROUTE_NIBBLES = 16

#: ``Retry-After`` ceiling — past this the client should re-plan, not wait.
MAX_RETRY_AFTER = 60
#: ``Retry-After`` floor and the no-evidence fallback.
MIN_RETRY_AFTER = 1


def shard_for_key(key: str, shards: int) -> int:
    """Deterministic shard index for one engine cache key.

    A pure function of (key, shard count): clients, tests, and the load
    generator can all predict placement, and a restarted service routes
    identically — which is what keeps dedup accounting shard-local.
    """
    if shards <= 1:
        return 0
    return int(key[:_ROUTE_NIBBLES], 16) % shards


@dataclass
class Shard:
    """One slice of the pool: a private engine, batcher, and metrics."""

    index: int
    engine: ExecutionEngine
    batcher: MicroBatcher
    metrics: ServiceMetrics

    def depth(self) -> Tuple[int, int]:
        return self.batcher.depth()


class _PoolMetricsView:
    """``server.metrics``-compatible facade over per-shard accounting.

    Attribute reads (``received``, ``completed``, ``rejected_saturation``
    ...) answer freshly merged totals across every shard; ``timed_out``
    records on the pool's own ledger (a timeout is observed by the HTTP
    frontend, not by any one shard).
    """

    def __init__(self, pool: "ShardPool") -> None:
        self._pool = pool

    def timed_out(self) -> None:
        self._pool.frontend_metrics.timed_out()

    def __getattr__(self, name: str):
        return getattr(self._pool.merged_metrics(), name)


class ShardPool:
    """Routes design points to N shard batchers by content-address hash."""

    #: Ownership map for ``repro check --concurrency`` (REPRO009).
    _GUARDED_BY = {"_draining": "_drain_lock"}

    def __init__(self, shards: Sequence[Shard]) -> None:
        if not shards:
            raise ValueError("a shard pool needs at least one shard")
        self.shards = list(shards)
        #: Frontend-side accounting that belongs to no shard (timeouts).
        self.frontend_metrics = ServiceMetrics()
        self.metrics = _PoolMetricsView(self)
        self._draining = False
        self._drain_lock = make_lock("ShardPool._drain_lock")

    @classmethod
    def build(cls, count: int, options: EngineOptions, *,
              max_queue: int, max_batch: int, batch_window: float,
              offload: Optional[bool] = None,
              engine: Optional[ExecutionEngine] = None) -> "ShardPool":
        """A pool of ``count`` shards, each with its own engine.

        ``max_queue`` is the *total* admission bound, divided evenly
        (each shard gets at least one slot).  ``offload`` defaults to
        ``count > 1`` — a single-shard pool keeps the original in-process
        execution path.  An explicit ``engine`` (tests inject stubs) is
        only meaningful for a single shard: a shared engine across shards
        would reintroduce exactly the cross-shard races sharding removes.
        """
        if count < 1:
            raise ValueError("shard count must be positive")
        if engine is not None and count > 1:
            raise ValueError(
                "an explicit engine implies one shard; a shared engine "
                "across shards would race")
        if offload is None:
            offload = count > 1
        per_shard_queue = max(1, max_queue // count)
        shards = []
        for index in range(count):
            shard_engine = engine if engine is not None else ExecutionEngine(
                options=options,
                max_workers=options.workers_per_shard(),
                offload=offload,
            )
            metrics = ServiceMetrics()
            batcher = MicroBatcher(
                shard_engine,
                max_queue=per_shard_queue,
                max_batch=max_batch,
                batch_window=batch_window,
                metrics=metrics,
                name=f"repro-batcher-{index}",
                shard_index=index,
            )
            shards.append(Shard(index, shard_engine, batcher, metrics))
        return cls(shards)

    # -- routing ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.shards)

    def route(self, key: str) -> int:
        return shard_for_key(key, len(self.shards))

    def shard_for(self, key: str) -> Shard:
        return self.shards[self.route(key)]

    # -- admission --------------------------------------------------------
    def submit(self, request: RunRequest) -> Ticket:
        """Admit one design point on its home shard."""
        return self.shard_for(request.cache_key()).batcher.submit(request)

    def submit_many(self, requests: Sequence[RunRequest]) -> List[Ticket]:
        """Admit a sweep atomically across every involved shard.

        The pool takes the involved shards' admission locks in shard
        order, checks draining and room on all of them, and only then
        inserts tickets on any — so a sweep that does not fit somewhere
        is rejected wholesale with nothing admitted anywhere, exactly
        the single-batcher all-or-nothing contract.
        """
        keyed = [(request.cache_key(), request) for request in requests]
        groups: Dict[int, List[Tuple[str, RunRequest]]] = {}
        for key, request in keyed:
            groups.setdefault(self.route(key), []).append((key, request))
        ordered = sorted(groups)
        with ExitStack() as stack:
            for index in ordered:
                stack.enter_context(self.shards[index].batcher.admission)
            # ``draining_locked``, not the ``draining`` property: we hold
            # every involved admission lock already, and the property
            # re-acquiring a non-reentrant lock would self-deadlock.
            if any(self.shards[index].batcher.draining_locked()
                   for index in ordered):
                for index in ordered:
                    self.shards[index].batcher.reject_all(
                        len(groups[index]), draining=True)
                raise Draining(
                    "service is draining; retry against a live replica")
            shortfalls = []
            for index in ordered:
                batcher = self.shards[index].batcher
                fresh = batcher.fresh_slots_needed(
                    [key for key, _ in groups[index]])
                room = batcher.free_slots()
                if fresh > room:
                    shortfalls.append((index, fresh, max(room, 0)))
            if shortfalls:
                for index in ordered:
                    self.shards[index].batcher.reject_all(
                        len(groups[index]), draining=False)
                detail = ", ".join(
                    f"shard {index} needs {fresh} new slots, {room} free"
                    for index, fresh, room in shortfalls)
                raise Saturated(f"admission queue full ({detail})")
            ticket_by_key: Dict[str, Ticket] = {}
            for index in ordered:
                batcher = self.shards[index].batcher
                for (key, _), ticket in zip(
                        groups[index], batcher.admit(groups[index])):
                    ticket_by_key[key] = ticket
        return [ticket_by_key[key] for key, _ in keyed]

    def call(self, fn: Callable[[], object]) -> Ticket:
        """Run ``fn`` on shard 0's batching thread.

        Shard 0 is the pool's "primary": its engine doubles as the
        process-wide default (``set_engine``), so experiment re-rendering
        and traced runs keep the single-threaded engine contract.
        """
        return self.shards[0].batcher.call(fn)

    # -- gauges -----------------------------------------------------------
    def depth(self) -> Tuple[int, int]:
        """(pending, executing) summed across shards."""
        pending = executing = 0
        for shard in self.shards:
            p, e = shard.depth()
            pending += p
            executing += e
        return pending, executing

    def merged_metrics(self) -> ServiceMetrics:
        """Aggregate accounting: every shard plus the frontend ledger."""
        return ServiceMetrics.merged(
            [shard.metrics for shard in self.shards] + [self.frontend_metrics])

    def engine_stats(self) -> Dict[str, float]:
        """Per-field sum of every shard engine's cumulative stats, with
        the derived ``hit_rate`` recomputed over the summed counts."""
        total: Dict[str, float] = {}
        for shard in self.shards:
            for name, value in shard.engine.stats.summary().items():
                total[name] = total.get(name, 0) + value
        unique = total.get("unique", 0)
        total["hit_rate"] = (
            (total.get("memo_hits", 0) + total.get("disk_hits", 0)) / unique
            if unique else 0.0)
        return total

    def retry_after_hint(self) -> int:
        """Seconds a 429'd client should wait, from queue depth and the
        recently observed drain rate.

        ``ceil(in-flight points / points-per-second)`` clamped to
        [MIN_RETRY_AFTER, MAX_RETRY_AFTER]; with no completion evidence
        yet (cold service, everything still executing) the honest answer
        is unknown, so the hint falls back to the floor rather than
        inventing a rate.
        """
        pending, executing = self.depth()
        depth = pending + executing
        rate = self.merged_metrics().drain_rate()
        if depth <= 0:
            return MIN_RETRY_AFTER
        if rate <= 0.0:
            return MIN_RETRY_AFTER
        hint = -(-depth // max(rate, 1e-9))  # ceil division
        return int(min(max(hint, MIN_RETRY_AFTER), MAX_RETRY_AFTER))

    # -- lifecycle --------------------------------------------------------
    @property
    def draining(self) -> bool:
        # Read the pool flag under its own lock, then *release* before
        # asking the batchers — holding ``_drain_lock`` across their
        # locked ``draining`` properties would add a needless
        # drain-lock -> batcher-lock edge to the lock-order graph.
        with self._drain_lock:
            if self._draining:
                return True
        return any(shard.batcher.draining for shard in self.shards)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admissions everywhere; wait for every shard to empty.

        Shards drain concurrently — the bound is ``timeout`` overall,
        not per shard.
        """
        with self._drain_lock:
            self._draining = True
        outcomes: List[bool] = [False] * len(self.shards)

        def _drain(index: int) -> None:
            outcomes[index] = self.shards[index].batcher.drain(timeout=timeout)

        threads = [threading.Thread(target=_drain, args=(index,),
                                    name=f"drain-shard-{index}", daemon=True)
                   for index in range(len(self.shards))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return all(outcomes)

    def close(self, timeout: Optional[float] = None) -> bool:
        drained = self.drain(timeout)
        for shard in self.shards:
            shard.batcher.close(timeout=1.0)
            close_engine = getattr(shard.engine, "close", None)
            if close_engine is not None:  # test stubs may have no pool
                close_engine()
        return drained
