"""``repro serve`` — the batched, backpressured simulation service.

Turns the one-shot execution engine into a long-lived daemon: concurrent
clients POST design points, the service normalizes them into the
engine's content-address space, coalesces duplicates in flight, executes
micro-batches on one persistent engine (process pool + memo + disk
cache), and reports itself through ``GET /metrics``.  See
``docs/service.md`` for the endpoint and backpressure contract.

Layers:

* :mod:`repro.service.schema` — JSON payloads -> :class:`RunRequest`s;
* :mod:`repro.service.batcher` — admission queue, in-flight dedup,
  micro-batching, graceful drain;
* :mod:`repro.service.metrics` — counters + latency percentiles;
* :mod:`repro.service.server` — the HTTP layer and ``serve()`` loop;
* :mod:`repro.service.client` — a stdlib client (tests, CI smoke).
"""

from repro.service.batcher import Draining, MicroBatcher, ResultTimeout, Saturated, Ticket
from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.metrics import ServiceMetrics
from repro.service.schema import SchemaError, describe_result, parse_run_payload
from repro.service.server import (
    ReproService,
    ServiceConfig,
    create_server,
    serve,
)

__all__ = [
    "Draining",
    "MicroBatcher",
    "ReproService",
    "ResultTimeout",
    "Saturated",
    "SchemaError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHTTPError",
    "ServiceMetrics",
    "Ticket",
    "create_server",
    "describe_result",
    "parse_run_payload",
    "serve",
]
