"""``repro serve`` — the batched, backpressured simulation service.

Turns the one-shot execution engine into a long-lived daemon: concurrent
clients POST design points, the service normalizes them into the
engine's content-address space, coalesces duplicates in flight, executes
micro-batches on one persistent engine (process pool + memo + disk
cache), and reports itself through ``GET /metrics``.  See
``docs/service.md`` for the endpoint and backpressure contract.

Layers:

* :mod:`repro.service.schema` — JSON payloads -> :class:`RunRequest`s;
* :mod:`repro.service.batcher` — admission queue, in-flight dedup,
  micro-batching, graceful drain (one per shard);
* :mod:`repro.service.shards` — the shard pool: content-address routing
  across N (engine, batcher, metrics) triples;
* :mod:`repro.service.metrics` — counters + latency percentiles,
  per shard and merged;
* :mod:`repro.service.server` — the HTTP layer and ``serve()`` loop;
* :mod:`repro.service.client` — a stdlib keep-alive client (tests, CI
  smoke, the ``repro bench --service`` load generator).
"""

from repro.service.batcher import Draining, MicroBatcher, ResultTimeout, Saturated, Ticket
from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceHTTPError,
    error_kind,
)
from repro.service.metrics import ServiceMetrics
from repro.service.schema import SchemaError, describe_result, parse_run_payload
from repro.service.server import (
    ReproService,
    ServiceConfig,
    create_server,
    serve,
)
from repro.service.shards import Shard, ShardPool, shard_for_key

__all__ = [
    "Draining",
    "MicroBatcher",
    "ReproService",
    "ResultTimeout",
    "RetryPolicy",
    "Saturated",
    "SchemaError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHTTPError",
    "ServiceMetrics",
    "Shard",
    "ShardPool",
    "Ticket",
    "create_server",
    "describe_result",
    "error_kind",
    "parse_run_payload",
    "serve",
    "shard_for_key",
]
