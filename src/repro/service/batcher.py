"""Micro-batching execution queue with in-flight request coalescing.

The service admits design points from many concurrent HTTP handler
threads; this module funnels them onto **one** batching thread that owns
the shared :class:`~repro.exec.engine.ExecutionEngine` (and therefore the
process pool, memo, and disk cache).  The queue provides the three
service-grade properties the one-shot CLI lacked:

* **in-flight dedup** — a point whose content key is already pending or
  executing shares that entry instead of enqueueing again, so N clients
  asking for the same design point cost one simulation;
* **micro-batching** — admitted points are drained in batches (after a
  short accumulation window), amortizing engine dispatch and letting the
  engine's own planner dedup/cache logic see the whole batch at once;
  points that miss every cache then execute through the batched
  :func:`repro.sim.runner.run_many` entry, which shares trace generation
  and SoA kernel buffers across the micro-batch;
* **bounded admission** — at most ``max_queue`` distinct points may be
  pending+executing; beyond that :class:`Saturated` is raised, which the
  HTTP layer turns into an explicit 429 instead of unbounded queueing.

``drain()`` implements graceful shutdown: no new admissions, every
already-admitted point still completes.
"""

import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError, SimulationError
from repro.exec.engine import ExecutionEngine
from repro.exec.request import RunRequest
from repro.service.metrics import ServiceMetrics
from repro.sim.result import SimulationResult
from repro.utils.sync import holds, make_lock


class Saturated(ServiceError):
    """Admission queue full; maps to HTTP 429."""


class Draining(ServiceError):
    """The service is shutting down; maps to HTTP 503."""


class ResultTimeout(ServiceError):
    """The caller's wait deadline expired before the batch finished."""


class Ticket:
    """One admitted design point, shared by every coalesced waiter."""

    __slots__ = ("key", "request", "submitted_at", "_event", "_result", "_error")

    def __init__(self, key: str, request: RunRequest) -> None:
        self.key = key
        self.request = request
        self.submitted_at = time.monotonic()
        self._event = threading.Event()
        self._result: Optional[SimulationResult] = None
        self._error: Optional[BaseException] = None

    def resolve(self, result: Optional[SimulationResult],
                error: Optional[BaseException] = None) -> None:
        self._result = result
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> SimulationResult:
        """Block until the batch containing this point completes.

        Raises :class:`ResultTimeout` if ``timeout`` elapses first — the
        simulation itself keeps running and later waiters (or the disk
        cache) still benefit from it.
        """
        if not self._event.wait(timeout):
            what = self.request.describe() if self.request is not None else "job"
            raise ResultTimeout(
                f"{what} still executing after {timeout:.1f}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    @property
    def done(self) -> bool:
        return self._event.is_set()


class MicroBatcher:
    """Admission queue + single batching thread in front of one engine."""

    #: Ownership map for ``repro check --concurrency`` (REPRO009): every
    #: listed attribute may only be touched while ``_lock`` (reached via
    #: the ``_work``/``_idle`` conditions or the ``admission`` alias) is
    #: held.
    _GUARDED_BY = {
        "_pending": "_lock",
        "_executing": "_lock",
        "_jobs": "_lock",
        "_draining": "_lock",
        "_closed": "_lock",
    }

    def __init__(self, engine: ExecutionEngine, *,
                 max_queue: int = 256,
                 max_batch: int = 64,
                 batch_window: float = 0.005,
                 metrics: Optional[ServiceMetrics] = None,
                 name: str = "repro-batcher",
                 shard_index: Optional[int] = None) -> None:
        if max_queue < 1 or max_batch < 1:
            raise ValueError("max_queue and max_batch must be positive")
        self.engine = engine
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # ``shard_index`` orders same-label locks: the pool admits
        # cross-shard sweeps by taking batcher locks in ascending shard
        # order, and the lock-order witness checks exactly that.
        self._lock = make_lock("MicroBatcher._lock", index=shard_index)
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._pending: "OrderedDict[str, Ticket]" = OrderedDict()
        self._executing: Dict[str, Ticket] = {}
        self._jobs: Deque[Tuple[Callable[[], object], Ticket]] = deque()
        self._draining = False
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name=name, daemon=True)
        self._thread.start()

    # -- admission (handler threads) -------------------------------------
    def depth(self) -> Tuple[int, int]:
        """(pending, executing) sizes — the /metrics queue gauges."""
        with self._lock:
            return len(self._pending), len(self._executing)

    def submit(self, request: RunRequest) -> Ticket:
        """Admit one design point; coalesces onto any in-flight twin."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Sequence[RunRequest]) -> List[Ticket]:
        """Admit a sweep atomically: all points are admitted or none.

        All-or-nothing keeps backpressure honest — a client never gets a
        half-admitted sweep that it then has to untangle on a 429.
        """
        keyed = [(request.cache_key(), request) for request in requests]
        with self.admission:
            if self._draining:
                for _ in keyed:
                    self.metrics.rejected(draining=True)
                raise Draining("service is draining; retry against a live replica")
            fresh = self.fresh_slots_needed([key for key, _ in keyed])
            room = self.free_slots()
            if fresh > room:
                for _ in keyed:
                    self.metrics.rejected(draining=False)
                raise Saturated(
                    f"admission queue full ({self.max_queue} points in "
                    f"flight; sweep needs {fresh} new slots, "
                    f"{max(room, 0)} free)")
            return self.admit(keyed)

    # -- lock-held admission primitives -----------------------------------
    # The shard pool admits one sweep across several batchers atomically
    # by holding every involved ``admission`` condition (in shard order)
    # while it checks room and inserts tickets.  These helpers assume the
    # caller holds ``self.admission``; ``submit_many`` above is the
    # single-batcher composition of the same pieces.
    @property
    def admission(self) -> threading.Condition:
        """The admission lock (a context manager); hold it across any
        sequence of the ``*_locked``-style helpers below."""
        return self._work

    @holds("_lock")
    def free_slots(self) -> int:
        """Admission slots currently free (caller holds ``admission``)."""
        return self.max_queue - len(self._pending) - len(self._executing)

    @holds("_lock")
    def fresh_slots_needed(self, keys: Sequence[str]) -> int:
        """Distinct keys in ``keys`` not already in flight here (caller
        holds ``admission``)."""
        fresh = set()
        for key in keys:
            if key not in self._pending and key not in self._executing:
                fresh.add(key)
        return len(fresh)

    @holds("_lock")
    def draining_locked(self) -> bool:
        """Whether admissions are off (caller holds ``admission``).

        The pool's cross-shard sweep path must use this rather than the
        ``draining`` property: it already holds every involved admission
        lock, and the property re-acquiring a non-reentrant lock would
        self-deadlock.
        """
        return self._draining

    @holds("_lock")
    def reject_all(self, count: int, draining: bool) -> None:
        """Account ``count`` rejected points (caller holds ``admission``)."""
        for _ in range(count):
            self.metrics.rejected(draining=draining)

    @holds("_lock")
    def admit(self, keyed: Sequence[Tuple[str, RunRequest]]) -> List[Ticket]:
        """Insert/coalesce pre-checked points (caller holds ``admission``)."""
        tickets = []
        for key, request in keyed:
            ticket = self._pending.get(key) or self._executing.get(key)
            coalesced = ticket is not None
            if ticket is None:
                ticket = Ticket(key, request)
                self._pending[key] = ticket
            tickets.append(ticket)
            self.metrics.admitted(coalesced=coalesced)
        self._work.notify()
        return tickets

    def call(self, fn: Callable[[], object]) -> Ticket:
        """Run ``fn`` on the batching thread (between batches).

        The engine is single-threaded by design; anything else that needs
        it — e.g. ``GET /experiment/<id>`` re-rendering a paper artifact —
        is serialized through here rather than growing engine locks.
        """
        with self._work:
            if self._draining:
                raise Draining("service is draining")
            ticket = Ticket("<job>", None)  # type: ignore[arg-type]
            self._jobs.append((fn, ticket))
            self._work.notify()
            return ticket

    # -- shutdown ---------------------------------------------------------
    @property
    def draining(self) -> bool:
        with self._work:
            return self._draining

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admissions and wait for every admitted point to resolve.

        Returns ``True`` when the queue emptied, ``False`` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            self._draining = True
            self._work.notify_all()
            while self._pending or self._executing or self._jobs:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining if remaining is not None else 0.1)
        return True

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain, then stop the batching thread."""
        drained = self.drain(timeout)
        with self._work:
            self._closed = True
            self._work.notify_all()
        self._thread.join(timeout=5.0)
        return drained

    # -- the batching thread ----------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._work:
                while not self._pending and not self._jobs and not self._closed:
                    self._work.wait()
                if self._closed and not self._pending and not self._jobs:
                    return
                job = self._jobs.popleft() if self._jobs else None
            if job is not None:
                self._run_job(*job)
                continue
            # Let a burst accumulate so concurrent clients land in one
            # engine batch (bounded: one window, then take what's there).
            if self.batch_window > 0:
                time.sleep(self.batch_window)
            with self._work:
                batch: List[Ticket] = []
                while self._pending and len(batch) < self.max_batch:
                    _, ticket = self._pending.popitem(last=False)
                    self._executing[ticket.key] = ticket
                    batch.append(ticket)
            if batch:
                self._run_batch(batch)

    def _run_job(self, fn: Callable[[], object], ticket: Ticket) -> None:
        try:
            outcome = fn()
        except Exception as exc:  # job errors surface to the one waiter
            self._finish(ticket, None, exc)
        else:
            self._finish(ticket, outcome, None)  # type: ignore[arg-type]

    def _run_batch(self, batch: List[Ticket]) -> None:
        self.metrics.observe_batch(len(batch))
        requests = [ticket.request for ticket in batch]
        try:
            results = self.engine.run(requests)
        except SimulationError:
            # One bad point fails an engine batch wholesale; fall back to
            # per-point execution so its batch-mates still succeed.
            for ticket in batch:
                try:
                    result = self.engine.run([ticket.request])[0]
                except SimulationError as exc:
                    self._finish(ticket, None, exc)
                else:
                    self._finish(ticket, result, None)
            return
        except Exception as exc:  # engine infrastructure failure
            for ticket in batch:
                self._finish(ticket, None, exc)
            return
        for ticket, result in zip(batch, results):
            self._finish(ticket, result, None)

    def _finish(self, ticket: Ticket, result, error) -> None:
        latency = time.monotonic() - ticket.submitted_at
        with self._idle:
            self._executing.pop(ticket.key, None)
            ticket.resolve(result, error)
            self.metrics.finished(latency, error=error is not None)
            self._idle.notify_all()
