"""Service observability: counters, batch shape, latencies, simulator gauges.

One :class:`ServiceMetrics` instance is shared by the admission path
(HTTP handler threads) and the batching thread; every mutation happens
under one lock, and :meth:`snapshot` returns a plain-JSON dict suitable
for ``GET /metrics`` directly.
"""

import math
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.utils.sync import make_lock

#: How many recent request latencies feed the percentile estimates.
LATENCY_RESERVOIR = 2048
#: How many recent batch sizes feed the batch-shape stats.
BATCH_RESERVOIR = 512
#: How many recent completion timestamps feed the drain-rate estimate.
DRAIN_RESERVOIR = 256
#: Completions older than this (seconds) no longer count toward the
#: drain rate — the 429 hint must reflect *current* throughput.
DRAIN_WINDOW_SECONDS = 30.0

#: Percentiles reported by ``/metrics``.
PERCENTILES = (50, 90, 99)


def percentile(samples: List[float], pct: float) -> Optional[float]:
    """Nearest-rank percentile of ``samples`` (which may be unsorted).

    Returns ``None`` when there are no samples — ``/metrics`` renders that
    as JSON ``null`` rather than a fake 0.0 latency while the first
    request is still in flight.  ``pct`` is clamped to [0, 100]: 0 is the
    minimum, 100 the maximum.
    """
    if not samples:
        return None
    pct = max(0.0, min(100.0, pct))
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class ServiceMetrics:
    """Cumulative accounting for one service process."""

    #: Ownership map for ``repro check --concurrency`` (REPRO009): every
    #: counter and reservoir is shared between handler threads and the
    #: batching thread, so all of them live under the one ``_lock``.
    _GUARDED_BY = {
        "received": "_lock",
        "unique_submitted": "_lock",
        "coalesced_inflight": "_lock",
        "rejected_saturation": "_lock",
        "rejected_draining": "_lock",
        "completed": "_lock",
        "errors": "_lock",
        "timeouts": "_lock",
        "batches": "_lock",
        "max_batch": "_lock",
        "_batch_sizes": "_lock",
        "_latencies": "_lock",
        "_finish_times": "_lock",
        "sim_runs": "_lock",
        "sim_instructions": "_lock",
        "sim_cycles": "_lock",
        "sim_replays": "_lock",
        "traced_runs": "_lock",
        "traced_events": "_lock",
    }

    def __init__(self) -> None:
        self._lock = make_lock("ServiceMetrics._lock")
        # Admission
        self.received = 0              # design points admitted (incl. coalesced)
        self.unique_submitted = 0      # new unique keys entered into the queue
        self.coalesced_inflight = 0    # points that shared an in-flight entry
        self.rejected_saturation = 0   # 429s
        self.rejected_draining = 0     # 503s while shutting down
        # Completion
        self.completed = 0
        self.errors = 0
        self.timeouts = 0
        # Batching
        self.batches = 0
        self.max_batch = 0
        self._batch_sizes: Deque[int] = deque(maxlen=BATCH_RESERVOIR)
        self._latencies: Deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._finish_times: Deque[float] = deque(maxlen=DRAIN_RESERVOIR)
        # Simulator gauges, folded from every result the service returned
        # (cache hits included: the client received those cycles too).
        self.sim_runs = 0
        self.sim_instructions = 0
        self.sim_cycles = 0
        self.sim_replays = 0
        self.traced_runs = 0
        self.traced_events = 0

    # -- recording -------------------------------------------------------
    def admitted(self, coalesced: bool) -> None:
        with self._lock:
            self.received += 1
            if coalesced:
                self.coalesced_inflight += 1
            else:
                self.unique_submitted += 1

    def rejected(self, draining: bool) -> None:
        with self._lock:
            if draining:
                self.rejected_draining += 1
            else:
                self.rejected_saturation += 1

    def finished(self, latency_seconds: float, error: bool = False) -> None:
        with self._lock:
            if error:
                self.errors += 1
            else:
                self.completed += 1
            self._latencies.append(latency_seconds)
            self._finish_times.append(time.monotonic())

    def drain_rate(self, now: Optional[float] = None,
                   window: float = DRAIN_WINDOW_SECONDS) -> float:
        """Resolved design points per second over the recent ``window``.

        0.0 means "no completion evidence yet" — callers must fall back
        to a default hint rather than dividing by this.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            recent = [t for t in self._finish_times if now - t <= window]
        if len(recent) < 2:
            return 0.0
        span = max(now - recent[0], 1e-9)
        return len(recent) / span

    def timed_out(self) -> None:
        with self._lock:
            self.timeouts += 1

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.max_batch = max(self.max_batch, size)
            self._batch_sizes.append(size)

    def observe_simulation(self, result, traced: bool = False,
                           events: int = 0) -> None:
        """Fold one returned :class:`SimulationResult` into the gauges."""
        with self._lock:
            self.sim_runs += 1
            self.sim_instructions += result.committed
            self.sim_cycles += result.cycles
            self.sim_replays += int(result.counters["replays"])
            if traced:
                self.traced_runs += 1
                self.traced_events += events

    # -- reporting -------------------------------------------------------
    def snapshot(self, queue_depth: int = 0, in_flight: int = 0,
                 engine_stats: Optional[Dict[str, float]] = None,
                 draining: bool = False) -> Dict[str, object]:
        """A JSON-ready view of everything measured so far."""
        with self._lock:
            sizes = list(self._batch_sizes)
            latencies = list(self._latencies)
            service: Dict[str, object] = {
                "received": self.received,
                "unique_submitted": self.unique_submitted,
                "coalesced_inflight": self.coalesced_inflight,
                "rejected_saturation": self.rejected_saturation,
                "rejected_draining": self.rejected_draining,
                "completed": self.completed,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "queue_depth": queue_depth,
                "in_flight": in_flight,
                "draining": draining,
            }
            simulator: Dict[str, object] = {
                "runs": self.sim_runs,
                "instructions": self.sim_instructions,
                "cycles": self.sim_cycles,
                "replays": self.sim_replays,
                "mean_ipc": (self.sim_instructions / self.sim_cycles
                             if self.sim_cycles else 0.0),
                "traced_runs": self.traced_runs,
                "traced_events": self.traced_events,
            }
            # ``batches``/``max_batch`` are guarded too — reading them
            # outside the lock raced the batching thread's observe_batch.
            batching: Dict[str, object] = {
                "batches": self.batches,
                "max_batch": self.max_batch,
                "mean_batch": (sum(sizes) / len(sizes)) if sizes else 0.0,
                "recent_batches": sizes[-16:],
            }
        latency: Dict[str, object] = {
            f"p{int(pct)}_seconds": percentile(latencies, pct)
            for pct in PERCENTILES
        }
        latency["samples"] = len(latencies)
        payload: Dict[str, object] = {
            "service": service,
            "batching": batching,
            "latency": latency,
            "simulator": simulator,
        }
        if engine_stats is not None:
            payload["engine"] = dict(engine_stats)
        return payload

    # -- aggregation ------------------------------------------------------
    #: Cumulative integer counters summed by :meth:`merged`.
    _SUMMED = (
        "received", "unique_submitted", "coalesced_inflight",
        "rejected_saturation", "rejected_draining",
        "completed", "errors", "timeouts",
        "batches",
        "sim_runs", "sim_instructions", "sim_cycles", "sim_replays",
        "traced_runs", "traced_events",
    )

    @classmethod
    def merged(cls, parts: Iterable["ServiceMetrics"]) -> "ServiceMetrics":
        """One metrics object folding several shards' accounting.

        Counters sum, ``max_batch`` takes the max, and the latency/batch
        reservoirs concatenate (interleaving across shards is lost, which
        only perturbs which samples age out of the bounded deques — the
        percentile estimate stays an honest sample of recent requests).
        The merge reads each part under its own lock; the result is a
        detached snapshot, safe to :meth:`snapshot` without racing.
        """
        merged = cls()
        for part in parts:
            with part._lock:
                for name in cls._SUMMED:
                    setattr(merged, name, getattr(merged, name) + getattr(part, name))
                merged.max_batch = max(merged.max_batch, part.max_batch)
                merged._batch_sizes.extend(part._batch_sizes)
                merged._latencies.extend(part._latencies)
                merged._finish_times.extend(part._finish_times)
        merged._finish_times = deque(sorted(merged._finish_times),
                                     maxlen=DRAIN_RESERVOIR)
        return merged
