"""Exception hierarchy for the DMDC reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A machine or scheme configuration is invalid or inconsistent."""


class TraceError(ReproError):
    """A trace or micro-op is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This is always a bug in the simulator (or a violated model invariant),
    never a property of the simulated program.
    """


class OrderingViolationMissed(SimulationError):
    """A true memory-ordering violation retired undetected.

    Raised by the ground-truth checker when a dependence-checking scheme
    lets a premature load commit without a replay.  Any scheme that raises
    this is unsound.
    """


class ServiceError(ReproError):
    """A simulation-service request could not be served.

    Subclasses map onto HTTP responses in :mod:`repro.service.server`:
    bad payloads become 400, saturation 429, draining/timeouts 503.
    """


class SanitizerError(SimulationError):
    """The shadow-oracle sanitizer found a defect in strict mode.

    Carries the offending :class:`repro.analysis.sanitizer.SanitizerReport`
    finding in its message; raised at the moment of detection (a missed
    violation or a failed invariant probe), independently of the built-in
    ground-truth checker.
    """
