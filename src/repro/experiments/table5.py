"""Table 5: false-replay breakdown under *local* DMDC.

Paper result: local DMDC reduces false replays from 168 to 134 per Minstr
(INT) and 35.4 to 23.7 (FP), mostly by mitigating merged-window (Y)
replays.  Thin wrapper over the Table 3 classifier with ``local=True``.
"""

from typing import Dict, Optional

from repro.experiments.table3 import plan_table3, run_table3
from repro.experiments.table3 import render as _render


def plan_table5(budget: Optional[int] = None, config=None):
    kwargs = {"local": True}
    if config is not None:
        kwargs["config"] = config
    return plan_table3(budget=budget, **kwargs)


def run_table5(budget: Optional[int] = None, config=None) -> Dict:
    kwargs = {"local": True}
    if config is not None:
        kwargs["config"] = config
    return run_table3(budget=budget, **kwargs)


def render(data: Dict) -> str:
    return _render(data)
