"""Ablation: checking-table size vs false replays (Section 6.2.2 claim).

The paper argues that with a 2K-entry table, hash conflicts cause only
11% (INT) / 26% (FP) of false replays, so growing the table has
diminishing returns — the timing approximation, not aliasing, dominates.
This sweep measures false replays and the hash-conflict share across
table sizes to verify the saturation.
"""

from typing import Dict, Optional

from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table

TABLE_SIZES = (256, 512, 1024, 2048, 4096, 8192)


def _sweep(sizes=TABLE_SIZES, config=CONFIG2) -> Dict:
    return {
        f"size:{size}": config.with_scheme(SchemeConfig(kind="dmdc", table_entries=size))
        for size in sizes
    }


def plan_ablation_table_size(budget: Optional[int] = None, sizes=TABLE_SIZES,
                             config=CONFIG2):
    return plan_suite_many(_sweep(sizes, config), budget=budget)


def run_ablation_table_size(budget: Optional[int] = None, sizes=TABLE_SIZES,
                            config=CONFIG2) -> Dict:
    """Sweep the checking-table size under global DMDC."""
    sweeps = run_suite_many(_sweep(sizes, config), budget=budget)
    rows = []
    for size in sizes:
        groups: Dict[str, Dict[str, list]] = {}
        for result in sweeps[f"size:{size}"].values():
            bucket = groups.setdefault(result.group, {"false": [], "hash": []})
            bucket["false"].append(result.false_replays_per_minstr)
            hash_part = (
                result.per_minstr("replay.false.hash.before")
                + result.per_minstr("replay.false.hash.X")
                + result.per_minstr("replay.false.hash.Y")
            )
            bucket["hash"].append(hash_part)
        for group, bucket in sorted(groups.items()):
            n = len(bucket["false"])
            total = sum(bucket["false"]) / n
            hash_rate = sum(bucket["hash"]) / n
            rows.append({
                "size": size,
                "group": group,
                "false_replays": total,
                "hash_replays": hash_rate,
                "hash_share": 100.0 * hash_rate / total if total else 0.0,
            })
    return {"experiment": "ablation_table_size", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["group"], r["size"],
            f"{r['false_replays']:.1f}",
            f"{r['hash_replays']:.1f}",
            f"{r['hash_share']:.0f}%",
        ]
        for r in sorted(data["rows"], key=lambda r: (r["group"], r["size"]))
    ]
    return format_table(
        ["group", "table entries", "false replays/Minstr",
         "hash-conflict replays/Minstr", "hash share"],
        table_rows,
        title="Ablation - checking-table size (diminishing returns past ~2K)",
    )
