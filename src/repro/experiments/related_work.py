"""Section 7 quantified: DMDC vs the related-work design space.

Runs the full suite under every checking design the paper discusses and
compares the cost of implementing the LQ's functionality:

* conventional associative LQ (baseline);
* YLA-filtered LQ (Section 3 alone);
* DMDC (the contribution);
* the age-hash table of Garg et al. [11] that DMDC improves upon;
* naive value-based checking of Cain & Lipasti [5] (no LQ, but every
  committed load re-reads the cache).

Expected shape: DMDC and value-based slash LQ-structure energy, but
value-based pays with memory bandwidth (its "LQ" energy is cache
re-accesses) and Garg pays with unfiltered table traffic and heavier
flush-from-store replays.
"""

from typing import Dict, Optional

from repro.energy.model import EnergyModel
from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table

SCHEMES = {
    "conventional": SchemeConfig(kind="conventional"),
    "yla": SchemeConfig(kind="yla", yla_registers=8),
    "dmdc": SchemeConfig(kind="dmdc"),
    "garg": SchemeConfig(kind="garg"),
    "value": SchemeConfig(kind="value"),
}


def _sweep(config=CONFIG2) -> Dict:
    return {name: config.with_scheme(scheme) for name, scheme in SCHEMES.items()}


def plan_related_work(budget: Optional[int] = None, config=CONFIG2):
    return plan_suite_many(_sweep(config), budget=budget)


def run_related_work(budget: Optional[int] = None, config=CONFIG2) -> Dict:
    """Compare every scheme on LQ energy, replays, and slowdown."""
    sweeps = run_suite_many(_sweep(config), budget=budget)
    model = EnergyModel(config)
    base_energy = {name: model.evaluate(r) for name, r in sweeps["conventional"].items()}
    rows = []
    for scheme_name in SCHEMES:
        groups: Dict[str, Dict[str, list]] = {}
        for wl_name, result in sweeps[scheme_name].items():
            energy = model.evaluate(result)
            base = base_energy[wl_name]
            base_run = sweeps["conventional"][wl_name]
            bucket = groups.setdefault(result.group, {
                "lq_rel": [], "total_rel": [], "slow": [], "replays": [],
                "reexec": [],
            })
            bucket["lq_rel"].append(100.0 * energy.lq / base.lq)
            bucket["total_rel"].append(100.0 * energy.total / base.total)
            bucket["slow"].append(100.0 * (result.cycles / base_run.cycles - 1))
            bucket["replays"].append(result.replays_per_minstr)
            bucket["reexec"].append(result.counters["dcache.reexecutions"])
        for group, bucket in sorted(groups.items()):
            n = len(bucket["lq_rel"])
            rows.append({
                "scheme": scheme_name,
                "group": group,
                "lq_energy_rel": sum(bucket["lq_rel"]) / n,
                "total_energy_rel": sum(bucket["total_rel"]) / n,
                "slowdown": sum(bucket["slow"]) / n,
                "replays_per_minstr": sum(bucket["replays"]) / n,
            })
    return {"experiment": "related_work", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["group"], r["scheme"],
            f"{r['lq_energy_rel']:.1f}%",
            f"{r['total_energy_rel']:.1f}%",
            f"{r['slowdown']:+.2f}%",
            f"{r['replays_per_minstr']:.0f}",
        ]
        for r in sorted(data["rows"], key=lambda r: (r["group"], r["scheme"]))
    ]
    return format_table(
        ["group", "scheme", "LQ energy (vs baseline)", "total energy",
         "slowdown", "replays/Minstr"],
        table_rows,
        title="Section 7 - DMDC vs related-work checking designs",
    )
