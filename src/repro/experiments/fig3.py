"""Figure 3: YLA filtering vs Bloom-filter (address-only) filtering.

Paper result: even a 1024-entry counting Bloom filter (H0 hash) filters
fewer LQ searches than a single YLA register, because the filter lacks
age information -- an older issued load to an aliasing address defeats it.
"""

from typing import Dict, List, Optional

from repro.experiments.common import group_means, plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table

BLOOM_SIZES = (32, 64, 128, 256, 512, 1024)
YLA_COUNTS = (1, 8)


def _sweep(bloom_sizes=BLOOM_SIZES) -> Dict:
    configs = {}
    for size in bloom_sizes:
        configs[f"bf:{size}"] = CONFIG2.with_scheme(
            SchemeConfig(kind="bloom", bloom_entries=size)
        )
    for n in YLA_COUNTS:
        configs[f"yla:{n}"] = CONFIG2.with_scheme(
            SchemeConfig(kind="yla", yla_registers=n)
        )
    return configs


def plan_fig3(budget: Optional[int] = None, bloom_sizes=BLOOM_SIZES):
    return plan_suite_many(_sweep(bloom_sizes), budget=budget)


def run_fig3(budget: Optional[int] = None, bloom_sizes=BLOOM_SIZES) -> Dict:
    """Sweep Bloom-filter sizes against 1- and 8-register YLA filtering."""
    sweeps = run_suite_many(_sweep(bloom_sizes), budget=budget)
    rows: List[Dict] = []
    for key, results in sweeps.items():
        kind, param = key.split(":")
        summary = group_means(results, lambda r: 100.0 * r.safe_store_fraction)
        for group, stats in summary.items():
            rows.append({
                "filter": "bloom" if kind == "bf" else "yla",
                "size": int(param),
                "group": group,
                "filtered_mean": stats["mean"],
                "filtered_min": stats["min"],
                "filtered_max": stats["max"],
            })
    return {"experiment": "fig3", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            row["group"],
            row["filter"],
            row["size"],
            f"{row['filtered_mean']:.1f}%",
            f"{row['filtered_min']:.1f}%",
            f"{row['filtered_max']:.1f}%",
        ]
        for row in sorted(data["rows"], key=lambda r: (r["group"], r["filter"], r["size"]))
    ]
    return format_table(
        ["group", "filter", "size/registers", "filtered(mean)", "min", "max"],
        table_rows,
        title="Figure 3 - YLA vs Bloom-filter LQ-search filtering",
    )
