"""Table 4: checking-window statistics under *local* DMDC.

Paper result: local windows are 13-25% shorter than global ones (25.3 vs
33.6 instructions for INT, 28.9 vs 33.0 for FP) and contain
proportionally fewer loads; the safe-load share inside windows shrinks
faster.  Thin wrapper over the Table 2 collector with ``local=True``.
"""

from typing import Dict, Optional

from repro.experiments.table2 import plan_table2, run_table2
from repro.experiments.table2 import render as _render


def plan_table4(budget: Optional[int] = None, config=None):
    kwargs = {"local": True}
    if config is not None:
        kwargs["config"] = config
    return plan_table2(budget=budget, **kwargs)


def run_table4(budget: Optional[int] = None, config=None) -> Dict:
    kwargs = {"local": True}
    if config is not None:
        kwargs["config"] = config
    return run_table2(budget=budget, **kwargs)


def render(data: Dict) -> str:
    return _render(data)
