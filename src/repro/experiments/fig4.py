"""Figure 4: DMDC main results across the three machine configurations.

Paper result: replacing the associative LQ with DMDC saves ~95-97% of LQ
energy; average slowdown ~0.3% (occasionally a speedup in FP codes); net
processor-wide energy savings grow from ~3% (config1) to ~8% (config3) as
the LQ's share of core energy grows.
"""

from typing import Dict, List, Optional

from repro.energy.model import EnergyModel
from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG1, CONFIG2, CONFIG3, SchemeConfig
from repro.stats.report import format_table

CONFIG_SET = {"config1": CONFIG1, "config2": CONFIG2, "config3": CONFIG3}


def _sweep(configs: Optional[Dict] = None) -> Dict:
    configs = configs if configs is not None else CONFIG_SET
    sweep_configs = {}
    for cname, config in configs.items():
        sweep_configs[f"{cname}:base"] = config
        sweep_configs[f"{cname}:dmdc"] = config.with_scheme(SchemeConfig(kind="dmdc"))
    return sweep_configs


def plan_fig4(budget: Optional[int] = None, configs: Optional[Dict] = None):
    return plan_suite_many(_sweep(configs), budget=budget)


def run_fig4(budget: Optional[int] = None, configs: Optional[Dict] = None) -> Dict:
    """Baseline vs global DMDC on each configuration, full suite."""
    configs = configs if configs is not None else CONFIG_SET
    sweeps = run_suite_many(_sweep(configs), budget=budget)
    rows: List[Dict] = []
    for cname, config in configs.items():
        model = EnergyModel(config)
        groups = {"INT": {"lq": [], "total": [], "slow": []},
                  "FP": {"lq": [], "total": [], "slow": []}}
        for name, base in sweeps[f"{cname}:base"].items():
            dmdc = sweeps[f"{cname}:dmdc"][name]
            e_base = model.evaluate(base)
            e_dmdc = model.evaluate(dmdc)
            bucket = groups[base.group]
            bucket["lq"].append(100.0 * (1 - e_dmdc.lq / e_base.lq))
            bucket["total"].append(100.0 * (1 - e_dmdc.total / e_base.total))
            bucket["slow"].append(100.0 * (dmdc.cycles / base.cycles - 1))
        for group, bucket in groups.items():
            if not bucket["lq"]:
                continue
            n = len(bucket["lq"])
            rows.append({
                "config": cname,
                "group": group,
                "lq_savings_mean": sum(bucket["lq"]) / n,
                "lq_savings_min": min(bucket["lq"]),
                "slowdown_mean": sum(bucket["slow"]) / n,
                "slowdown_min": min(bucket["slow"]),
                "slowdown_max": max(bucket["slow"]),
                "total_savings_mean": sum(bucket["total"]) / n,
                "total_savings_min": min(bucket["total"]),
                "total_savings_max": max(bucket["total"]),
            })
    return {"experiment": "fig4", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["config"],
            r["group"],
            f"{r['lq_savings_mean']:.1f}%",
            f"{r['slowdown_mean']:+.2f}%",
            f"[{r['slowdown_min']:+.2f}%, {r['slowdown_max']:+.2f}%]",
            f"{r['total_savings_mean']:.1f}%",
            f"[{r['total_savings_min']:.1f}%, {r['total_savings_max']:.1f}%]",
        ]
        for r in sorted(data["rows"], key=lambda r: (r["config"], r["group"]))
    ]
    return format_table(
        ["config", "group", "LQ savings", "slowdown", "slowdown range",
         "net savings", "net range"],
        table_rows,
        title="Figure 4 - DMDC: LQ energy savings, slowdown, processor-wide savings",
    )
