"""Table 2 and surrounding Section 6.2.2 statistics: checking windows.

Paper result (global DMDC, config2): a checking window spans ~33
instructions, contains ~10 loads of which ~3.6 (INT) / 4.1 (FP) are safe;
the processor spends ~10% (INT) / ~2.5% (FP) of cycles in checking mode;
~57% (INT) / 63% (FP) of windows hold a single unsafe store; overall 81%
(INT) / 94% (FP) of loads are safe.
"""

from typing import Dict, Optional

from repro.experiments.common import plan_suite, run_suite
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table


def plan_table2(budget: Optional[int] = None, local: bool = False, config=CONFIG2):
    scheme = SchemeConfig(kind="dmdc", local=local)
    return plan_suite(config.with_scheme(scheme), budget=budget)


def run_table2(budget: Optional[int] = None, local: bool = False, config=CONFIG2) -> Dict:
    """Measure checking-window shape under DMDC on the full suite."""
    scheme = SchemeConfig(kind="dmdc", local=local)
    results = run_suite(config.with_scheme(scheme), budget=budget)
    groups: Dict[str, Dict[str, list]] = {}
    for result in results.values():
        bucket = groups.setdefault(result.group, {
            "instrs": [], "loads": [], "safe_loads": [],
            "checking": [], "single_store": [], "safe_load_frac": [],
        })
        if result.window_instrs.count:
            bucket["instrs"].append(result.mean_window_instrs)
            bucket["loads"].append(result.mean_window_loads)
            bucket["safe_loads"].append(result.mean_window_safe_loads)
            bucket["single_store"].append(100.0 * result.single_unsafe_store_window_fraction)
        bucket["checking"].append(100.0 * result.checking_cycle_fraction)
        bucket["safe_load_frac"].append(100.0 * result.safe_load_fraction)
    rows = []
    for group, bucket in sorted(groups.items()):
        def avg(key):
            vals = bucket[key]
            return sum(vals) / len(vals) if vals else 0.0
        rows.append({
            "group": group,
            "instructions": avg("instrs"),
            "loads": avg("loads"),
            "safe_loads": avg("safe_loads"),
            "checking_cycles_pct": avg("checking"),
            "single_unsafe_store_pct": avg("single_store"),
            "overall_safe_loads_pct": avg("safe_load_frac"),
        })
    return {"experiment": "table4" if local else "table2", "local": local, "rows": rows}


def render(data: Dict) -> str:
    which = "Table 4 (local DMDC)" if data["local"] else "Table 2 (global DMDC)"
    table_rows = [
        [
            r["group"],
            f"{r['instructions']:.1f}",
            f"{r['loads']:.1f}",
            f"{r['safe_loads']:.2f}",
            f"{r['checking_cycles_pct']:.1f}%",
            f"{r['single_unsafe_store_pct']:.0f}%",
            f"{r['overall_safe_loads_pct']:.0f}%",
        ]
        for r in data["rows"]
    ]
    return format_table(
        ["group", "instructions", "loads", "safe loads", "% cycles checking",
         "% single-store windows", "% safe loads overall"],
        table_rows,
        title=f"{which} - checking-window statistics",
    )
