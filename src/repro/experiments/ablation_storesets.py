"""Extension: store-set dependence prediction on top of DMDC.

The paper argues prediction is unnecessary at SPEC violation rates ("true
store-load replays are very rare ... prediction and replay prevention
mechanisms seem unnecessary").  This experiment quantifies that claim by
running DMDC with and without a Chrysos-Emer store-set predictor on (a)
the normal suite and (b) an engineered alias-heavy stress workload:
prediction should be a wash on (a) and suppress most true replays on (b).
"""

from typing import Dict, Optional

from repro.experiments.common import plan_point, plan_suite_many, run_point, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.sim.runner import instruction_budget
from repro.stats.report import format_table
from repro.workloads import SyntheticWorkload, WorkloadSpec


def _stress_workload() -> SyntheticWorkload:
    return SyntheticWorkload(WorkloadSpec(
        name="alias-stress", conflict_per_kinstr=5.0,
        store_addr_dep_load=0.2, rmw_fraction=0.15, seed=41,
    ))


_VARIANTS = (("off", SchemeConfig(kind="dmdc")),
             ("on", SchemeConfig(kind="dmdc", store_sets=True)))


def _sweep(config=CONFIG2) -> Dict:
    return {variant: config.with_scheme(scheme) for variant, scheme in _VARIANTS}


def plan_ablation_storesets(budget: Optional[int] = None, config=CONFIG2):
    budget = budget if budget is not None else instruction_budget()
    requests = plan_suite_many(_sweep(config), budget=budget)
    stress = _stress_workload()
    for _, scheme in _VARIANTS:
        requests.append(plan_point(config.with_scheme(scheme), stress, budget=budget))
    return requests


def run_ablation_storesets(budget: Optional[int] = None, config=CONFIG2) -> Dict:
    """DMDC with/without store-set prediction, suite + stress workload."""
    budget = budget if budget is not None else instruction_budget()
    sweeps = run_suite_many(_sweep(config), budget=budget)
    rows = []
    for variant in ("off", "on"):
        groups: Dict[str, Dict[str, list]] = {}
        for result in sweeps[variant].values():
            bucket = groups.setdefault(result.group, {"true": [], "slow": []})
            bucket["true"].append(result.per_minstr("replay.true"))
        for group, bucket in sorted(groups.items()):
            n = len(bucket["true"])
            rows.append({
                "workload": f"suite-{group}",
                "store_sets": variant,
                "true_replays": sum(bucket["true"]) / n,
            })
    # Engineered stress case.
    stress = _stress_workload()
    for variant, scheme in _VARIANTS:
        result = run_point(config.with_scheme(scheme), stress, budget=budget)
        rows.append({
            "workload": "alias-stress",
            "store_sets": variant,
            "true_replays": result.per_minstr("replay.true"),
        })
    return {"experiment": "ablation_storesets", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [r["workload"], r["store_sets"], f"{r['true_replays']:.1f}"]
        for r in sorted(data["rows"], key=lambda r: (r["workload"], r["store_sets"]))
    ]
    return format_table(
        ["workload", "store-set prediction", "true replays/Minstr"],
        table_rows,
        title="Extension - store-set prediction vs true replays under DMDC",
    )
