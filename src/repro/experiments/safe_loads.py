"""Section 6.2.2 safe-load claims.

Paper result: 81% (INT) / 94% (FP) of loads are safe; without the
safe-load circuit false replays roughly double for INT applications
(average reduction 52%, up to 97%) and drop ~20% for FP.
"""

from typing import Dict, Optional

from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table


def _sweep(config=CONFIG2) -> Dict:
    return {
        "with": config.with_scheme(SchemeConfig(kind="dmdc", safe_loads=True)),
        "without": config.with_scheme(SchemeConfig(kind="dmdc", safe_loads=False)),
    }


def plan_safe_loads(budget: Optional[int] = None, config=CONFIG2):
    return plan_suite_many(_sweep(config), budget=budget)


def run_safe_loads(budget: Optional[int] = None, config=CONFIG2) -> Dict:
    """Global DMDC with and without the safe-load optimisation."""
    sweeps = run_suite_many(_sweep(config), budget=budget)
    groups: Dict[str, Dict[str, list]] = {}
    for name, with_safe in sweeps["with"].items():
        without = sweeps["without"][name]
        bucket = groups.setdefault(with_safe.group, {
            "safe_frac": [], "false_with": [], "false_without": [],
        })
        bucket["safe_frac"].append(100.0 * with_safe.safe_load_fraction)
        bucket["false_with"].append(with_safe.false_replays_per_minstr)
        bucket["false_without"].append(without.false_replays_per_minstr)
    rows = []
    for group, bucket in sorted(groups.items()):
        n = len(bucket["safe_frac"])
        fw = sum(bucket["false_with"]) / n
        fo = sum(bucket["false_without"]) / n
        rows.append({
            "group": group,
            "safe_load_pct": sum(bucket["safe_frac"]) / n,
            "false_with": fw,
            "false_without": fo,
            "reduction_pct": 100.0 * (1 - fw / fo) if fo else 0.0,
        })
    return {"experiment": "safe_loads", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["group"],
            f"{r['safe_load_pct']:.0f}%",
            f"{r['false_with']:.1f}",
            f"{r['false_without']:.1f}",
            f"{r['reduction_pct']:.0f}%",
        ]
        for r in data["rows"]
    ]
    return format_table(
        ["group", "% safe loads", "false replays/Minstr (with)",
         "false replays/Minstr (without)", "reduction from safe loads"],
        table_rows,
        title="Section 6.2.2 - effect of safe-load detection",
    )
