"""One experiment module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning a plain dict of rows
(JSON-friendly) and a ``render(data) -> str`` producing the same table the
paper prints.  The benchmark harness under ``benchmarks/`` is a thin
wrapper around these functions; EXPERIMENTS.md records paper-vs-measured
for each one.
"""

from repro.experiments.common import run_suite, suite_workloads, group_means

__all__ = ["run_suite", "suite_workloads", "group_means"]
