"""One experiment module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning a plain dict of rows
(JSON-friendly) and a ``render(data) -> str`` producing the same table the
paper prints.  The benchmark harness under ``benchmarks/`` is a thin
wrapper around these functions; EXPERIMENTS.md records paper-vs-measured
for each one.
"""

from repro.experiments.common import (
    group_means,
    plan_suite,
    plan_suite_many,
    run_point,
    run_requests,
    run_suite,
    run_suite_many,
    suite_workloads,
)

__all__ = [
    "group_means",
    "plan_suite",
    "plan_suite_many",
    "run_point",
    "run_requests",
    "run_suite",
    "run_suite_many",
    "suite_workloads",
]
