"""Section 6.2.3: associative checking queue vs hash table.

Paper result: a 2K-entry checking table produces roughly as many replays
as a 16-entry associative checking queue on average (individual
applications diverge wildly).  The queue trades hash-conflict replays for
overflow replays.
"""

from typing import Dict, Optional

from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table

QUEUE_SIZES = (4, 8, 16, 32)


def _sweep(queue_sizes=QUEUE_SIZES, config=CONFIG2) -> Dict:
    sweep = {"table": config.with_scheme(SchemeConfig(kind="dmdc"))}
    for size in queue_sizes:
        sweep[f"queue:{size}"] = config.with_scheme(
            SchemeConfig(kind="dmdc", checking_queue_entries=size)
        )
    return sweep


def plan_checking_queue(budget: Optional[int] = None, queue_sizes=QUEUE_SIZES,
                        config=CONFIG2):
    return plan_suite_many(_sweep(queue_sizes, config), budget=budget)


def run_checking_queue(budget: Optional[int] = None, queue_sizes=QUEUE_SIZES,
                       config=CONFIG2) -> Dict:
    """Replay rates: hash table (2K) vs associative queues of several sizes."""
    sweeps = run_suite_many(_sweep(queue_sizes, config), budget=budget)
    rows = []
    for key, results in sweeps.items():
        groups: Dict[str, list] = {}
        overflow: Dict[str, list] = {}
        for result in results.values():
            groups.setdefault(result.group, []).append(result.false_replays_per_minstr)
            overflow.setdefault(result.group, []).append(result.per_minstr("replay.overflow"))
        for group in sorted(groups):
            vals = groups[group]
            rows.append({
                "backend": key,
                "group": group,
                "false_replays": sum(vals) / len(vals),
                "overflow_replays": sum(overflow[group]) / len(overflow[group]),
            })
    return {"experiment": "checking_queue", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["backend"], r["group"],
            f"{r['false_replays']:.1f}", f"{r['overflow_replays']:.1f}",
        ]
        for r in sorted(data["rows"], key=lambda r: (r["group"], r["backend"]))
    ]
    return format_table(
        ["backend", "group", "false replays/Minstr", "overflow replays/Minstr"],
        table_rows,
        title="Section 6.2.3 - checking table vs associative checking queue",
    )
