"""Section 3 extension: age-based filtering for the *store* queue.

Paper result: about 20% of loads are older than every in-flight store and
can skip the SQ forwarding search using a single oldest-store-age
register.  (The paper measures the opportunity but leaves the design to
future work; we implement the filter behind ``SchemeConfig.sq_filter``.)
"""

from typing import Dict, Optional

from repro.experiments.common import plan_suite, run_suite
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table


def plan_sq_filter(budget: Optional[int] = None, config=CONFIG2):
    cfg = config.with_scheme(SchemeConfig(kind="dmdc", sq_filter=True))
    return plan_suite(cfg, budget=budget)


def run_sq_filter(budget: Optional[int] = None, config=CONFIG2) -> Dict:
    """Measure the fraction of SQ searches removed by age filtering."""
    cfg = config.with_scheme(SchemeConfig(kind="dmdc", sq_filter=True))
    results = run_suite(cfg, budget=budget)
    groups: Dict[str, list] = {}
    for result in results.values():
        filtered = result.counters["sq.searches_filtered_age"]
        total = filtered + result.counters["sq.searches"]
        if total:
            groups.setdefault(result.group, []).append(100.0 * filtered / total)
    rows = [
        {
            "group": group,
            "filtered_mean": sum(vals) / len(vals),
            "filtered_min": min(vals),
            "filtered_max": max(vals),
        }
        for group, vals in sorted(groups.items())
    ]
    return {"experiment": "sq_filter", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["group"],
            f"{r['filtered_mean']:.1f}%",
            f"{r['filtered_min']:.1f}%",
            f"{r['filtered_max']:.1f}%",
        ]
        for r in data["rows"]
    ]
    return format_table(
        ["group", "SQ searches filtered (mean)", "min", "max"],
        table_rows,
        title="Section 3 - SQ-search filtering by an oldest-store-age register",
    )
