"""Figure 2: LQ searches filtered vs number and interleaving of YLA registers.

Paper result: with one YLA register 71% (INT) / 80% (FP) of stores are
safe; with 8 quad-word-interleaved registers 95-98%.  Quad-word
interleaving beats cache-line interleaving (16 line-interleaved registers
roughly match 4 quad-word ones).
"""

from typing import Dict, List, Optional

from repro.experiments.common import group_means, plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table

REGISTER_COUNTS = (1, 2, 4, 8, 16)
GRANULARITIES = {"quad-word": 8, "cache-line": 128}


def _sweep(register_counts=REGISTER_COUNTS) -> Dict:
    configs = {}
    for label, gran in GRANULARITIES.items():
        for n in register_counts:
            scheme = SchemeConfig(kind="yla", yla_registers=n, yla_granularity=gran)
            configs[f"{label}:{n}"] = CONFIG2.with_scheme(scheme)
    return configs


def plan_fig2(budget: Optional[int] = None, register_counts=REGISTER_COUNTS):
    return plan_suite_many(_sweep(register_counts), budget=budget)


def run_fig2(budget: Optional[int] = None, register_counts=REGISTER_COUNTS) -> Dict:
    """Sweep YLA register count x interleaving over the full suite."""
    sweeps = run_suite_many(_sweep(register_counts), budget=budget)
    rows: List[Dict] = []
    for label, gran in GRANULARITIES.items():
        for n in register_counts:
            summary = group_means(
                sweeps[f"{label}:{n}"], lambda r: 100.0 * r.safe_store_fraction
            )
            for group, stats in summary.items():
                rows.append({
                    "interleaving": label,
                    "registers": n,
                    "group": group,
                    "filtered_mean": stats["mean"],
                    "filtered_min": stats["min"],
                    "filtered_max": stats["max"],
                })
    return {"experiment": "fig2", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            row["group"],
            row["interleaving"],
            row["registers"],
            f"{row['filtered_mean']:.1f}%",
            f"{row['filtered_min']:.1f}%",
            f"{row['filtered_max']:.1f}%",
        ]
        for row in sorted(
            data["rows"], key=lambda r: (r["group"], r["interleaving"], r["registers"])
        )
    ]
    return format_table(
        ["group", "interleaving", "#YLA", "filtered(mean)", "min", "max"],
        table_rows,
        title="Figure 2 - percentage of LQ searches filtered by YLA registers",
    )
