"""Ablation: wrong-path load corruption of the YLA registers (Section 3).

Wrong-path loads push YLA registers forward; the paper's remedy resets
each register to the branch's age at recovery.  This ablation sweeps the
wrong-path intensity (mean loads issued per misprediction shadow) and
reports the YLA filtering rate: corruption should cost filtering
effectiveness monotonically, and the effect should be larger for INT
codes (more mispredictions) — evidence that the reset remedy matters.
"""

from typing import Dict, Optional

from repro.experiments.common import group_means, plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table

INTENSITIES = (0.0, 1.0, 4.0, 8.0)


def _sweep(intensities=INTENSITIES, config=CONFIG2) -> Dict:
    scheme = SchemeConfig(kind="yla", yla_registers=8)
    sweep = {}
    for mean in intensities:
        cfg = config.with_scheme(scheme).with_overrides(
            wrongpath_loads=mean > 0, wrongpath_mean_loads=max(mean, 0.1)
        )
        sweep[f"wp:{mean}"] = cfg
    return sweep


def plan_ablation_wrongpath(budget: Optional[int] = None, intensities=INTENSITIES,
                            config=CONFIG2):
    return plan_suite_many(_sweep(intensities, config), budget=budget)


def run_ablation_wrongpath(budget: Optional[int] = None, intensities=INTENSITIES,
                           config=CONFIG2) -> Dict:
    """Sweep wrong-path load intensity under 8-register YLA filtering."""
    sweeps = run_suite_many(_sweep(intensities, config), budget=budget)
    rows = []
    for mean in intensities:
        summary = group_means(
            sweeps[f"wp:{mean}"], lambda r: 100.0 * r.safe_store_fraction
        )
        for group, stats in sorted(summary.items()):
            rows.append({
                "intensity": mean,
                "group": group,
                "filtered_mean": stats["mean"],
                "filtered_min": stats["min"],
            })
    return {"experiment": "ablation_wrongpath", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["group"], f"{r['intensity']:g}",
            f"{r['filtered_mean']:.1f}%", f"{r['filtered_min']:.1f}%",
        ]
        for r in sorted(data["rows"], key=lambda r: (r["group"], r["intensity"]))
    ]
    return format_table(
        ["group", "wrong-path loads/mispredict", "filtered (mean)", "worst workload"],
        table_rows,
        title="Ablation - YLA corruption by wrong-path loads (with reset remedy)",
    )
