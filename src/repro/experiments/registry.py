"""Registry mapping experiment ids to their plan/run/render functions."""

from typing import Callable, Dict, NamedTuple, Optional

from repro.experiments import (
    ablation_storesets,
    ablation_table_size,
    ablation_wrongpath,
    checking_queue,
    fig2,
    fig3,
    fig4,
    fig5,
    related_work,
    safe_loads,
    sq_filter,
    table2,
    table3,
    table4,
    table5,
    table6,
    yla_energy,
)


class Experiment(NamedTuple):
    """One reproducible paper artifact.

    ``plan`` returns the experiment's design points as
    :class:`~repro.exec.RunRequest`s without running anything, so the
    execution engine can dedupe and batch points across experiments
    (``repro experiment --all``).
    """

    id: str
    paper_artifact: str
    run: Callable
    render: Callable
    plan: Optional[Callable] = None


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment("fig2", "Figure 2", fig2.run_fig2, fig2.render, fig2.plan_fig2),
        Experiment("fig3", "Figure 3", fig3.run_fig3, fig3.render, fig3.plan_fig3),
        Experiment("yla_energy", "Section 6.1 energy", yla_energy.run_yla_energy,
                   yla_energy.render, yla_energy.plan_yla_energy),
        Experiment("fig4", "Figure 4", fig4.run_fig4, fig4.render, fig4.plan_fig4),
        Experiment("table2", "Table 2", table2.run_table2, table2.render, table2.plan_table2),
        Experiment("table3", "Table 3", table3.run_table3, table3.render, table3.plan_table3),
        Experiment("table4", "Table 4", table4.run_table4, table4.render, table4.plan_table4),
        Experiment("table5", "Table 5", table5.run_table5, table5.render, table5.plan_table5),
        Experiment("fig5", "Figure 5", fig5.run_fig5, fig5.render, fig5.plan_fig5),
        Experiment("table6", "Table 6", table6.run_table6, table6.render, table6.plan_table6),
        Experiment("safe_loads", "Section 6.2.2 safe loads", safe_loads.run_safe_loads,
                   safe_loads.render, safe_loads.plan_safe_loads),
        Experiment("checking_queue", "Section 6.2.3 checking queue",
                   checking_queue.run_checking_queue, checking_queue.render,
                   checking_queue.plan_checking_queue),
        Experiment("sq_filter", "Section 3 SQ filtering", sq_filter.run_sq_filter,
                   sq_filter.render, sq_filter.plan_sq_filter),
        Experiment("ablation_table_size", "Ablation: checking-table size",
                   ablation_table_size.run_ablation_table_size, ablation_table_size.render,
                   ablation_table_size.plan_ablation_table_size),
        Experiment("ablation_wrongpath", "Ablation: wrong-path YLA corruption",
                   ablation_wrongpath.run_ablation_wrongpath, ablation_wrongpath.render,
                   ablation_wrongpath.plan_ablation_wrongpath),
        Experiment("ablation_storesets", "Extension: store-set prediction",
                   ablation_storesets.run_ablation_storesets, ablation_storesets.render,
                   ablation_storesets.plan_ablation_storesets),
        Experiment("related_work", "Section 7 comparison",
                   related_work.run_related_work, related_work.render,
                   related_work.plan_related_work),
    ]
}


def run_experiment(exp_id: str, **kwargs):
    """Run one experiment by id and return (data, rendered_text)."""
    exp = EXPERIMENTS[exp_id]
    data = exp.run(**kwargs)
    return data, exp.render(data)
