"""Table 6: the impact of external invalidations on coherent DMDC.

Paper result (config2, coherent DMDC, injected random invalidations):

=====================================  =====  =====  =====  =====
invalidations per 1000 cycles              0      1     10    100
% cycles in checking mode (INT)         10.0   10.3   12.2   23.2
relative checking-window size (INT)      1.0   1.01   1.11   1.37
relative false-replay rate (INT)         1.0    1.1   1.47   4.59
slowdown % (INT)                        0.31   0.34   0.46   1.36
=====================================  =====  =====  =====  =====

(FP analogous, with lower absolute checking time.)  Up to ~10/1000 cycles
the design absorbs the traffic; at 1 per 10 cycles it shows stress but
stays near 1% slowdown.
"""

from typing import Dict, List, Optional

from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table

INVALIDATION_RATES = (0.0, 1.0, 10.0, 100.0)


def _sweep(rates=INVALIDATION_RATES, config=CONFIG2) -> Dict:
    coherent = SchemeConfig(kind="dmdc", coherence=True)
    sweep = {"base": config}
    for rate in rates:
        sweep[f"inv:{rate}"] = config.with_scheme(coherent).with_overrides(
            invalidation_rate=rate
        )
    return sweep


def plan_table6(budget: Optional[int] = None, rates=INVALIDATION_RATES, config=CONFIG2):
    return plan_suite_many(_sweep(rates, config), budget=budget)


def run_table6(budget: Optional[int] = None, rates=INVALIDATION_RATES, config=CONFIG2) -> Dict:
    """Sweep injected invalidation rates under coherent DMDC."""
    sweeps = run_suite_many(_sweep(rates, config), budget=budget)
    rows: List[Dict] = []
    per_group_ref: Dict[str, Dict[str, float]] = {}
    for rate in rates:
        groups: Dict[str, Dict[str, list]] = {}
        for name, base in sweeps["base"].items():
            r = sweeps[f"inv:{rate}"][name]
            bucket = groups.setdefault(base.group, {
                "checking": [], "window": [], "false": [], "slow": [],
            })
            bucket["checking"].append(100.0 * r.checking_cycle_fraction)
            bucket["window"].append(r.mean_window_instrs)
            bucket["false"].append(r.false_replays_per_minstr)
            bucket["slow"].append(100.0 * (r.cycles / base.cycles - 1))
        for group, bucket in sorted(groups.items()):
            def avg(key):
                vals = bucket[key]
                return sum(vals) / len(vals) if vals else 0.0
            stats = {
                "checking": avg("checking"),
                "window": avg("window"),
                "false": avg("false"),
                "slow": avg("slow"),
            }
            ref = per_group_ref.setdefault(group, stats)
            rows.append({
                "group": group,
                "rate": rate,
                "checking_pct": stats["checking"],
                "rel_window": stats["window"] / ref["window"] if ref["window"] else 0.0,
                "rel_false_replays": stats["false"] / ref["false"] if ref["false"] else
                (1.0 if rate == rates[0] else float("inf")),
                "slowdown": stats["slow"],
            })
    return {"experiment": "table6", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["group"],
            f"{r['rate']:g}",
            f"{r['checking_pct']:.1f}%",
            f"{r['rel_window']:.2f}",
            f"{r['rel_false_replays']:.2f}",
            f"{r['slowdown']:+.2f}%",
        ]
        for r in sorted(data["rows"], key=lambda r: (r["group"], r["rate"]))
    ]
    return format_table(
        ["group", "inv/1000cyc", "% cycles checking", "rel. window size",
         "rel. false replays", "slowdown"],
        table_rows,
        title="Table 6 - coherent DMDC under injected invalidations",
    )
