"""Section 6.1 energy claim: YLA filtering alone saves ~32.4% of LQ energy
(~1.7% processor-wide) with no performance impact."""

from typing import Dict, Optional

from repro.energy.model import EnergyModel
from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG2, SchemeConfig
from repro.stats.report import format_table


def _sweep() -> Dict:
    return {
        "baseline": CONFIG2,
        "yla": CONFIG2.with_scheme(SchemeConfig(kind="yla", yla_registers=8)),
    }


def plan_yla_energy(budget: Optional[int] = None):
    return plan_suite_many(_sweep(), budget=budget)


def run_yla_energy(budget: Optional[int] = None) -> Dict:
    """Baseline vs 8-register YLA filtering on config2, full suite."""
    sweeps = run_suite_many(_sweep(), budget=budget)
    model = EnergyModel(CONFIG2)
    rows = []
    groups = {"INT": {"lq": [], "total": [], "slow": []},
              "FP": {"lq": [], "total": [], "slow": []}}
    for name, base in sweeps["baseline"].items():
        filt = sweeps["yla"][name]
        e_base = model.evaluate(base)
        e_filt = model.evaluate(filt)
        bucket = groups[base.group]
        bucket["lq"].append(100.0 * (1 - e_filt.lq / e_base.lq))
        bucket["total"].append(100.0 * (1 - e_filt.total / e_base.total))
        bucket["slow"].append(100.0 * (filt.cycles / base.cycles - 1))
    for group, bucket in groups.items():
        if not bucket["lq"]:
            continue
        n = len(bucket["lq"])
        rows.append({
            "group": group,
            "lq_savings": sum(bucket["lq"]) / n,
            "total_savings": sum(bucket["total"]) / n,
            "slowdown": sum(bucket["slow"]) / n,
        })
    return {"experiment": "yla_energy", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [r["group"], f"{r['lq_savings']:.1f}%", f"{r['total_savings']:.2f}%", f"{r['slowdown']:+.2f}%"]
        for r in data["rows"]
    ]
    return format_table(
        ["group", "LQ energy savings", "processor-wide savings", "slowdown"],
        table_rows,
        title="Section 6.1 - energy effect of 8-register YLA filtering alone",
    )
