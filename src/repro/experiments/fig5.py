"""Figure 5: slowdown of global vs local DMDC across configurations.

Paper result: both variants stay within ~0.5% average slowdown; the local
version's *worst-case* per-application slowdown is noticeably lower,
especially for FP applications.
"""

from typing import Dict, List, Optional

from repro.experiments.common import plan_suite_many, run_suite_many
from repro.sim.config import CONFIG1, CONFIG2, CONFIG3, SchemeConfig
from repro.stats.report import format_table

CONFIG_SET = {"config1": CONFIG1, "config2": CONFIG2, "config3": CONFIG3}


def _sweep(configs: Optional[Dict] = None) -> Dict:
    configs = configs if configs is not None else CONFIG_SET
    sweep = {}
    for cname, config in configs.items():
        sweep[f"{cname}:base"] = config
        sweep[f"{cname}:global"] = config.with_scheme(SchemeConfig(kind="dmdc", local=False))
        sweep[f"{cname}:local"] = config.with_scheme(SchemeConfig(kind="dmdc", local=True))
    return sweep


def plan_fig5(budget: Optional[int] = None, configs: Optional[Dict] = None):
    return plan_suite_many(_sweep(configs), budget=budget)


def run_fig5(budget: Optional[int] = None, configs: Optional[Dict] = None) -> Dict:
    """Baseline vs global vs local DMDC on each configuration."""
    configs = configs if configs is not None else CONFIG_SET
    sweeps = run_suite_many(_sweep(configs), budget=budget)
    rows: List[Dict] = []
    for cname in configs:
        for variant in ("global", "local"):
            groups = {"INT": [], "FP": []}
            for name, base in sweeps[f"{cname}:base"].items():
                dmdc = sweeps[f"{cname}:{variant}"][name]
                groups[base.group].append(100.0 * (dmdc.cycles / base.cycles - 1))
            for group, vals in groups.items():
                if not vals:
                    continue
                rows.append({
                    "config": cname,
                    "variant": variant,
                    "group": group,
                    "slowdown_mean": sum(vals) / len(vals),
                    "slowdown_worst": max(vals),
                })
    return {"experiment": "fig5", "rows": rows}


def render(data: Dict) -> str:
    table_rows = [
        [
            r["config"], r["group"], r["variant"],
            f"{r['slowdown_mean']:+.2f}%", f"{r['slowdown_worst']:+.2f}%",
        ]
        for r in sorted(data["rows"], key=lambda r: (r["config"], r["group"], r["variant"]))
    ]
    return format_table(
        ["config", "group", "variant", "mean slowdown", "worst slowdown"],
        table_rows,
        title="Figure 5 - global vs local DMDC slowdown",
    )
