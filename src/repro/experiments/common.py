"""Shared experiment machinery: suite sweeps with optional parallelism.

Experiments run the whole 26-workload suite for each design point.  Runs
are independent, so they fan out across processes by default; set
``REPRO_PARALLEL=0`` to force serial execution (useful under debuggers)
and ``REPRO_WORKLOADS_PER_GROUP=n`` to sweep a subset while iterating.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.config import MachineConfig
from repro.sim.result import SimulationResult
from repro.sim.runner import instruction_budget, run_workload
from repro.workloads import FP_WORKLOADS, INT_WORKLOADS, get_workload


def suite_workloads() -> List[str]:
    """Workload names for experiments (full suite unless subset requested)."""
    per_group = os.environ.get("REPRO_WORKLOADS_PER_GROUP")
    if per_group:
        n = max(1, int(per_group))
        return INT_WORKLOADS[:n] + FP_WORKLOADS[:n]
    return INT_WORKLOADS + FP_WORKLOADS


def _run_one(args: Tuple[MachineConfig, str, int, int]) -> SimulationResult:
    config, name, budget, seed = args
    return run_workload(config, get_workload(name), max_instructions=budget, seed=seed)


def _parallelism() -> int:
    if os.environ.get("REPRO_PARALLEL", "1") == "0":
        return 1
    return min(os.cpu_count() or 1, 12)


def run_suite(
    config: MachineConfig,
    budget: Optional[int] = None,
    workloads: Optional[Iterable[str]] = None,
    seed: int = 1,
) -> Dict[str, SimulationResult]:
    """Run every suite workload on ``config``; returns results by name."""
    names = list(workloads) if workloads is not None else suite_workloads()
    budget = budget if budget is not None else instruction_budget()
    jobs = [(config, name, budget, seed) for name in names]
    workers = _parallelism()
    if workers <= 1 or len(jobs) <= 1:
        results = [_run_one(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_one, jobs))
    return {name: result for name, result in zip(names, results)}


def run_suite_many(
    configs: Dict[str, MachineConfig],
    budget: Optional[int] = None,
    workloads: Optional[Iterable[str]] = None,
    seed: int = 1,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run the suite under several configurations in one process pool.

    Flattens (config, workload) pairs so parallelism covers the whole
    sweep, not just one configuration at a time.
    """
    names = list(workloads) if workloads is not None else suite_workloads()
    budget = budget if budget is not None else instruction_budget()
    keys = list(configs)
    jobs = [(configs[key], name, budget, seed) for key in keys for name in names]
    workers = _parallelism()
    if workers <= 1 or len(jobs) <= 1:
        results = [_run_one(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_one, jobs))
    out: Dict[str, Dict[str, SimulationResult]] = {}
    i = 0
    for key in keys:
        out[key] = {}
        for name in names:
            out[key][name] = results[i]
            i += 1
    return out


def group_means(
    results: Dict[str, SimulationResult],
    metric: Callable[[SimulationResult], float],
) -> Dict[str, Dict[str, float]]:
    """Apply ``metric`` per workload and aggregate to INT/FP mean/min/max."""
    groups: Dict[str, List[float]] = {"INT": [], "FP": []}
    for result in results.values():
        groups.setdefault(result.group, []).append(metric(result))
    out = {}
    for group, vals in groups.items():
        if not vals:
            continue
        out[group] = {
            "mean": sum(vals) / len(vals),
            "min": min(vals),
            "max": max(vals),
            "n": len(vals),
        }
    return out
