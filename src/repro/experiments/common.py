"""Shared experiment machinery, built on the execution engine.

Experiments run the whole 26-workload suite for each design point.  The
helpers here only *plan* — they turn (configs, workloads, budget, seed)
into canonical :class:`~repro.exec.RunRequest`s — and hand the batch to
the process-wide :class:`~repro.exec.ExecutionEngine`, which dedupes
repeated design points, serves previously-simulated ones from its disk
cache, and fans the rest out across one persistent process pool.

Knobs: worker count, cache location, and cache enablement are fields of
:class:`repro.exec.EngineOptions` (their environment-variable defaults
are documented — and read — only in :mod:`repro.exec.options`);
``REPRO_WORKLOADS_PER_GROUP=n`` sweeps a suite subset while iterating.
"""

import os
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.exec.engine import ExecutionEngine, get_engine
from repro.exec.request import RunRequest
from repro.sim.config import MachineConfig
from repro.sim.result import SimulationResult
from repro.sim.runner import instruction_budget
from repro.workloads import FP_WORKLOADS, INT_WORKLOADS, SyntheticWorkload, WorkloadSpec

#: Anything the planning helpers accept as a workload identity.
WorkloadLike = Union[str, WorkloadSpec, SyntheticWorkload]


def suite_workloads() -> List[str]:
    """Workload names for experiments (full suite unless subset requested)."""
    # Suite-size trim is a harness knob, not an engine option: it picks
    # which experiments run, never how any single run behaves.
    per_group = os.environ.get("REPRO_WORKLOADS_PER_GROUP")  # repro: noqa[REPRO011]
    if per_group:
        n = max(1, int(per_group))
        return INT_WORKLOADS[:n] + FP_WORKLOADS[:n]
    return INT_WORKLOADS + FP_WORKLOADS


def _workload_id(workload: WorkloadLike) -> Union[str, WorkloadSpec]:
    if isinstance(workload, SyntheticWorkload):
        return workload.spec
    return workload


# -- planning ------------------------------------------------------------
def plan_point(config: MachineConfig, workload: WorkloadLike,
               budget: Optional[int] = None, seed: int = 1) -> RunRequest:
    """Canonical request for one (config, workload) design point."""
    budget = budget if budget is not None else instruction_budget()
    return RunRequest(config, _workload_id(workload), budget, seed)


def plan_suite(config: MachineConfig,
               budget: Optional[int] = None,
               workloads: Optional[Iterable[str]] = None,
               seed: int = 1) -> List[RunRequest]:
    """Requests for every suite workload on ``config``."""
    names = list(workloads) if workloads is not None else suite_workloads()
    budget = budget if budget is not None else instruction_budget()
    return [RunRequest(config, name, budget, seed) for name in names]


def plan_suite_many(configs: Dict[str, MachineConfig],
                    budget: Optional[int] = None,
                    workloads: Optional[Iterable[str]] = None,
                    seed: int = 1) -> List[RunRequest]:
    """Requests for the suite under several configurations, config-major."""
    names = list(workloads) if workloads is not None else suite_workloads()
    budget = budget if budget is not None else instruction_budget()
    return [
        RunRequest(config, name, budget, seed)
        for config in configs.values()
        for name in names
    ]


# -- execution -----------------------------------------------------------
def run_requests(requests: List[RunRequest],
                 engine: Optional[ExecutionEngine] = None) -> List[SimulationResult]:
    """Execute ``requests`` through the (shared) engine, preserving order."""
    engine = engine if engine is not None else get_engine()
    return engine.run(requests)


def run_point(config: MachineConfig, workload: WorkloadLike,
              budget: Optional[int] = None, seed: int = 1) -> SimulationResult:
    """Run a single design point through the engine (cached, deduped)."""
    return run_requests([plan_point(config, workload, budget, seed)])[0]


def run_suite(
    config: MachineConfig,
    budget: Optional[int] = None,
    workloads: Optional[Iterable[str]] = None,
    seed: int = 1,
) -> Dict[str, SimulationResult]:
    """Run every suite workload on ``config``; returns results by name."""
    requests = plan_suite(config, budget=budget, workloads=workloads, seed=seed)
    results = run_requests(requests)
    return {request.workload_name: result for request, result in zip(requests, results)}


def run_suite_many(
    configs: Dict[str, MachineConfig],
    budget: Optional[int] = None,
    workloads: Optional[Iterable[str]] = None,
    seed: int = 1,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run the suite under several configurations in one engine batch.

    Flattens (config, workload) pairs so parallelism covers the whole
    sweep, not just one configuration at a time.
    """
    names = list(workloads) if workloads is not None else suite_workloads()
    requests = plan_suite_many(configs, budget=budget, workloads=names, seed=seed)
    results = run_requests(requests)
    out: Dict[str, Dict[str, SimulationResult]] = {}
    i = 0
    for key in configs:
        out[key] = {}
        for name in names:
            out[key][name] = results[i]
            i += 1
    return out


def group_means(
    results: Dict[str, SimulationResult],
    metric: Callable[[SimulationResult], float],
) -> Dict[str, Dict[str, float]]:
    """Apply ``metric`` per workload and aggregate to INT/FP mean/min/max."""
    groups: Dict[str, List[float]] = {"INT": [], "FP": []}
    for result in results.values():
        groups.setdefault(result.group, []).append(metric(result))
    out = {}
    for group, vals in groups.items():
        if not vals:
            continue
        out[group] = {
            "mean": sum(vals) / len(vals),
            "min": min(vals),
            "max": max(vals),
            "n": len(vals),
        }
    return out
