"""Tables 3 and 5: breakdown of false replays by approximation.

Every DMDC replay of a load with no real violation is classified by which
approximation triggered it:

* **address match** -- the load really overlaps a marked store but issued
  *after* the store resolved (timing approximation).  ``X``: the load lies
  in that store's own checking window; ``Y``: it was only checked because
  windows merged.
* **hashing conflict** -- the load's quad word merely hashes to a marked
  entry.  It may have issued before or after the marking store.

Paper result (config2, per million committed instructions): INT 168 total
(65% addr/X, 22% addr/Y, 11% hash/before); FP 35 total.  Local DMDC
(Table 5) cuts INT to 134 and FP to 24, mostly out of the Y column.
"""

from typing import Dict, Optional

from repro.experiments.common import plan_suite, run_suite
from repro.sim.config import CONFIG2, SchemeConfig
from repro.sim.result import FALSE_REPLAY_CATEGORIES
from repro.stats.report import format_table

_LABELS = {
    "replay.false.addr.X": ("address match", "after store (X: in window)"),
    "replay.false.addr.Y": ("address match", "after store (Y: merged windows)"),
    "replay.false.hash.before": ("hashing conflict", "before store"),
    "replay.false.hash.X": ("hashing conflict", "after store (X: in window)"),
    "replay.false.hash.Y": ("hashing conflict", "after store (Y: merged windows)"),
    "replay.false.inv": ("invalidation", "promoted INV entry"),
}


def plan_table3(budget: Optional[int] = None, local: bool = False, config=CONFIG2):
    scheme = SchemeConfig(kind="dmdc", local=local)
    return plan_suite(config.with_scheme(scheme), budget=budget)


def run_table3(budget: Optional[int] = None, local: bool = False, config=CONFIG2) -> Dict:
    """Classify false replays per million instructions, INT vs FP."""
    scheme = SchemeConfig(kind="dmdc", local=local)
    results = run_suite(config.with_scheme(scheme), budget=budget)
    groups: Dict[str, Dict[str, list]] = {}
    for result in results.values():
        bucket = groups.setdefault(result.group, {c: [] for c in FALSE_REPLAY_CATEGORIES})
        bucket.setdefault("true", []).append(result.per_minstr("replay.true"))
        bucket.setdefault("total_false", []).append(result.false_replays_per_minstr)
        for cat in FALSE_REPLAY_CATEGORIES:
            bucket[cat].append(result.per_minstr(cat))
    rows = []
    for group, bucket in sorted(groups.items()):
        def avg(key):
            vals = bucket.get(key, [])
            return sum(vals) / len(vals) if vals else 0.0
        total = avg("total_false") or 1e-12
        for cat in FALSE_REPLAY_CATEGORIES:
            kind, timing = _LABELS[cat]
            rows.append({
                "group": group,
                "kind": kind,
                "timing": timing,
                "per_minstr": avg(cat),
                "share": 100.0 * avg(cat) / total,
            })
        rows.append({
            "group": group, "kind": "total", "timing": "(all false replays)",
            "per_minstr": avg("total_false"), "share": 100.0,
        })
        rows.append({
            "group": group, "kind": "true", "timing": "(real violations)",
            "per_minstr": avg("true"), "share": float("nan"),
        })
    return {"experiment": "table5" if local else "table3", "local": local, "rows": rows}


def render(data: Dict) -> str:
    which = "Table 5 (local DMDC)" if data["local"] else "Table 3 (global DMDC)"
    table_rows = []
    for r in data["rows"]:
        share = "" if r["share"] != r["share"] else f"{r['share']:.0f}%"
        table_rows.append(
            [r["group"], r["kind"], r["timing"], f"{r['per_minstr']:.1f}", share]
        )
    return format_table(
        ["group", "cause", "timing", "replays/Minstr", "share"],
        table_rows,
        title=f"{which} - false replay breakdown",
    )
