"""Statistics collection and reporting for simulation runs."""

from repro.stats.counters import CounterSet, Histogram, RunningMean
from repro.stats.aggregate import GroupSummary, summarize
from repro.stats.report import format_table

__all__ = [
    "CounterSet",
    "Histogram",
    "RunningMean",
    "GroupSummary",
    "summarize",
    "format_table",
]
