"""Aggregation of per-workload metrics into the paper's INT/FP group views.

The paper reports most results as per-group averages with min/max ranges
(the "I-beams" in Figure 2).  :func:`summarize` reproduces that view from a
``{workload_name: value}`` mapping and a group assignment.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping


@dataclass
class GroupSummary:
    """Mean/min/max of one metric over a workload group."""

    group: str
    mean: float
    min: float
    max: float
    count: int

    def __str__(self) -> str:
        return f"{self.group}: mean={self.mean:.2f} min={self.min:.2f} max={self.max:.2f} (n={self.count})"


def summarize(values: Mapping[str, float], groups: Mapping[str, str]) -> Dict[str, GroupSummary]:
    """Group ``values`` by ``groups[name]`` and summarise each group.

    Workloads missing from ``groups`` are ignored, so a partial suite run
    still aggregates cleanly.
    """
    buckets: Dict[str, list] = {}
    for name, value in values.items():
        group = groups.get(name)
        if group is None:
            continue
        buckets.setdefault(group, []).append(value)
    out: Dict[str, GroupSummary] = {}
    for group, vals in buckets.items():
        out[group] = GroupSummary(
            group=group,
            mean=sum(vals) / len(vals),
            min=min(vals),
            max=max(vals),
            count=len(vals),
        )
    return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for speedup aggregation)."""
    vals = list(values)
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(vals))
