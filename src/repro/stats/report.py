"""Plain-text table rendering for experiment output.

Benchmarks print tables in the same row/column structure as the paper's
tables and figures so paper-vs-measured comparison is mechanical.
"""

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned monospace table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller so each experiment controls its own precision.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction (0..1) as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
