"""Primitive statistics containers.

The simulator increments named counters everywhere; experiments then derive
rates (per committed instruction, per cycle, per million instructions) from
them.  Keeping raw counts rather than rates makes aggregation across
workloads exact.
"""

from collections import defaultdict
from typing import Dict, Iterable, Tuple


class CounterSet:
    """A bag of named integer counters with dictionary-like access."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __setitem__(self, name: str, value: int) -> None:
        self._counts[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def names(self) -> Iterable[str]:
        return sorted(self._counts)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of every counter."""
        return dict(self._counts)

    def merge(self, other: "CounterSet") -> None:
        """Add every counter of ``other`` into this set."""
        for name, value in other._counts.items():
            self._counts[name] += value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterSet):
            return NotImplemented
        # Zero-valued entries are indistinguishable from absent ones.
        mine = {k: v for k, v in self._counts.items() if v}
        theirs = {k: v for k, v in other._counts.items() if v}
        return mine == theirs

    @classmethod
    def from_dict(cls, counts: Dict[str, int]) -> "CounterSet":
        """Rebuild a set from an :meth:`as_dict` snapshot."""
        out = cls()
        for name, value in counts.items():
            out._counts[name] = int(value)
        return out

    def rate(self, numerator: str, denominator: str, scale: float = 1.0) -> float:
        """``scale * numerator / denominator``, 0.0 when the denominator is 0."""
        denom = self._counts.get(denominator, 0)
        if denom == 0:
            return 0.0
        return scale * self._counts.get(numerator, 0) / denom


#: Counter names the pipeline bumps on its hottest paths.  Each becomes a
#: pre-bound integer slot on :class:`HotCounters` (dots mapped to
#: underscores), sparing the per-event string hash + defaultdict lookup of
#: :meth:`CounterSet.bump`; the totals fold back into the ``CounterSet``
#: once, when the simulation result is built.
HOT_COUNTERS = (
    "replays",
    "replays.commit_time",
    "replays.execution_time",
    "replays.coherence",
    "commit.instructions",
    "commit.loads",
    "commit.safe_loads",
    "commit.stores",
    "commit.branches",
    "dcache.reexecutions",
    "regfile.writes",
    "regfile.reads",
    "iq.wakeups",
    "branch.mispredicts",
    "branch.misfetches",
    "issue.instructions",
    "issue.loads",
    "issue.stores",
    "fu.ops",
    "sq.searches",
    "load.rejections",
    "load.safe_at_issue",
    "load.forwarded",
    "dcache.reads",
    "groundtruth.violations",
    "storesets.load_delays",
    "stall.rob_full",
    "stall.iq_full",
    "stall.lq_full",
    "stall.sq_full",
    "stall.regs_full",
    "lq.writes",
    "sq.writes",
    "rename.ops",
    "rob.writes",
    "fetch.stall_cycles",
    "fetch.instructions",
    "fetch.icache_miss",
    "icache.reads",
    "bpred.lookups",
    "squash.instructions",
    "replay.guard_trips",
    "inv.injected",
)


class HotCounters:
    """Slotted integer counters for the simulator's per-event hot paths.

    The fold-back contract: every slot starts at zero, the pipeline
    increments slots directly (``hot.commit_loads += 1``), and
    :meth:`fold_into` adds each non-zero slot into a :class:`CounterSet`
    under its dotted name exactly once — the processor calls it when
    building the :class:`~repro.sim.result.SimulationResult`, so the
    externally visible counter names and values are identical to the old
    string-keyed ``bump`` calls.
    """

    __slots__ = tuple(name.replace(".", "_") for name in HOT_COUNTERS)

    def __init__(self) -> None:
        for slot in self.__slots__:
            setattr(self, slot, 0)

    def fold_into(self, counters: "CounterSet") -> None:
        """Add every non-zero slot into ``counters`` under its dotted name."""
        for name in HOT_COUNTERS:
            value = getattr(self, name.replace(".", "_"))
            if value:
                counters.bump(name, value)

    def as_dict(self) -> Dict[str, int]:
        """Non-zero slots keyed by dotted counter name (for debugging)."""
        out = {}
        for name in HOT_COUNTERS:
            value = getattr(self, name.replace(".", "_"))
            if value:
                out[name] = value
        return out


class RunningMean:
    """Streaming mean/min/max without storing samples."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram:
    """Sparse integer-valued histogram with summary statistics."""

    def __init__(self) -> None:
        self._bins: Dict[int, int] = defaultdict(int)
        self.count = 0
        self.total = 0

    def add(self, value: int, weight: int = 1) -> None:
        self._bins[value] += weight
        self.count += weight
        self.total += value * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Inclusive percentile; ``p`` in [0, 100]."""
        if not self.count:
            return 0
        target = p / 100.0 * self.count
        seen = 0
        for value in sorted(self._bins):
            seen += self._bins[value]
            if seen >= target:
                return value
        return max(self._bins)

    def items(self) -> Iterable[Tuple[int, int]]:
        return sorted(self._bins.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (dict(self._bins), self.count, self.total) == (
            dict(other._bins), other.count, other.total)

    def to_dict(self) -> Dict[str, list]:
        """JSON-friendly snapshot (bins as value/weight pairs)."""
        return {"bins": [[value, weight] for value, weight in self.items()]}

    @classmethod
    def from_dict(cls, payload: Dict[str, list]) -> "Histogram":
        out = cls()
        for value, weight in payload.get("bins", []):
            out.add(int(value), int(weight))
        return out
