"""Per-cycle execution resources: functional units and physical registers."""

from repro.errors import ConfigError, SimulationError
from repro.isa.opcodes import InstrClass


class FunctionalUnits:
    """Per-cycle functional-unit bandwidth with per-class latencies.

    Table 1 of the paper: 8 integer ALUs + 2 integer mul/div, 8 FP ALUs +
    2 FP mul/div.  Loads, stores and branches consume an integer-ALU slot
    (address generation / condition evaluation); loads additionally consume
    a D-cache port, which the pipeline accounts for separately.
    """

    #: Execution latencies per class (cycles), SimpleScalar defaults.
    LATENCY = {
        InstrClass.IALU: 1,
        InstrClass.IMUL: 3,
        InstrClass.IDIV: 20,
        InstrClass.FALU: 2,
        InstrClass.FMUL: 4,
        InstrClass.FDIV: 12,
        InstrClass.LOAD: 1,    # AGU; cache latency added by the pipeline
        InstrClass.STORE: 1,   # AGU
        InstrClass.BRANCH: 1,
        InstrClass.NOP: 1,
    }

    def __init__(self, int_alu: int = 8, int_muldiv: int = 2, fp_alu: int = 8, fp_muldiv: int = 2):
        if min(int_alu, int_muldiv, fp_alu, fp_muldiv) <= 0:
            raise ConfigError("functional unit counts must be positive")
        self._caps = {
            "int_alu": int_alu,
            "int_muldiv": int_muldiv,
            "fp_alu": fp_alu,
            "fp_muldiv": fp_muldiv,
        }
        self._avail = dict(self._caps)

    _POOL = {
        InstrClass.IALU: "int_alu",
        InstrClass.IMUL: "int_muldiv",
        InstrClass.IDIV: "int_muldiv",
        InstrClass.FALU: "fp_alu",
        InstrClass.FMUL: "fp_muldiv",
        InstrClass.FDIV: "fp_muldiv",
        InstrClass.LOAD: "int_alu",
        InstrClass.STORE: "int_alu",
        InstrClass.BRANCH: "int_alu",
        InstrClass.NOP: "int_alu",
    }

    def new_cycle(self) -> None:
        """Restore full bandwidth at the start of each cycle."""
        self._avail.update(self._caps)

    def try_acquire(self, cls: InstrClass) -> bool:
        """Claim a unit of the right pool for this cycle, if available."""
        pool = self._POOL[cls]
        if self._avail[pool] > 0:
            self._avail[pool] -= 1
            return True
        return False

    def latency(self, cls: InstrClass) -> int:
        return self.LATENCY[cls]


class PhysRegFile:
    """Free-list accounting for one side's physical register file.

    Only occupancy is modelled: dispatch blocks when no physical register
    is free, and registers return to the pool at commit or squash.  The 32
    architectural registers of the side are permanently mapped.
    """

    def __init__(self, total: int, architectural: int = 32):
        if total <= architectural:
            raise ConfigError(
                f"physical registers ({total}) must exceed architectural ({architectural})"
            )
        self.total = total
        self.free = total - architectural
        self.allocations = 0

    def try_allocate(self) -> bool:
        if self.free > 0:
            self.free -= 1
            self.allocations += 1
            return True
        return False

    def release(self) -> None:
        self.free += 1
        if self.free > self.total - 32:
            raise SimulationError("physical register free-list overflow (double release)")
