"""Per-cycle execution resources: functional units and physical registers."""

from repro.errors import ConfigError, SimulationError
from repro.isa.opcodes import InstrClass


class FunctionalUnits:
    """Per-cycle functional-unit bandwidth with per-class latencies.

    Table 1 of the paper: 8 integer ALUs + 2 integer mul/div, 8 FP ALUs +
    2 FP mul/div.  Loads, stores and branches consume an integer-ALU slot
    (address generation / condition evaluation); loads additionally consume
    a D-cache port, which the pipeline accounts for separately.
    """

    #: Execution latencies per class (cycles), SimpleScalar defaults.
    LATENCY = {
        InstrClass.IALU: 1,
        InstrClass.IMUL: 3,
        InstrClass.IDIV: 20,
        InstrClass.FALU: 2,
        InstrClass.FMUL: 4,
        InstrClass.FDIV: 12,
        InstrClass.LOAD: 1,    # AGU; cache latency added by the pipeline
        InstrClass.STORE: 1,   # AGU
        InstrClass.BRANCH: 1,
        InstrClass.NOP: 1,
    }

    #: Pool index per class: 0=int_alu, 1=int_muldiv, 2=fp_alu, 3=fp_muldiv.
    #: Lists indexed by the IntEnum value keep the per-issue lookup to two
    #: list subscripts (this is called once per issued instruction).
    _POOL_INDEX = (0, 1, 1, 2, 3, 3, 0, 0, 0, 0)
    #: Latency per class, indexed by IntEnum value; public so the pipeline
    #: can index it directly on its hottest issue path.
    latency_by_cls = (1, 3, 20, 2, 4, 12, 1, 1, 1, 1)

    #: Name-keyed views kept for introspection and tests.
    _POOL = {
        InstrClass.IALU: "int_alu",
        InstrClass.IMUL: "int_muldiv",
        InstrClass.IDIV: "int_muldiv",
        InstrClass.FALU: "fp_alu",
        InstrClass.FMUL: "fp_muldiv",
        InstrClass.FDIV: "fp_muldiv",
        InstrClass.LOAD: "int_alu",
        InstrClass.STORE: "int_alu",
        InstrClass.BRANCH: "int_alu",
        InstrClass.NOP: "int_alu",
    }

    def __init__(self, int_alu: int = 8, int_muldiv: int = 2, fp_alu: int = 8, fp_muldiv: int = 2):
        if min(int_alu, int_muldiv, fp_alu, fp_muldiv) <= 0:
            raise ConfigError("functional unit counts must be positive")
        self._caps = {
            "int_alu": int_alu,
            "int_muldiv": int_muldiv,
            "fp_alu": fp_alu,
            "fp_muldiv": fp_muldiv,
        }
        self._caps_list = [int_alu, int_muldiv, fp_alu, fp_muldiv]
        self._avail_list = list(self._caps_list)

    @property
    def _avail(self):
        """Name-keyed availability view (tests / debugging)."""
        return dict(zip(("int_alu", "int_muldiv", "fp_alu", "fp_muldiv"), self._avail_list))

    def new_cycle(self) -> None:
        """Restore full bandwidth at the start of each cycle."""
        self._avail_list[:] = self._caps_list

    def try_acquire(self, cls: InstrClass) -> bool:
        """Claim a unit of the right pool for this cycle, if available."""
        pool = self._POOL_INDEX[cls]
        avail = self._avail_list
        if avail[pool] > 0:
            avail[pool] -= 1
            return True
        return False

    def latency(self, cls: InstrClass) -> int:
        return self.latency_by_cls[cls]


class PhysRegFile:
    """Free-list accounting for one side's physical register file.

    Only occupancy is modelled: dispatch blocks when no physical register
    is free, and registers return to the pool at commit or squash.  The 32
    architectural registers of the side are permanently mapped.
    """

    def __init__(self, total: int, architectural: int = 32):
        if total <= architectural:
            raise ConfigError(
                f"physical registers ({total}) must exceed architectural ({architectural})"
            )
        self.total = total
        self.free = total - architectural
        self.allocations = 0

    def try_allocate(self) -> bool:
        if self.free > 0:
            self.free -= 1
            self.allocations += 1
            return True
        return False

    def release(self) -> None:
        self.free += 1
        if self.free > self.total - 32:
            raise SimulationError("physical register free-list overflow (double release)")
