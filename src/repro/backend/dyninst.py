"""Dynamic (in-flight) instruction state.

A :class:`DynInstr` is one fetched instance of a trace micro-op.  The same
micro-op can be in flight multiple times across replays; each instance gets
a fresh, strictly increasing ``seq`` — the *age* that every mechanism in the
paper compares (YLA registers, end-check register, squash points).
"""

import enum
from typing import List, Optional

from repro.isa.instruction import MicroOp


class InstrState(enum.IntEnum):
    DISPATCHED = 0   # in ROB/IQ, waiting for operands
    READY = 1        # operands available, waiting for issue bandwidth
    ISSUED = 2       # executing / waiting on memory
    COMPLETED = 3    # result produced, waiting for in-order commit
    COMMITTED = 4
    SQUASHED = 5


class DynInstr:
    """One in-flight instance of a micro-op, with full pipeline bookkeeping."""

    __slots__ = (
        "uop",
        "trace_idx",
        "seq",
        "state",
        "fp_side",
        # static facts copied out of the micro-op once at fetch; plain
        # slots, because property dispatch is measurable on the hot paths
        "is_load",
        "is_store",
        "is_branch",
        "addr",
        "size",
        # dependence tracking
        "pending_ops",
        "pending_data",
        "consumers",
        # timing
        "fetch_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "resolve_cycle",
        "commit_cycle",
        # memory behaviour
        "speculative_issue",
        "safe",
        "forward_store_seq",
        "rejections",
        "true_violation_store",
        "true_violation_pc",
        "replay_generation",
        "guard_bypass",
        "hash_key",
        "inv_marked",
        # DMDC store state
        "unsafe_store",
        "window_end",
        # branch state
        "pred_snapshot",
        "mispredicted",
        # bookkeeping
        "in_iq",
    )

    def __init__(self, uop: MicroOp, trace_idx: int, seq: int, fp_side: bool):
        self.uop = uop
        self.trace_idx = trace_idx
        self.seq = seq
        self.state = InstrState.DISPATCHED
        self.fp_side = fp_side
        self.is_load = uop.is_load
        self.is_store = uop.is_store
        self.is_branch = uop.is_branch
        self.addr = uop.mem_addr
        self.size = uop.mem_size
        self.pending_ops = self.pending_data = self.rejections = 0
        self.replay_generation = 0
        self.consumers: List = []
        self.fetch_cycle = self.dispatch_cycle = self.issue_cycle = -1
        self.complete_cycle = self.resolve_cycle = self.commit_cycle = -1
        self.forward_store_seq = -1
        self.true_violation_store = self.true_violation_pc = -1
        self.hash_key = self.window_end = -1
        self.speculative_issue = self.safe = self.guard_bypass = False
        self.inv_marked = self.unsafe_store = self.mispredicted = False
        self.in_iq = False
        self.pred_snapshot: Optional[tuple] = None

    # Convenience passthroughs -------------------------------------------
    @property
    def resolved(self) -> bool:
        """A memory op's address is resolved once it has issued through the AGU."""
        return self.resolve_cycle >= 0

    @property
    def squashed(self) -> bool:
        return self.state == InstrState.SQUASHED

    def __repr__(self) -> str:
        return (
            f"<DynInstr seq={self.seq} {self.uop.cls.name} state={self.state.name}"
            f" pc={self.uop.pc:#x}>"
        )
