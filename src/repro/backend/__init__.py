"""Out-of-order back-end structures: dynamic instructions, ROB, FUs."""

from repro.backend.dyninst import DynInstr, InstrState
from repro.backend.resources import FunctionalUnits, PhysRegFile

__all__ = ["DynInstr", "InstrState", "FunctionalUnits", "PhysRegFile"]
