"""repro — reproduction of *DMDC: Delayed Memory Dependence Checking
through Age-Based Filtering* (Castro et al., MICRO 2006).

Quick start — the stable surface is :mod:`repro.api`::

    from repro import api

    baseline = api.run("gzip", instructions=10_000)
    dmdc = api.run("gzip", scheme="dmdc", instructions=10_000)
    print(baseline.ipc, dmdc.ipc, dmdc.safe_store_fraction)

The package layers:

* :mod:`repro.core` — YLA registers, checking table, bloom filter, and the
  pluggable dependence-checking schemes (the paper's contribution);
* :mod:`repro.sim` — the cycle-level out-of-order pipeline substrate;
* :mod:`repro.workloads` — 26 synthetic SPEC CPU2000 stand-ins;
* :mod:`repro.energy` — Wattch-style energy accounting;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import (
    CheckingTable,
    CountingBloomFilter,
    DmdcScheme,
    YlaFile,
    build_scheme,
)
from repro.sim import (
    CONFIG1,
    CONFIG2,
    CONFIG3,
    CONFIGS,
    MachineConfig,
    Processor,
    SchemeConfig,
    SimulationResult,
    run_trace,
    run_workload,
    small_config,
)
from repro.workloads import (
    FP_WORKLOADS,
    INT_WORKLOADS,
    SUITE,
    SyntheticWorkload,
    WorkloadSpec,
    get_workload,
)

__version__ = "1.0.0"

# The stable facade: repro.api.{run, sweep, compare, check}.  Imported
# last so the names above exist first (api pulls from the subpackages
# only, never from this module).
from repro import api
from repro.api import check, compare, run, sweep
from repro.sweeps import GridSpec, SweepResult

__all__ = [
    "api",
    "run",
    "sweep",
    "compare",
    "check",
    "GridSpec",
    "SweepResult",
    "CheckingTable",
    "CountingBloomFilter",
    "DmdcScheme",
    "YlaFile",
    "build_scheme",
    "CONFIG1",
    "CONFIG2",
    "CONFIG3",
    "CONFIGS",
    "MachineConfig",
    "Processor",
    "SchemeConfig",
    "SimulationResult",
    "run_trace",
    "run_workload",
    "small_config",
    "FP_WORKLOADS",
    "INT_WORKLOADS",
    "SUITE",
    "SyntheticWorkload",
    "WorkloadSpec",
    "get_workload",
    "__version__",
]
