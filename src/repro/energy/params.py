"""Analytic per-access energy formulas (abstract Wattch-like technology).

All energies are in arbitrary picojoule-like units of one abstract
technology node.  The formulas capture the first-order scaling Wattch
models:

* a fully-associative **CAM search** drives every tag bitline and match
  line, so it scales with ``entries x tag_bits``;
* a **CAM write** drives the same array's bitlines (slightly cheaper than
  a search, which also fires the match/priority logic);
* an indexed **RAM access** pays decoder + one wordline + bitlines, so it
  scales with ``width x sqrt(entries)``;
* small dedicated **registers** (YLA, end-check) cost a flat per-bit
  latch/compare energy, orders of magnitude below an array access.

Coefficients were chosen so the conventional load queue consumes a few
percent of total core energy, growing with queue size across the paper's
config1 -> config3 (as Wattch reports for real LSQs).  See DESIGN.md.
"""

import math
from dataclasses import dataclass

#: Physical address bits held in LQ/SQ entries.
ADDR_TAG_BITS = 40


@dataclass(frozen=True)
class EnergyParams:
    """Technology coefficients (abstract units per access)."""

    cam_bit: float = 0.0176         # per entry-bit searched
    cam_write_ratio: float = 0.80   # write cost relative to a search
    ram_bit: float = 0.011          # per width-bit x sqrt(entries)
    ram_fixed: float = 0.09         # per width-bit decoder/sense overhead
    reg_bit: float = 0.012          # dedicated register compare/update, per bit
    flash_clear_bit: float = 0.0004  # per entry on a flash clear


DEFAULT_PARAMS = EnergyParams()


def cam_search_energy(entries: int, tag_bits: int = ADDR_TAG_BITS,
                      params: EnergyParams = DEFAULT_PARAMS) -> float:
    """Energy of one associative search of a CAM array."""
    return params.cam_bit * entries * tag_bits


def cam_write_energy(entries: int, tag_bits: int = ADDR_TAG_BITS,
                     params: EnergyParams = DEFAULT_PARAMS) -> float:
    """Energy of writing one entry of a CAM array."""
    return params.cam_write_ratio * cam_search_energy(entries, tag_bits, params)


def ram_energy(entries: int, width_bits: int,
               params: EnergyParams = DEFAULT_PARAMS) -> float:
    """Energy of one read or write of an indexed RAM array."""
    return width_bits * (params.ram_bit * math.sqrt(entries) + params.ram_fixed)


def register_energy(bits: int, params: EnergyParams = DEFAULT_PARAMS) -> float:
    """Energy of one compare/update of a small dedicated register."""
    return params.reg_bit * bits


def flash_clear_energy(entries: int, params: EnergyParams = DEFAULT_PARAMS) -> float:
    """Energy of flash-clearing a table's valid bits."""
    return params.flash_clear_bit * entries
