"""Processor-wide and LQ-local energy evaluation of a simulation result.

``EnergyModel.evaluate`` turns a :class:`~repro.sim.result.SimulationResult`
into an :class:`EnergyBreakdown`: per-structure energies computed as
activity counts x per-access energies (Wattch's methodology), plus a
per-cycle clocking/leakage term so that slowdown has an energy cost.

The load-queue component is scheme-aware:

* conventional/filtered schemes pay CAM searches + CAM allocation writes
  + commit reads, plus the filter's own overhead (YLA registers or bloom
  filter);
* DMDC pays a narrow FIFO of hash keys, checking-table reads/writes and
  flash clears, YLA registers, and the end-check register — no CAM at all.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.params import (
    ADDR_TAG_BITS,
    DEFAULT_PARAMS,
    EnergyParams,
    cam_search_energy,
    cam_write_energy,
    flash_clear_energy,
    ram_energy,
    register_energy,
)
from repro.sim.config import MachineConfig
from repro.sim.result import SimulationResult
from repro.utils.bitops import log2_exact


@dataclass
class EnergyBreakdown:
    """Per-structure energy of one run (abstract units)."""

    components: Dict[str, float] = field(default_factory=dict)
    lq_detail: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    @property
    def lq(self) -> float:
        """Energy spent implementing the LQ's functionality."""
        return self.components.get("lq", 0.0)

    def share(self, name: str) -> float:
        total = self.total
        return self.components.get(name, 0.0) / total if total else 0.0


class EnergyModel:
    """Maps activity counters to energy for one machine configuration."""

    #: Fixed per-access energies for structures whose size does not vary
    #: across the paper's configurations.
    FU_OP = 5.0

    def __init__(self, config: MachineConfig, params: EnergyParams = DEFAULT_PARAMS):
        self.config = config
        self.params = params
        cfg = config
        # Clock tree + leakage grow with the amount of clocked state.
        self.clock_per_cycle = 40.0 + 0.55 * (cfg.rob_size + cfg.regs_int + cfg.regs_fp)
        self.e_icache = ram_energy(cfg.l1i_size // 64, 80, params)
        self.e_dcache = ram_energy(cfg.l1d_size // 64, 80, params)
        self.e_l2 = ram_energy(cfg.l2_size // cfg.l2_line_bytes, 100, params)
        self.e_bpred = ram_energy(cfg.gshare_entries, 4, params) + ram_energy(cfg.btb_entries, 40, params)
        self.e_rename = ram_energy(64, 16, params) * cfg.width / 8.0
        self.e_rob = ram_energy(cfg.rob_size, 32, params)
        iq_total = cfg.iq_int + cfg.iq_fp
        self.e_wakeup = cam_search_energy(iq_total, 10, params)
        self.e_select = ram_energy(iq_total, 4, params)
        self.e_regfile = ram_energy(cfg.regs_int + cfg.regs_fp, 64, params)

    # ------------------------------------------------------------------
    def evaluate(self, result: SimulationResult) -> EnergyBreakdown:
        """Compute the full per-structure energy breakdown of one run."""
        c = result.counters
        comp: Dict[str, float] = {}
        comp["icache"] = c["icache.reads"] * self.e_icache
        comp["dcache"] = (c["dcache.reads"] + c["commit.stores"]) * self.e_dcache
        comp["l2"] = c["l2.accesses"] * self.e_l2
        comp["bpred"] = c["bpred.lookups"] * 2 * self.e_bpred
        comp["rename"] = c["rename.ops"] * self.e_rename
        comp["rob"] = (c["rob.writes"] + c["commit.instructions"]) * self.e_rob
        issued = c["issue.instructions"] + c["issue.loads"] + c["issue.stores"]
        comp["iq"] = c["iq.wakeups"] * self.e_wakeup + issued * self.e_select
        comp["regfile"] = (c["regfile.reads"] + c["regfile.writes"]) * self.e_regfile
        comp["fu"] = issued * self.FU_OP
        comp["sq"] = self._sq_energy(result)
        lq_detail = self._lq_energy(result)
        comp["lq"] = sum(lq_detail.values())
        comp["clock"] = result.cycles * self.clock_per_cycle
        return EnergyBreakdown(components=comp, lq_detail=lq_detail)

    # ------------------------------------------------------------------
    def _sq_energy(self, result: SimulationResult) -> float:
        """Store queue: forwarding CAM searches + allocation + commit."""
        c = result.counters
        p = self.params
        sq = self.config.sq_size
        return (
            c["sq.searches_assoc"] * cam_search_energy(sq, ADDR_TAG_BITS, p)
            + c["sq.writes"] * cam_write_energy(sq, ADDR_TAG_BITS, p)
            + c["commit.stores"] * ram_energy(sq, 16, p)
        )

    def _lq_energy(self, result: SimulationResult) -> Dict[str, float]:
        """Everything paid to implement the LQ's checking functionality."""
        if result.scheme_name.startswith("dmdc"):
            return self._lq_energy_dmdc(result)
        if result.scheme_name == "garg":
            return self._lq_energy_garg(result)
        if result.scheme_name == "value":
            return self._lq_energy_value(result)
        return self._lq_energy_associative(result)

    def _lq_energy_garg(self, result: SimulationResult) -> Dict[str, float]:
        """Garg et al. [11]: an age hash table written by every load and
        read by every store -- wider entries and far more traffic than
        DMDC's filtered, address-only table."""
        c = result.counters
        p = self.params
        table = c["garg.table.entries"] or self.config.checking_table
        age_bits = 14  # ROB-position age plus wrap/valid bits
        return {
            "table": (c["garg.table.reads"] + c["garg.table.writes"])
            * ram_energy(table, age_bits, p),
        }

    def _lq_energy_value(self, result: SimulationResult) -> Dict[str, float]:
        """Cain-Lipasti value-based checking: no LQ structure at all; the
        cost is the commit-time cache re-access per load (the 'elevated
        memory bandwidth requirement')."""
        c = result.counters
        return {
            "reexecution": c["dcache.reexecutions"] * self.e_dcache,
        }

    def _lq_energy_associative(self, result: SimulationResult) -> Dict[str, float]:
        c = result.counters
        p = self.params
        lq = self.config.lq_size
        detail = {
            "search": (c["lq.searches_assoc"] + c["lq.inv_searches"])
            * cam_search_energy(lq, ADDR_TAG_BITS, p),
            "allocate": c["lq.writes"] * cam_write_energy(lq, ADDR_TAG_BITS, p),
            "commit": c["commit.loads"] * ram_energy(lq, 8, p),
        }
        # Filter overheads (zero for the plain baseline).
        yla_ops = c["yla.compares"] + c["yla.updates"]
        if yla_ops:
            detail["yla"] = yla_ops * register_energy(16, p)
        bloom_ops = c["bloom.probes"] + c["bloom.inserts"] + c["bloom.removes"]
        if bloom_ops:
            entries = c["bloom.entries"] or 1024
            detail["bloom"] = bloom_ops * ram_energy(entries, 4, p)
        return detail

    def _lq_energy_dmdc(self, result: SimulationResult) -> Dict[str, float]:
        c = result.counters
        p = self.params
        lq = self.config.lq_size
        table = c["table.entries"] or self.config.checking_table
        key_bits = log2_exact(table) + 4 if table else 15
        detail = {
            # FIFO of hash keys: narrow RAM instead of a wide CAM.
            "fifo": (c["lq.keys_written"] + c["commit.loads"]) * ram_energy(lq, key_bits, p),
            "table": (c["table.reads"] + c["table.writes"]) * ram_energy(table, 5, p),
            "clear": c["table.clears"] * flash_clear_energy(table, p),
            "yla": (c["yla.compares"] + c["yla.updates"]) * register_energy(16, p),
            "end_check": c["stores.unsafe"] * register_energy(9, p),
        }
        queue_ops = c["ckq.reads"] + c["ckq.writes"]
        if queue_ops:
            entries = c["ckq.entries"] or 16
            detail["queue"] = queue_ops * cam_search_energy(entries, ADDR_TAG_BITS, p)
        return detail
