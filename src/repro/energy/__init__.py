"""Wattch-style energy accounting.

The paper reports energy through Wattch (activity counts x per-access
structure energies, plus clocking/leakage per cycle).  This package
reimplements that methodology with analytic CAM/RAM energy formulas whose
coefficients are documented in :mod:`repro.energy.params`.  Absolute
Joules are not meaningful; energy *ratios* between schemes — the only
thing the paper reports — are.
"""

from repro.energy.params import EnergyParams, cam_search_energy, cam_write_energy, ram_energy
from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = [
    "EnergyParams",
    "cam_search_energy",
    "cam_write_energy",
    "ram_energy",
    "EnergyBreakdown",
    "EnergyModel",
]
