"""Throughput benchmark for the cycle loop.

Measures committed instructions per wall-clock second for every
dependence-checking scheme over a fixed workload mix, and writes the
machine-readable ``BENCH_simulator.json`` used to track simulator
performance across commits.

Methodology (see ``docs/performance.md``):

* only :meth:`Processor.run` is timed (``SimulationResult.sim_seconds``) —
  trace generation and the functional prewarm exercise unchanged code and
  would dilute the cycle-loop signal;
* each (workload, scheme) pair is simulated once after a small untimed
  warm-up run that settles the interpreter;
* the figure of merit per scheme is total committed instructions divided
  by total simulated seconds across the mix (a weighted harmonic mean of
  the per-workload rates, so slow workloads are not averaged away);
* every row is a **fresh simulation** — the bench never consults the
  execution engine's result cache, so throughput can never be inflated
  by cache hits — and the payload records the effective performance
  knobs (fast path, ``REPRO_PARALLEL``, cache enablement) because the
  numbers are meaningless without that provenance.

``aggregate_instr_per_sec`` stays sim-time-only (the tracked figure);
``aggregate_instr_per_sec_wall`` divides by true wall time including
trace generation and prewarm, for capacity planning.
"""

import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import CONFIG2, SCHEME_LABELS, MachineConfig, SchemeConfig
from repro.sim.processor import NO_FASTPATH_ENV, Processor
from repro.sim.runner import instruction_budget, run_many
from repro.sim.soa import NO_SOA_ENV

#: Default output file, at the repository root by convention.
BENCH_FILENAME = "BENCH_simulator.json"

#: The default mix: two integer and two floating-point stand-ins spanning
#: cache-friendly (gzip, equake) and cache-hostile (mcf, twolf) behaviour.
DEFAULT_MIX = ("gzip", "mcf", "twolf", "equake")

#: CI smoke mix: one cheap workload, the two headline schemes.
QUICK_MIX = ("gzip", "mcf")

#: Scheme configurations benchmarked, label -> SchemeConfig — the full
#: canonical matrix, decoded through the one label codec.
FULL_SCHEMES: Tuple[Tuple[str, SchemeConfig], ...] = tuple(
    (label, SchemeConfig.from_label(label)) for label in SCHEME_LABELS
)

QUICK_SCHEMES: Tuple[Tuple[str, SchemeConfig], ...] = tuple(
    (label, SchemeConfig.from_label(label)) for label in ("conventional", "dmdc")
)


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _machine_info() -> Dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _effective_knobs() -> Dict:
    """Provenance: every performance knob in effect for this run.

    The bench itself runs processors directly (no engine, no cache), but
    a payload compared against engine-driven numbers needs the engine's
    effective settings on record too.
    """
    from repro.exec.options import CACHE_ENABLE_ENV, PARALLEL_ENV, EngineOptions

    options = EngineOptions.from_env()
    tracked = (NO_FASTPATH_ENV, NO_SOA_ENV, PARALLEL_ENV, CACHE_ENABLE_ENV)
    return {
        # repro: noqa[REPRO011] — this function *is* the knob recorder:
        # it reads the raw environment precisely to report what was set.
        "fastpath_enabled": not bool(os.environ.get(NO_FASTPATH_ENV)),  # repro: noqa[REPRO011]
        # The *requested* kernel; each row also records the kernel its
        # processor actually engaged (a hook or tracer forces "object").
        "kernel": "object" if os.environ.get(NO_SOA_ENV) else "soa",  # repro: noqa[REPRO011]
        "engine_cache_enabled": options.cache_enabled,
        "engine_workers": options.resolve_workers(),
        "env": {name: os.environ[name] for name in tracked  # repro: noqa[REPRO011]
                if os.environ.get(name) is not None},
    }


def _bench_one(config: MachineConfig, trace, budget: int, seed: int,
               repeats: int = 1) -> Dict:
    """Time one (config, trace) pair; best sim-time over ``repeats``.

    Repeats re-run a *fresh, identical* simulation and keep the fastest
    timing: the simulated outcome is deterministic, so repeats only
    reject scheduler/VM noise — they can never change the result whose
    throughput is being reported.
    """
    best = None
    for _ in range(max(1, repeats)):
        candidate = Processor(config, trace, seed=seed)
        candidate.prewarm()
        attempt = candidate.run(budget)
        if best is None or attempt.sim_seconds < best[0].sim_seconds:
            best = (attempt, candidate)
    result, processor = best
    total_cycles = result.cycles
    return {
        "instructions": result.committed,
        "cycles": total_cycles,
        "sim_seconds": result.sim_seconds,
        # instructions_per_second already guards sim_seconds <= 0 (a
        # clock too coarse to resolve the run) by answering 0.0.
        "instr_per_sec": result.instructions_per_second,
        "ipc": result.ipc,
        # Effective per-row, not just the global env flag: a future
        # tracer/hook user of this helper would silently lose the fast
        # path or the SoA kernel, and the row must say so.
        "fastpath_enabled": processor.fastpath_enabled,
        "kernel": processor.kernel_used,
        "fast_forwarded_cycles": processor.fast_forwarded_cycles,
        "fast_forward_fraction": (
            processor.fast_forwarded_cycles / total_cycles if total_cycles else 0.0
        ),
    }


def _bench_batch(budget: int, seed: int) -> Dict:
    """Measure ``run_many`` batch amortization over eight design points.

    The same (scheme, workload) sweep is executed twice from cold —
    once as independent :func:`repro.sim.runner.run_workload` calls
    (each paying its own trace generation and kernel-buffer
    allocation), once through one :func:`run_many` batch — and the
    payload records both wall times plus a bit-identity check between
    the two result sets.
    """
    from repro.exec.request import RunRequest
    from repro.sim.runner import run_workload
    from repro.workloads import get_workload

    labels = ("conventional", "storesets", "dmdc", "value")
    requests = [
        RunRequest(CONFIG2.with_scheme(SchemeConfig.from_label(label)),
                   name, budget, seed)
        for label in labels for name in QUICK_MIX
    ]

    start = time.perf_counter()
    singles = [
        run_workload(request.config, get_workload(request.workload),
                     max_instructions=request.budget, seed=request.seed)
        for request in requests
    ]
    wall_individual = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_many(requests)
    wall_run_many = time.perf_counter() - start

    return {
        "points": len(requests),
        "instructions_per_run": budget,
        "design_points": [request.describe() for request in requests],
        "wall_seconds_individual": wall_individual,
        "wall_seconds_run_many": wall_run_many,
        "batch_speedup_wall": (
            wall_individual / wall_run_many if wall_run_many else 0.0),
        "sim_seconds_individual": sum(r.sim_seconds for r in singles),
        "sim_seconds_run_many": sum(r.sim_seconds for r in batched),
        "identical_results": (
            [r.to_dict() for r in singles] == [r.to_dict() for r in batched]),
    }


def run_bench(
    instructions: Optional[int] = None,
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
    seed: int = 1,
    progress=None,
    repeats: int = 1,
) -> Dict:
    """Run the benchmark suite; return the ``BENCH_simulator.json`` payload.

    ``progress``, when given, is called with one status string per
    completed (workload, scheme) pair.  ``repeats`` re-times each pair
    that many times and keeps the fastest (see :func:`_bench_one`) — the
    committed payload uses ``repeats=3`` so a noisy co-tenant cannot
    masquerade as a simulator regression.
    """
    from repro.workloads import get_workload

    budget = instructions if instructions is not None else instruction_budget()
    if quick:
        budget = min(budget, 4_000)
    mix = tuple(workloads) if workloads else (QUICK_MIX if quick else DEFAULT_MIX)
    schemes = QUICK_SCHEMES if quick else FULL_SCHEMES

    # Untimed interpreter warm-up on the cheapest pair.
    warm_trace = get_workload(mix[0]).generate(min(budget, 3_000) + 2_000)
    _bench_one(CONFIG2.with_scheme(schemes[0][1]), warm_trace,
               min(budget, 3_000), seed)

    traces = {name: get_workload(name).generate(budget + 2_000) for name in mix}
    wall_start = time.perf_counter()
    scheme_rows: Dict[str, Dict] = {}
    for label, scheme_cfg in schemes:
        config = CONFIG2.with_scheme(scheme_cfg)
        per_workload: Dict[str, Dict] = {}
        total_instr = 0
        total_cycles = 0
        total_seconds = 0.0
        scheme_wall_start = time.perf_counter()
        for name in mix:
            row = _bench_one(config, traces[name], budget, seed, repeats)
            per_workload[name] = row
            total_instr += row["instructions"]
            total_cycles += row["cycles"]
            total_seconds += row["sim_seconds"]
            if progress is not None:
                progress(f"{label:12s} {name:8s} {row['instr_per_sec']:>10.0f} instr/s")
        scheme_wall = time.perf_counter() - scheme_wall_start
        scheme_rows[label] = {
            "instructions": total_instr,
            "cycles": total_cycles,
            "sim_seconds": total_seconds,
            "wall_seconds": scheme_wall,
            "instr_per_sec": total_instr / total_seconds if total_seconds else 0.0,
            "wall_instr_per_sec": total_instr / scheme_wall if scheme_wall else 0.0,
            "per_workload": per_workload,
        }

    agg_instr = sum(r["instructions"] for r in scheme_rows.values())
    agg_seconds = sum(r["sim_seconds"] for r in scheme_rows.values())
    wall_seconds = time.perf_counter() - wall_start

    batch = _bench_batch(min(budget, 4_000), seed)

    return {
        "schema": 3,
        "kind": "simulator-throughput",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "machine": _machine_info(),
        "config": "config2",
        "instructions_per_run": budget,
        "seed": seed,
        "quick": quick,
        "repeats": max(1, repeats),
        "workloads": list(mix),
        # repro: noqa[REPRO011] — reporting the raw gate, as above.
        "fastpath_enabled": not bool(os.environ.get(NO_FASTPATH_ENV)),  # repro: noqa[REPRO011]
        "knobs": _effective_knobs(),
        "wall_seconds": wall_seconds,
        "schemes": scheme_rows,
        "batch": batch,
        "aggregate_instr_per_sec": agg_instr / agg_seconds if agg_seconds else 0.0,
        # Honest end-to-end rate over wall time (trace generation and
        # prewarm included) — no cache to hide behind, by construction.
        "aggregate_instr_per_sec_wall": (
            agg_instr / wall_seconds if wall_seconds else 0.0),
    }


def write_bench(payload: Dict, path: str = BENCH_FILENAME) -> str:
    """Write the benchmark payload as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def validate_payload(payload: Dict) -> List[str]:
    """Sanity-check a benchmark payload; return a list of problems (CI)."""
    problems = []
    for key in ("schema", "git_sha", "machine", "workloads", "schemes",
                "aggregate_instr_per_sec", "instructions_per_run", "knobs"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if "knobs" in payload and "fastpath_enabled" not in payload["knobs"]:
        problems.append("knobs missing fastpath_enabled provenance")
    if payload.get("schema", 0) >= 3:
        if "kernel" not in payload.get("knobs", {}):
            problems.append("knobs missing kernel provenance")
        batch = payload.get("batch")
        if not batch:
            problems.append("missing run_many batch row")
        else:
            if batch.get("points", 0) < 8:
                problems.append("batch row covers fewer than 8 design points")
            if not batch.get("identical_results", False):
                problems.append("batch results diverge from individual runs")
    for label, row in payload.get("schemes", {}).items():
        if row.get("instructions", 0) <= 0:
            problems.append(f"scheme {label}: no instructions committed")
        if row.get("instr_per_sec", 0) <= 0:
            problems.append(f"scheme {label}: non-positive throughput")
        if not row.get("per_workload"):
            problems.append(f"scheme {label}: missing per-workload rows")
        for name, sub in (row.get("per_workload") or {}).items():
            if sub.get("sim_seconds", 0) <= 0:
                problems.append(
                    f"scheme {label}/{name}: sim_seconds not resolved "
                    "(clock too coarse?)")
            if "fastpath_enabled" not in sub:
                problems.append(
                    f"scheme {label}/{name}: missing fastpath provenance")
            if payload.get("schema", 0) >= 3 and "kernel" not in sub:
                problems.append(
                    f"scheme {label}/{name}: missing kernel provenance")
    return problems
