"""Simulator throughput benchmarking (the ``repro bench`` subcommand)."""

from repro.perf.bench import (
    BENCH_FILENAME,
    DEFAULT_MIX,
    QUICK_MIX,
    run_bench,
    write_bench,
)

__all__ = [
    "BENCH_FILENAME",
    "DEFAULT_MIX",
    "QUICK_MIX",
    "run_bench",
    "write_bench",
]
