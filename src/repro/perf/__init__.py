"""Performance benchmarking (the ``repro bench`` subcommand).

Two harnesses: :mod:`repro.perf.bench` measures raw simulator throughput
(``BENCH_simulator.json``); :mod:`repro.perf.loadgen` drives the sharded
service with concurrent clients and proves shard scaling plus response
bit-identity (``BENCH_service.json``).
"""

from repro.perf.bench import (
    BENCH_FILENAME,
    DEFAULT_MIX,
    QUICK_MIX,
    run_bench,
    write_bench,
)
from repro.perf.loadgen import (
    BENCH_SERVICE_FILENAME,
    run_service_bench,
    validate_service_payload,
    write_service_bench,
)

__all__ = [
    "BENCH_FILENAME",
    "BENCH_SERVICE_FILENAME",
    "DEFAULT_MIX",
    "QUICK_MIX",
    "run_bench",
    "run_service_bench",
    "validate_service_payload",
    "write_bench",
    "write_service_bench",
]
