"""Service scaling benchmark: ``repro bench --service``.

Boots the sharded service in-process at several shard counts, drives it
with k concurrent keep-alive clients x m design points each, and writes
the machine-readable ``BENCH_service.json`` proving (a) aggregate
throughput scales with shard count on a multi-core host and (b) the
sharding refactor is *invisible* to clients — every response is
bit-identical across shard counts, and dedup accounting stays
shard-local under the routing invariant (one content key -> one shard).

Methodology (see ``docs/performance.md``):

* every run disables the disk result cache — a scaling number inflated
  by cache hits from the previous shard count's run would be
  meaningless — and forces ``offload`` so 1-shard and N-shard runs pay
  the same per-simulation dispatch cost;
* the **throughput phase** gives each client a disjoint set of design
  points, so the simulated work is exactly ``clients x points`` at
  every shard count, independent of timing;
* the **dedup phase** is untimed: all clients post the same hot points
  in barrier lockstep, which must coalesce shard-locally (that it does
  is asserted, not assumed);
* clients precompute each point's home shard from its content key and
  cross-check ``/metrics`` per-shard accounting against that routing —
  a failed cross-check is recorded in the payload and fails validation;
* ``speedup`` is the ratio of throughput-phase requests/second against
  the first (baseline) shard count.

The payload records machine + git provenance like ``BENCH_simulator.json``
because a 1-core box *cannot* show shard scaling: there, the harness
still proves bit-identity and shard-local dedup, and
:func:`validate_service_payload` only enforces the speedup floor when
the recorded machine has the cores to express it.
"""

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.options import EngineOptions
from repro.perf.bench import _git_sha, _machine_info
from repro.service.client import ServiceClient
from repro.service.schema import parse_run_payload
from repro.service.server import ServiceConfig, create_server
from repro.service.shards import shard_for_key

#: Default output file, at the repository root by convention.
BENCH_SERVICE_FILENAME = "BENCH_service.json"

#: Workload/scheme wheels the generated design points cycle through —
#: the bench mix plus the headline schemes, so points differ in trace
#: *and* in checking machinery.
POINT_WORKLOADS = ("gzip", "mcf", "twolf", "equake")
POINT_SCHEMES = ("conventional", "dmdc", "storesets", "value")

#: Speedup floor the committed payload must clear at >= 4 shards on a
#: host with >= 4 cores (acceptance bar of the sharding refactor).
SPEEDUP_FLOOR = 2.5


def build_points(count: int, instructions: int, seed: int,
                 salt: int = 0) -> List[Dict[str, object]]:
    """``count`` distinct run payloads, deterministic in (seed, salt).

    Distinctness comes from the ``seed`` field of each payload (a seed
    change reroutes the content key), so points cover the full
    workload x scheme wheel however small ``count`` is.
    """
    points: List[Dict[str, object]] = []
    for index in range(count):
        points.append({
            "workload": POINT_WORKLOADS[index % len(POINT_WORKLOADS)],
            "scheme": POINT_SCHEMES[(index // len(POINT_WORKLOADS))
                                    % len(POINT_SCHEMES)],
            "instructions": instructions,
            "seed": seed * 10_000 + salt * 1_000 + index,
        })
    return points


def point_key(point: Dict[str, object]) -> str:
    """The engine content key a run payload will be normalized to."""
    return parse_run_payload(dict(point)).cache_key()


def _expected_routing(requests_per_key: Dict[str, int],
                      shards: int) -> List[int]:
    """Per-shard request counts implied by client-side routing."""
    counts = [0] * shards
    for key, requests in requests_per_key.items():
        counts[shard_for_key(key, shards)] += requests
    return counts


class _ClientWorker(threading.Thread):
    """One load-generating client: disjoint phase, then hot lockstep."""

    def __init__(self, index: int, client: ServiceClient,
                 own_points: Sequence[Dict[str, object]],
                 hot_points: Sequence[Dict[str, object]],
                 start: threading.Barrier, mid: threading.Barrier,
                 hot_gates: Sequence[threading.Barrier]) -> None:
        super().__init__(name=f"loadgen-client-{index}", daemon=True)
        self.index = index
        self.client = client
        self.own_points = list(own_points)
        self.hot_points = list(hot_points)
        self.start_barrier = start
        self.mid_barrier = mid
        self.hot_gates = hot_gates
        self.responses: Dict[str, Dict[str, object]] = {}
        self.error: Optional[BaseException] = None

    def run(self) -> None:  # pragma: no cover - exercised via harness
        try:
            self.start_barrier.wait(timeout=120)
            for point in self.own_points:
                self.responses[_point_id(point)] = self.client.run_point(point)
            self.mid_barrier.wait(timeout=600)
            for gate, point in zip(self.hot_gates, self.hot_points):
                gate.wait(timeout=600)
                self.responses[_point_id(point)] = self.client.run_point(point)
        except BaseException as exc:  # noqa: BLE001 - reported by harness
            self.error = exc
            _break_barriers(self.start_barrier, self.mid_barrier,
                            *self.hot_gates)
        finally:
            self.client.close()


def _point_id(point: Dict[str, object]) -> str:
    import json

    return json.dumps(point, sort_keys=True)


def _break_barriers(*barriers: threading.Barrier) -> None:
    for barrier in barriers:
        barrier.abort()


def _run_one(shards: int, *, clients: int, points_per_client: int,
             hot_points: int, instructions: int, seed: int,
             workers_per_shard: int,
             progress: Optional[Callable[[str], None]] = None,
             ) -> Tuple[Dict[str, object], Dict[str, Dict[str, object]]]:
    """One shard count: boot, drive, scrape, drain.  Returns the run row
    plus every response body keyed by canonical point id."""
    own = [build_points(points_per_client, instructions, seed, salt=c + 1)
           for c in range(clients)]
    hot = build_points(hot_points, instructions, seed, salt=0)
    throughput_requests = clients * points_per_client
    total_requests = throughput_requests + clients * hot_points

    requests_per_key: Dict[str, int] = {}
    for stream in own:
        for point in stream:
            requests_per_key[point_key(point)] = (
                requests_per_key.get(point_key(point), 0) + 1)
    hot_keys = [point_key(point) for point in hot]
    for key in hot_keys:
        requests_per_key[key] = requests_per_key.get(key, 0) + clients
    unique_points = len(requests_per_key)

    options = EngineOptions(
        cache_enabled=False,
        max_workers=shards * workers_per_shard,
        shards=shards,
    )
    config = ServiceConfig(
        host="127.0.0.1", port=0,
        max_queue=max(256, total_requests),
        batch_window=0.005,
        request_timeout=600.0,
        drain_timeout=120.0,
        engine_options=options,
        shards=shards,
        offload=True,
    )
    server = create_server(config)
    server_thread = threading.Thread(target=server.serve_forever,
                                     name="loadgen-serve", daemon=True)
    server_thread.start()
    port = server.server_address[1]

    start = threading.Barrier(clients + 1)
    mid = threading.Barrier(clients + 1)
    hot_gates = [threading.Barrier(clients) for _ in hot]
    workers = [
        _ClientWorker(
            index, ServiceClient(port=port, timeout=600.0),
            own[index], hot, start, mid, hot_gates)
        for index in range(clients)
    ]
    try:
        for worker in workers:
            worker.start()
        start.wait(timeout=120)
        wall_start = time.perf_counter()
        mid.wait(timeout=600)
        wall_seconds = time.perf_counter() - wall_start
        for worker in workers:
            worker.join(timeout=600)
        errors = [w.error for w in workers if w.error is not None]
        if errors:
            raise RuntimeError(f"load generator client failed: {errors[0]}")

        snapshot = ServiceClient(port=port, timeout=60.0).metrics()
    finally:
        server.drain_and_stop()
        server_thread.join(timeout=10.0)
        server.server_close()

    per_shard = []
    for entry in snapshot["shards"]:
        per_shard.append({
            "shard": entry["shard"],
            "received": entry["service"]["received"],
            "unique_submitted": entry["service"]["unique_submitted"],
            "coalesced_inflight": entry["service"]["coalesced_inflight"],
            "completed": entry["service"]["completed"],
            "errors": entry["service"]["errors"],
            "queue_depth": entry["service"]["queue_depth"],
            "in_flight": entry["service"]["in_flight"],
            "executed": entry["engine"]["executed"],
            "batches": entry["batching"]["batches"],
            "max_batch": entry["batching"]["max_batch"],
            "p99_seconds": entry["latency"]["p99_seconds"],
        })
    expected = _expected_routing(requests_per_key, shards)
    routing_ok = [row["received"] for row in per_shard] == expected

    responses: Dict[str, Dict[str, object]] = {}
    for worker in workers:
        for point_id, body in worker.responses.items():
            previous = responses.get(point_id)
            if previous is not None and previous != body:
                routing_ok = False  # same point answered two ways
            responses[point_id] = body

    service = snapshot["service"]
    sim = snapshot["simulator"]
    row: Dict[str, object] = {
        "shards": shards,
        "workers_per_shard": workers_per_shard,
        "requests": total_requests,
        "unique_points": unique_points,
        "throughput": {
            "requests": throughput_requests,
            "wall_seconds": wall_seconds,
            "requests_per_second": (
                throughput_requests / wall_seconds if wall_seconds else 0.0),
        },
        "dedup": {
            "hot_requests": clients * hot_points,
            "hot_unique": hot_points,
            "coalesced_inflight": service["coalesced_inflight"],
            "unique_submitted": service["unique_submitted"],
        },
        "simulator": {
            "runs": sim["runs"],
            "instructions": sim["instructions"],
        },
        "errors": service["errors"],
        "timeouts": service["timeouts"],
        "rejected_saturation": service["rejected_saturation"],
        "routing": {
            "expected_received_per_shard": expected,
            "observed_received_per_shard": [r["received"] for r in per_shard],
            "ok": routing_ok,
        },
        "per_shard": per_shard,
    }
    if progress is not None:
        progress(f"{shards} shard(s): "
                 f"{row['throughput']['requests_per_second']:.1f} req/s "
                 f"over {throughput_requests} points, "
                 f"coalesced {service['coalesced_inflight']}")
    return row, responses


def run_service_bench(
    shard_counts: Sequence[int] = (1, 2, 4),
    clients: int = 4,
    points_per_client: int = 8,
    hot_points: int = 2,
    instructions: int = 4_000,
    seed: int = 1,
    workers_per_shard: int = 1,
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the scaling benchmark; return the ``BENCH_service.json`` payload.

    ``quick`` shrinks every axis for CI smoke: the structural guarantees
    (bit-identity, routing, dedup) are still asserted at full strength,
    only the statistical throughput signal shrinks.
    """
    if quick:
        instructions = min(instructions, 800)
        clients = min(clients, 3)
        points_per_client = min(points_per_client, 4)
        hot_points = min(hot_points, 2)
        shard_counts = tuple(shard_counts)[:2] or (1, 2)
    if not shard_counts:
        raise ValueError("at least one shard count is required")
    if any(count < 1 for count in shard_counts):
        raise ValueError("shard counts must be positive")

    runs: List[Dict[str, object]] = []
    baseline_responses: Optional[Dict[str, Dict[str, object]]] = None
    baseline_rate = 0.0
    for count in shard_counts:
        row, responses = _run_one(
            count, clients=clients, points_per_client=points_per_client,
            hot_points=hot_points, instructions=instructions, seed=seed,
            workers_per_shard=workers_per_shard, progress=progress)
        if baseline_responses is None:
            baseline_responses = responses
            baseline_rate = row["throughput"]["requests_per_second"]
            row["bit_identical_vs_baseline"] = None
            row["speedup_vs_baseline"] = 1.0
        else:
            row["bit_identical_vs_baseline"] = responses == baseline_responses
            row["speedup_vs_baseline"] = (
                row["throughput"]["requests_per_second"] / baseline_rate
                if baseline_rate else 0.0)
        runs.append(row)

    best = max(runs, key=lambda r: r["shards"])
    return {
        "schema": 1,
        "kind": "service-scaling",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "machine": _machine_info(),
        "seed": seed,
        "clients": clients,
        "points_per_client": points_per_client,
        "hot_points": hot_points,
        "instructions_per_point": instructions,
        "workers_per_shard": workers_per_shard,
        "quick": quick,
        "knobs": {
            "cache_enabled": False,
            "offload": True,
            "routing": "content-address hash -> shard",
        },
        "shard_counts": list(shard_counts),
        "runs": runs,
        "scaling": {
            "baseline_shards": runs[0]["shards"],
            "max_shards": best["shards"],
            "speedup_at_max_shards": best["speedup_vs_baseline"],
            "speedup_floor": SPEEDUP_FLOOR,
        },
    }


def validate_service_payload(payload: Dict) -> List[str]:
    """Sanity-check a service-scaling payload; return problems (CI gate).

    Structural guarantees (bit-identity, routing, dedup accounting, no
    errors) are unconditional.  The :data:`SPEEDUP_FLOOR` at >= 4 shards
    is enforced only for non-quick payloads recorded on a host with >= 4
    cores — a 1-core box cannot express shard scaling and its payload
    says so through the machine provenance.
    """
    problems: List[str] = []
    for key in ("schema", "kind", "git_sha", "machine", "runs", "scaling",
                "clients", "instructions_per_point", "knobs"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    if payload["kind"] != "service-scaling":
        problems.append(f"unexpected kind {payload['kind']!r}")
    if payload["knobs"].get("cache_enabled") is not False:
        problems.append("throughput run must disable the result cache")
    runs = payload["runs"]
    if not runs:
        problems.append("no runs recorded")
        return problems
    for row in runs:
        label = f"run[{row.get('shards')} shards]"
        if row.get("errors") or row.get("timeouts"):
            problems.append(f"{label}: errors/timeouts recorded")
        if row.get("rejected_saturation"):
            problems.append(f"{label}: load generator saturated the queue")
        routing = row.get("routing") or {}
        if not routing.get("ok"):
            problems.append(f"{label}: per-shard accounting does not match "
                            "content-key routing")
        dedup = row.get("dedup") or {}
        if dedup.get("hot_requests", 0) > dedup.get("hot_unique", 0):
            if dedup.get("coalesced_inflight", 0) <= 0:
                problems.append(f"{label}: hot points never coalesced")
        if len(row.get("per_shard") or []) != row.get("shards"):
            problems.append(f"{label}: per-shard block count mismatch")
        if row.get("bit_identical_vs_baseline") is False:
            problems.append(f"{label}: responses diverged from baseline")
    scaling = payload["scaling"]
    cores = (payload["machine"] or {}).get("cpu_count") or 1
    if (not payload.get("quick") and cores >= 4
            and scaling.get("max_shards", 0) >= 4):
        if scaling.get("speedup_at_max_shards", 0.0) < SPEEDUP_FLOOR:
            problems.append(
                f"speedup {scaling.get('speedup_at_max_shards'):.2f}x at "
                f"{scaling.get('max_shards')} shards is under the "
                f"{SPEEDUP_FLOOR}x floor on a {cores}-core host")
    return problems


def write_service_bench(payload: Dict,
                        path: str = BENCH_SERVICE_FILENAME) -> str:
    """Write the payload as stable, diff-friendly JSON."""
    import json

    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


__all__ = [
    "BENCH_SERVICE_FILENAME",
    "SPEEDUP_FLOOR",
    "build_points",
    "point_key",
    "run_service_bench",
    "validate_service_payload",
    "write_service_bench",
]
