"""Declarative design-space grids: :class:`GridSpec` -> canonical points.

A grid is an ordered mapping of axes to value lists, plus per-point
defaults, optional include/exclude predicates, and an optional baseline
scheme injected once per distinct machine slice.  Expansion is fully
deterministic: axes combine by :func:`itertools.product` in declaration
order (the last axis varies fastest), every combination is rendered
through the one point codec (:mod:`repro.sweeps.points`), and duplicate
design points collapse onto their first occurrence by content address.

Axis vocabulary (an axis name is resolved in this order):

* point fields — ``workload``, ``scheme``, ``config``, ``instructions``,
  ``seed``;
* scheme knobs, spelled as their canonical label tokens — ``table``
  (checking-table entries), ``regs`` (YLA registers), ``gran`` (YLA
  interleaving granularity, bytes), ``queue`` (checking-queue entries),
  ``entries`` (Bloom filter entries);
* any :class:`MachineConfig` field (``width``, ``lq_size``,
  ``invalidation_rate``, ...) — routed into the point's ``overrides``.

Predicates receive one flat ``{axis/base name: value}`` dict per
combination and prune it before any request is built, so constraint
logic (e.g. "skip table>=4096 at width 4") costs nothing.

``PRESETS`` holds the named grids of the paper's figure sweeps plus the
committed demo/CI grids; ``repro sweep --preset NAME`` runs them.
"""

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.exec.request import RunRequest
from repro.sim.config import MachineConfig, SchemeConfig
from repro.sweeps.points import (
    PointSpecError,
    machine_overrides,
    normalize_point,
    parse_scheme,
    point_for_request,
)
from repro.workloads import SyntheticWorkload, WorkloadSpec

__all__ = [
    "PRESETS",
    "SCHEME_AXES",
    "GridError",
    "GridExpansion",
    "GridSpec",
    "get_preset",
]

#: Scheme-knob axes, spelled exactly as the canonical label codec spells
#: them (``dmdc-table512-regs4`` has ``table=512, regs=4``).
SCHEME_AXES: Dict[str, str] = {
    "table": "table_entries",
    "regs": "yla_registers",
    "gran": "yla_granularity",
    "queue": "checking_queue_entries",
    "entries": "bloom_entries",
}

_POINT_AXES = ("workload", "scheme", "config", "instructions", "seed")
_MACHINE_AXES = frozenset(
    f.name for f in dataclass_fields(MachineConfig)
    if f.name not in ("name", "scheme"))

Predicate = Callable[[Dict[str, Any]], bool]


class GridError(ReproError):
    """A grid specification is malformed (bad axis name, empty axis, ...)."""


def _check_axis(name: str, values: Sequence[Any]) -> None:
    if name not in _POINT_AXES and name not in SCHEME_AXES \
            and name not in _MACHINE_AXES:
        raise GridError(
            f"unknown axis {name!r}; axes are point fields {_POINT_AXES}, "
            f"scheme knobs {tuple(SCHEME_AXES)}, or MachineConfig fields")
    if not isinstance(values, (list, tuple)) or not values:
        raise GridError(f"axis {name!r} needs a non-empty list of values")


@dataclass
class GridExpansion:
    """The deterministic rendering of one :class:`GridSpec`.

    ``points[i]``, ``requests[i]`` and ``keys[i]`` describe the same
    design point; baseline points (if any) sit at the tail, one per
    distinct machine slice.  The accounting fields say how the raw
    product was pruned: ``raw_points`` combinations, minus ``excluded``
    (predicates), minus ``collapsed`` (content-address duplicates),
    plus ``baseline_added``.
    """

    name: str
    points: List[Dict[str, Any]]
    requests: List[RunRequest]
    keys: List[str]
    raw_points: int
    excluded: int
    collapsed: int
    baseline_added: int

    def __len__(self) -> int:
        return len(self.points)

    def digest(self) -> str:
        """Content identity of the expansion, for ledger headers.

        Built from the points' cache keys, so it covers the grid shape
        AND the simulator source fingerprint: a ledger written by a
        different simulator (or grid) can never be silently resumed.
        """
        blob = json.dumps({"name": self.name, "keys": self.keys},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class GridSpec:
    """A declarative design-space grid (see the module docstring).

    ``axes`` maps axis name -> list of values, combined in declaration
    order with the last axis varying fastest.  ``base`` supplies
    per-point defaults in the same vocabulary.  ``include`` keeps only
    combinations it accepts; ``exclude`` drops the ones it accepts
    (both optional, both receive the flat ``{name: value}`` dict).
    ``baseline`` names a scheme injected once per distinct machine
    slice (workload x config x budget x seed x overrides) so reports
    always have a denominator.
    """

    axes: Dict[str, Sequence[Any]]
    base: Dict[str, Any] = field(default_factory=dict)
    include: Optional[Predicate] = None
    exclude: Optional[Predicate] = None
    baseline: Optional[str] = None
    name: str = "grid"

    def __post_init__(self) -> None:
        self.axes = dict(self.axes)
        if not self.axes:
            raise GridError("a grid needs at least one axis")
        for axis, values in self.axes.items():
            _check_axis(axis, values)
        for key in self.base:
            if key != "overrides" and key not in _POINT_AXES \
                    and key not in SCHEME_AXES and key not in _MACHINE_AXES:
                raise GridError(f"unknown base field {key!r}")
        if self.baseline is not None:
            parse_scheme(self.baseline)  # fail fast on a bad label

    # -- expansion ---------------------------------------------------------
    def _render(self, ctx: Dict[str, Any]) -> Dict[str, Any]:
        """One flat axis/base assignment -> point payload."""
        if "workload" not in ctx:
            raise GridError("no 'workload' axis or base value")
        workload = ctx["workload"]
        if isinstance(workload, SyntheticWorkload):
            workload = workload.spec
        scheme = parse_scheme(ctx.get("scheme", "conventional"))
        knobs = {SCHEME_AXES[axis]: ctx[axis]
                 for axis in SCHEME_AXES if axis in ctx}
        for field_name, value in knobs.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise GridError(
                    f"scheme knob {field_name} needs a positive int, "
                    f"got {value!r}")
        if knobs:
            scheme = replace(scheme, **knobs)
        overrides = dict(ctx.get("overrides") or {})
        overrides.update({name: ctx[name] for name in _MACHINE_AXES
                          if name in ctx})
        payload: Dict[str, Any] = {
            "workload": workload,
            "scheme": scheme.label(),
            "config": ctx.get("config", "config2"),
        }
        if overrides:
            payload["overrides"] = overrides
        if "instructions" in ctx:
            payload["instructions"] = ctx["instructions"]
        if "seed" in ctx:
            payload["seed"] = ctx["seed"]
        return payload

    def expand(self) -> GridExpansion:
        """Render the grid into canonical, deduplicated design points."""
        names = list(self.axes)
        seen: Dict[str, int] = {}
        points: List[Dict[str, Any]] = []
        requests: List[RunRequest] = []
        keys: List[str] = []
        raw = excluded = collapsed = 0
        slices: Dict[str, Dict[str, Any]] = {}
        for combo in itertools.product(*(self.axes[n] for n in names)):
            raw += 1
            ctx = {**self.base, **dict(zip(names, combo))}
            if (self.include is not None and not self.include(ctx)) \
                    or (self.exclude is not None and self.exclude(ctx)):
                excluded += 1
                continue
            try:
                request = normalize_point(self._render(ctx))
            except PointSpecError as exc:
                raise GridError(f"grid {self.name!r}: {exc}") from None
            key = request.cache_key()
            if key in seen:
                collapsed += 1
                continue
            seen[key] = len(points)
            points.append(point_for_request(request))
            requests.append(request)
            keys.append(key)
            slice_id = self._slice_id(request)
            slices.setdefault(slice_id, points[-1])
        baseline_added = 0
        if self.baseline is not None:
            label = parse_scheme(self.baseline).label()
            for point in slices.values():
                base_point = dict(point)
                base_point["scheme"] = label
                request = normalize_point(base_point)
                key = request.cache_key()
                if key in seen:
                    continue
                seen[key] = len(points)
                points.append(point_for_request(request))
                requests.append(request)
                keys.append(key)
                baseline_added += 1
        return GridExpansion(self.name, points, requests, keys,
                             raw, excluded, collapsed, baseline_added)

    @staticmethod
    def _slice_id(request: RunRequest) -> str:
        """Everything about a point except its scheme (baseline identity)."""
        point = point_for_request(request)
        point.pop("scheme")
        return json.dumps(point, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        return self.expand().digest()

    # -- the legacy kwargs vocabulary --------------------------------------
    @classmethod
    def from_kwargs(cls,
                    workloads: Sequence[Union[str, WorkloadSpec,
                                              SyntheticWorkload]],
                    schemes: Sequence[Union[str, SchemeConfig]] =
                    ("conventional", "dmdc"),
                    config: Union[str, MachineConfig] = "config2",
                    *,
                    instructions: Optional[int] = None,
                    seed: int = 1,
                    overrides: Optional[Dict[str, Any]] = None,
                    baseline: Optional[str] = None,
                    name: str = "sweep") -> "GridSpec":
        """The ``repro.api.sweep(workloads, schemes, ...)`` vocabulary.

        Scheme-major like the historical kwargs form: ``scheme`` is the
        first (slowest-varying) axis, ``workload`` the second, so points
        expand in exactly the order legacy callers submitted them.
        """
        if instructions is None:
            from repro.sim.runner import instruction_budget
            instructions = instruction_budget()
        merged = dict(overrides or {})
        if isinstance(config, MachineConfig):
            try:
                derived = machine_overrides(config)
            except PointSpecError as exc:
                raise GridError(str(exc)) from None
            derived.update(merged)
            merged = derived
            config = config.name
        base: Dict[str, Any] = {"config": config,
                                "instructions": instructions, "seed": seed}
        if merged:
            base["overrides"] = merged
        return cls(axes={"scheme": list(schemes),
                         "workload": list(workloads)},
                   base=base, baseline=baseline, name=name)


# -- named presets ---------------------------------------------------------
def _demo64() -> GridSpec:
    """The committed >=64-point demo: scheme x table size x YLA count."""
    return GridSpec(
        name="demo64",
        axes={
            "scheme": ["dmdc", "dmdc-local"],
            "table": [512, 1024, 2048, 4096],
            "regs": [1, 2, 4, 8],
            "workload": ["gzip", "mcf"],
        },
        base={"config": "config2", "instructions": 3000, "seed": 1},
        baseline="conventional",
    )


def _ci_smoke() -> GridSpec:
    """A tiny grid for CI: four DMDC points + one baseline, ~seconds."""
    return GridSpec(
        name="ci-smoke",
        axes={
            "scheme": ["dmdc"],
            "table": [256, 512],
            "regs": [2, 4],
            "workload": ["gzip"],
        },
        base={"config": "config2", "instructions": 1200, "seed": 1},
        baseline="conventional",
    )


def _yla_filtering() -> GridSpec:
    """Paper Figs. 5-7 territory: YLA register count x interleaving."""
    return GridSpec(
        name="yla-filtering",
        axes={
            "scheme": ["yla"],
            "regs": [1, 2, 4, 8, 16],
            "gran": [8, 128],
            "workload": ["gzip", "mcf", "parser", "vortex"],
        },
        base={"config": "config2", "instructions": 12_000, "seed": 1},
        baseline="conventional",
    )


def _table_ablation() -> GridSpec:
    """Checking-table capacity sweep for global vs local DMDC."""
    return GridSpec(
        name="table-ablation",
        axes={
            "scheme": ["dmdc", "dmdc-local"],
            "table": [256, 512, 1024, 2048, 4096],
            "workload": ["gzip", "mcf"],
        },
        base={"config": "config2", "instructions": 12_000, "seed": 1},
        baseline="conventional",
    )


def _width_scaling() -> GridSpec:
    """Machine width x scheme (the compare_widths.py study, scaled up).

    Excludes the 16-wide conventional point on config1: the narrow
    machine cannot feed it, and the slot documents how constraint
    predicates prune a grid.
    """
    return GridSpec(
        name="width-scaling",
        axes={
            "scheme": ["conventional", "dmdc"],
            "width": [4, 8, 16],
            "config": ["config1", "config2"],
            "workload": ["gzip", "mcf"],
        },
        base={"instructions": 12_000, "seed": 1},
        exclude=lambda ctx: ctx["width"] == 16 and ctx["config"] == "config1",
    )


PRESETS: Dict[str, Callable[[], GridSpec]] = {
    "demo64": _demo64,
    "ci-smoke": _ci_smoke,
    "yla-filtering": _yla_filtering,
    "table-ablation": _table_ablation,
    "width-scaling": _width_scaling,
}


def get_preset(name: str) -> GridSpec:
    """A fresh :class:`GridSpec` for a named preset grid."""
    if name not in PRESETS:
        raise GridError(
            f"unknown preset {name!r}; choices: {sorted(PRESETS)}")
    return PRESETS[name]()
