"""Fan a sweep's missing points out across a pool of backends.

:func:`run_fanout` is the multi-worker execution stage of
:func:`repro.sweeps.orchestrator.run_sweep` (``workers=``): it
partitions the pending points of a grid across N backends — several
``repro serve`` instances, or a local pool of single-slot engine
processes — and streams completed entries back into the one
:class:`~repro.sweeps.ledger.SweepLedger`.

Design, in the order the invariants demand it:

* **Dynamic claiming, not static partitioning.**  Workers pull batches
  from a shared :class:`_FanoutQueue` as they finish (per-worker
  in-flight windows, shrinking toward the tail), so a slow backend
  never strands its fixed share.  When the queue runs dry a worker may
  **steal** one straggler — speculatively duplicating a point that is
  still in flight elsewhere.  Duplication is safe because points are
  content-addressed and the first completion wins.
* **Per-point quarantine.**  A failing batch is requeued as singletons;
  a failing singleton is retried once on a different worker; a second
  failure marks the point *failed by name* without sinking the sweep —
  the outcome comes back ``complete=False`` listing the casualties.
* **The ledger stays the single writer in grid order.**  Workers finish
  out of order; the :class:`_OrderedWriter` reorder-buffers entries and
  appends only the contiguous grid-order prefix, so the final ledger is
  **byte-identical** to a 1-worker run, and a fan-out killed mid-flight
  leaves a clean resumable prefix behind (zero re-simulation on
  resume).

Lock discipline (``repro check --concurrency`` analyzes this module):
the two locks — ``_FanoutQueue._lock`` and ``_OrderedWriter._lock`` —
are leaves of the project hierarchy and are never nested with each
other or anything else; every blocking operation (engine runs, HTTP
exchanges, ledger fsyncs) happens with no lock held.
"""

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.exec.engine import ExecutionEngine
from repro.exec.request import RunRequest
from repro.sweeps.ledger import SweepLedger
from repro.sweeps.points import ledger_entry
from repro.sweeps.result import WorkerStats
from repro.utils.sync import holds, make_lock

__all__ = ["FanoutError", "run_fanout"]

#: A point is attempted at most this many times (original + one retry
#: on a different worker) before it is reported failed by name.
MAX_POINT_ATTEMPTS = 2


class FanoutError(ReproError):
    """A failure that invalidates the whole fan-out (backend mismatch)."""


@dataclass
class _Task:
    """One pending design point, threaded through the work queue."""

    seq: int                    # position in the pending sequence
    index: int                  # position in the full grid expansion
    request: RunRequest
    key: str
    point: Dict[str, Any]
    singleton: bool = False     # quarantined: must run alone
    stolen: bool = False        # already speculatively duplicated
    attempts: int = 0
    tried: Set[str] = field(default_factory=set)


class _FanoutQueue:
    """The shared work queue: claim / steal / quarantine / terminate.

    All mutable state is guarded by ``_lock`` (via the ``_work``
    condition built over it); workers block in :meth:`claim` until work
    appears or the sweep is finished.
    """

    _GUARDED_BY = {
        "_pending": "_lock",
        "_inflight": "_lock",
        "_completed": "_lock",
        "_failed": "_lock",
        "_active": "_lock",
        "_retried": "_lock",
        "_stolen": "_lock",
        "_abort": "_lock",
    }

    def __init__(self, tasks: Sequence[_Task],
                 worker_names: Sequence[str]) -> None:
        self._lock = make_lock("_FanoutQueue._lock")
        self._work = threading.Condition(self._lock)
        self._pending: List[_Task] = list(tasks)
        #: key -> (task, names of workers currently executing it).
        self._inflight: Dict[str, Tuple[_Task, Set[str]]] = {}
        self._completed: Set[str] = set()
        #: key -> (task, error text) for points that exhausted retries.
        self._failed: Dict[str, Tuple[_Task, str]] = {}
        self._active: Set[str] = set(worker_names)
        self._retried = 0
        self._stolen = 0
        self._abort: Optional[BaseException] = None

    # -- claiming ---------------------------------------------------------
    def claim(self, worker: str, window: int) -> List[_Task]:
        """Up to ``window`` tasks for ``worker``; ``[]`` means done.

        Blocks while the queue is momentarily empty but points are
        still in flight elsewhere (they may fail and requeue).  The
        claim size shrinks with the remaining backlog so the tail is
        spread across workers instead of lumped onto one.
        """
        with self._work:
            while True:
                if self._abort is not None:
                    return []
                batch = self._pick(worker, window)
                if batch:
                    for task in batch:
                        self._inflight[task.key] = (task, {worker})
                    return batch
                stolen = self._steal(worker)
                if stolen is not None:
                    return [stolen]
                if not self._pending and not self._inflight:
                    return []
                self._work.wait(timeout=1.0)

    @holds("_lock")
    def _pick(self, worker: str, window: int) -> List[_Task]:
        """Claimable pending tasks, preserving grid order (lock held)."""
        if not self._pending:
            return []
        share = len(self._pending) // max(1, len(self._active))
        take = max(1, min(window, share if share else 1))
        picked: List[_Task] = []
        passed: List[_Task] = []
        while self._pending and len(picked) < take:
            task = self._pending.pop(0)
            if not self._claimable(task, worker):
                passed.append(task)
                continue
            if task.singleton and picked:
                passed.append(task)
                break
            picked.append(task)
            if task.singleton:
                break
        self._pending[:0] = passed
        return picked

    @holds("_lock")
    def _claimable(self, task: _Task, worker: str) -> bool:
        # A quarantined task avoids workers it already failed on —
        # unless every live worker failed it, when anyone may retry.
        return worker not in task.tried or self._active <= task.tried

    @holds("_lock")
    def _steal(self, worker: str) -> Optional[_Task]:
        """Speculatively duplicate one straggler (lock held)."""
        if self._pending:
            return None
        for key, (task, executors) in self._inflight.items():
            if (worker not in executors and not task.stolen
                    and worker not in task.tried):
                task.stolen = True
                executors.add(worker)
                self._stolen += 1
                return task
        return None

    # -- outcomes ---------------------------------------------------------
    def complete(self, task: _Task) -> bool:
        """First completion wins; duplicates report ``False``."""
        with self._work:
            if task.key in self._completed:
                return False
            self._completed.add(task.key)
            self._inflight.pop(task.key, None)
            # A straggler retry that lands after a quarantine verdict
            # still counts — completion always wins.
            self._failed.pop(task.key, None)
            self._pending = [t for t in self._pending if t.key != task.key]
            self._work.notify_all()
            return True

    def fail(self, task: _Task, worker: str, error: BaseException) -> str:
        """Record a singleton failure: ``requeued`` / ``failed`` /
        ``absorbed`` (another copy of a stolen task is still running,
        or the point already completed elsewhere)."""
        with self._work:
            task.tried.add(worker)
            task.attempts += 1
            if task.key in self._completed:
                self._work.notify_all()
                return "absorbed"
            entry = self._inflight.get(task.key)
            if entry is not None:
                entry[1].discard(worker)
                if entry[1]:
                    self._work.notify_all()
                    return "absorbed"
            self._inflight.pop(task.key, None)
            if task.attempts >= MAX_POINT_ATTEMPTS:
                self._failed[task.key] = (task, str(error))
                self._work.notify_all()
                return "failed"
            task.singleton = True
            self._retried += 1
            self._pending.insert(0, task)
            self._work.notify_all()
            return "requeued"

    def requeue_split(self, tasks: Sequence[_Task], worker: str) -> None:
        """A failed multi-point batch: requeue every point as a
        singleton (no attempt charged — the poison is one point, and
        the split isolates it)."""
        with self._work:
            requeued: List[_Task] = []
            for task in tasks:
                entry = self._inflight.get(task.key)
                if entry is not None:
                    entry[1].discard(worker)
                    if entry[1]:
                        continue
                self._inflight.pop(task.key, None)
                if task.key in self._completed:
                    continue
                task.singleton = True
                requeued.append(task)
            self._retried += len(requeued)
            self._pending[:0] = requeued
            self._work.notify_all()

    def abort(self, error: BaseException) -> None:
        """A fatal, non-quarantinable failure: stop every worker."""
        with self._work:
            if self._abort is None:
                self._abort = error
            self._work.notify_all()

    def retire(self, worker: str) -> None:
        """Worker exits: requeue anything only it was executing."""
        with self._work:
            self._active.discard(worker)
            orphaned: List[_Task] = []
            for key in list(self._inflight):
                task, executors = self._inflight[key]
                executors.discard(worker)
                if not executors:
                    del self._inflight[key]
                    orphaned.append(task)
            self._pending[:0] = orphaned
            self._work.notify_all()

    # -- terminal snapshot ------------------------------------------------
    def outcome(self) -> Tuple[int, int, List[Tuple[_Task, str]],
                               Optional[BaseException]]:
        with self._work:
            failures = sorted(self._failed.values(),
                              key=lambda pair: pair[0].seq)
            return self._retried, self._stolen, failures, self._abort


class _OrderedWriter:
    """Reorder buffer between out-of-order workers and the ledger.

    Completions are deposited under ``_lock``; exactly one thread at a
    time (the ``_flushing`` flag) pops the contiguous next-in-sequence
    run and performs the ledger appends **outside** the lock, so no
    file I/O ever happens while a lock is held and the ledger only ever
    grows as a grid-order prefix — the resume contract.
    """

    _GUARDED_BY = {
        "_buffer": "_lock",
        "_next": "_lock",
        "_flushing": "_lock",
        "_done": "_lock",
    }

    def __init__(self, ledger: Optional[SweepLedger],
                 entries_by_key: Dict[str, Dict[str, Any]],
                 points: Sequence[Dict[str, Any]],
                 progress: Optional[Callable[..., None]],
                 done: int, total: int) -> None:
        self._lock = make_lock("_OrderedWriter._lock")
        #: seq -> (index, key, entry, source), or None for a skipped
        #: (permanently failed) sequence slot.
        self._buffer: Dict[int, Optional[Tuple[int, str, Dict[str, Any],
                                               str]]] = {}
        self._next = 0
        self._flushing = False
        self._done = done
        self._ledger = ledger
        self._entries = entries_by_key
        self._points = points
        self._progress = progress
        self._total = total

    def complete(self, task: _Task, entry: Dict[str, Any],
                 source: str) -> None:
        self._deposit(task.seq, (task.index, task.key, entry, source))

    def skip(self, task: _Task) -> None:
        """Advance the sequence past a permanently failed point so the
        tail behind it still reaches the ledger."""
        self._deposit(task.seq, None)

    def done_count(self) -> int:
        with self._lock:
            return self._done

    def _deposit(self, seq: int,
                 item: Optional[Tuple[int, str, Dict[str, Any], str]]) -> None:
        with self._lock:
            self._buffer[seq] = item
            if self._flushing:
                return
            self._flushing = True
        self._drain()

    def _drain(self) -> None:
        while True:
            batch: List[Tuple[int, str, Dict[str, Any], str, int]] = []
            with self._lock:
                while self._next in self._buffer:
                    item = self._buffer.pop(self._next)
                    self._next += 1
                    if item is None:
                        continue
                    self._done += 1
                    index, key, entry, source = item
                    batch.append((index, key, entry, source, self._done))
                if not batch:
                    self._flushing = False
                    return
            for index, key, entry, source, done in batch:
                self._entries[key] = entry
                if self._ledger is not None:
                    self._ledger.append(entry)
                if self._progress is not None:
                    self._progress(done, self._total, self._points[index],
                                   source)


# ---------------------------------------------------------------------------
# workers
# ---------------------------------------------------------------------------

class _LocalWorker:
    """One slot of the local pool: a private single-slot engine whose
    simulations run offloaded in a worker process, so N workers occupy
    N cores instead of contending for one GIL."""

    kind = "local"

    def __init__(self, name: str,
                 engine_factory: Callable[[], ExecutionEngine]) -> None:
        self.name = name
        self._factory = engine_factory
        self.engine: Optional[ExecutionEngine] = None

    def start(self) -> None:
        self.engine = self._factory()

    def execute(self, tasks: Sequence[_Task]
                ) -> List[Tuple[_Task, Dict[str, Any], str]]:
        engine = self.engine
        assert engine is not None
        sources: Dict[str, str] = {}

        def trap(done: int, total: int, request: RunRequest,
                 source: str) -> None:
            sources[request.cache_key()] = source

        engine.progress = trap
        try:
            results = engine.run([task.request for task in tasks])
        finally:
            engine.progress = None
        out = []
        for task, result in zip(tasks, results):
            entry = ledger_entry(task.request, result.summary(),
                                 result.counters.as_dict(), key=task.key)
            out.append((task, entry, sources.get(task.key, "unknown")))
        return out

    def finish(self, stats: WorkerStats) -> None:
        engine = self.engine
        if engine is None:
            return
        # The engine was born for this worker, so its lifetime totals
        # ARE this worker's share.
        stats.executed = engine.stats.executed
        stats.memo_hits = engine.stats.memo_hits
        stats.disk_hits = engine.stats.disk_hits
        engine.close()


class _ServiceWorker:
    """One remote backend: a ``repro serve`` instance driven through a
    retry-capable :class:`~repro.service.client.ServiceClient`."""

    kind = "service"

    def __init__(self, name: str, client: Any) -> None:
        self.name = name
        self.client = client
        self._before: Dict[str, float] = {}

    def start(self) -> None:
        from repro.sweeps.orchestrator import _service_engine_stats
        self._before = _service_engine_stats(self.client)

    def execute(self, tasks: Sequence[_Task]
                ) -> List[Tuple[_Task, Dict[str, Any], str]]:
        body = self.client.sweep([task.point for task in tasks],
                                 counters=True)
        described = body.get("points", [])
        if len(described) != len(tasks):
            raise FanoutError(
                f"worker {self.name}: service returned {len(described)} "
                f"results for a {len(tasks)}-point batch")
        out = []
        for task, desc in zip(tasks, described):
            if desc.get("key") != task.key:
                raise FanoutError(
                    f"worker {self.name} disagrees on the content address "
                    f"of point {task.point!r} (ours {task.key[:12]}..., "
                    f"theirs {str(desc.get('key'))[:12]}...) — that backend "
                    f"is running different simulator sources")
            entry = ledger_entry(task.request, dict(desc["summary"]),
                                 dict(desc["counters"]), key=task.key)
            out.append((task, entry, "service"))
        return out

    def finish(self, stats: WorkerStats) -> None:
        from repro.sweeps.orchestrator import _service_engine_stats
        after = _service_engine_stats(self.client)
        if self._before and after:
            # Best-effort: exact when this worker is the backend's only
            # client, an aggregate attribution otherwise.
            stats.executed = int(after["executed"]
                                 - self._before["executed"])
            stats.memo_hits = int(after["memo_hits"]
                                  - self._before["memo_hits"])
            stats.disk_hits = int(after["disk_hits"]
                                  - self._before["disk_hits"])


def _worker_loop(worker: Any, queue: _FanoutQueue, writer: _OrderedWriter,
                 stats: WorkerStats, window: int) -> None:
    start = time.perf_counter()
    try:
        worker.start()
        while True:
            tasks = queue.claim(worker.name, window)
            if not tasks:
                return
            stats.claimed += len(tasks)
            if any(task.stolen for task in tasks):
                stats.stolen += 1
            try:
                completions = worker.execute(tasks)
            except FanoutError as exc:
                queue.abort(exc)
                return
            except Exception as exc:
                stats.failures += len(tasks)
                if len(tasks) > 1:
                    queue.requeue_split(tasks, worker.name)
                else:
                    verdict = queue.fail(tasks[0], worker.name, exc)
                    if verdict == "failed":
                        writer.skip(tasks[0])
                continue
            for task, entry, source in completions:
                if queue.complete(task):
                    writer.complete(task, entry, source)
                    stats.completed += 1
    except BaseException as exc:  # never let a worker die silently
        queue.abort(exc)
    finally:
        stats.wall_seconds = time.perf_counter() - start
        try:
            worker.finish(stats)
        except Exception:
            pass
        queue.retire(worker.name)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def _build_workers(workers: Any, engine_template: Any,
                   engine_factory: Optional[Callable[[], ExecutionEngine]],
                   timeout: float) -> List[Any]:
    if isinstance(workers, int):
        if workers < 1:
            raise FanoutError("workers must be >= 1")
        if engine_factory is None:
            options = getattr(engine_template, "options", None)

            def engine_factory() -> ExecutionEngine:
                return ExecutionEngine(options=options, max_workers=1,
                                       offload=True)

        return [_LocalWorker(f"local:{i}", engine_factory)
                for i in range(workers)]
    built: List[Any] = []
    for i, spec in enumerate(workers):
        if isinstance(spec, str):
            from repro.service.client import RetryPolicy, ServiceClient
            host, _, port = spec.rpartition(":")
            client = ServiceClient(host=host or "127.0.0.1", port=int(port),
                                   timeout=timeout, retry=RetryPolicy())
        else:
            client = spec
        name = f"service:{getattr(client, 'host', '?')}:" \
               f"{getattr(client, 'port', i)}"
        built.append(_ServiceWorker(name, client))
    if not built:
        raise FanoutError("workers must name at least one backend")
    return built


def run_fanout(expansion: Any,
               pending: Sequence[Tuple[int, RunRequest, str]],
               entries_by_key: Dict[str, Dict[str, Any]],
               ledger_obj: Optional[SweepLedger],
               accounting: Any,
               progress: Optional[Callable[..., None]],
               done: int, total: int,
               workers: Any,
               window: int = 8,
               engine_template: Any = None,
               engine_factory: Optional[Callable[[], ExecutionEngine]] = None,
               timeout: float = 180.0) -> int:
    """Execute ``pending`` across the worker pool; see module docstring.

    Returns the new ``done`` count.  Mutates ``accounting`` with the
    fan-out's mode, per-worker stats, retry/steal counters, and the
    names of permanently failed points (which also leave the outcome
    ``complete=False`` — they are *reported*, not fatal).
    """
    pool = _build_workers(workers, engine_template, engine_factory, timeout)
    accounting.mode = f"fanout-{pool[0].kind}[{len(pool)}]"
    tasks = [
        _Task(seq=seq, index=index, request=request, key=key,
              point=expansion.points[index])
        for seq, (index, request, key) in enumerate(pending)
    ]
    queue = _FanoutQueue(tasks, [worker.name for worker in pool])
    writer = _OrderedWriter(ledger_obj, entries_by_key, expansion.points,
                            progress, done, total)
    all_stats = [WorkerStats(worker=worker.name) for worker in pool]
    threads = [
        threading.Thread(target=_worker_loop,
                         args=(worker, queue, writer, stats, window),
                         name=f"sweep-{worker.name}")
        for worker, stats in zip(pool, all_stats)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    retried, stolen, failures, abort = queue.outcome()
    if abort is not None:
        if isinstance(abort, (FanoutError, ReproError)):
            raise abort
        raise FanoutError(f"fan-out worker crashed: {abort}") from abort
    accounting.retried = retried
    accounting.stolen = stolen
    accounting.failed = len(failures)
    accounting.failed_points = [
        f"{task.point.get('scheme')}/{_workload_name(task.point)}"
        f" [{task.key[:12]}]: {error}"
        for task, error in failures
    ]
    accounting.workers = [stats.as_dict() for stats in all_stats]
    accounting.executed = sum(stats.executed for stats in all_stats)
    accounting.memo_hits = sum(stats.memo_hits for stats in all_stats)
    accounting.disk_hits = sum(stats.disk_hits for stats in all_stats)
    return writer.done_count()


def _workload_name(point: Dict[str, Any]) -> str:
    workload = point.get("workload")
    if isinstance(workload, dict):
        return str(workload.get("name", "?"))
    return str(workload)
