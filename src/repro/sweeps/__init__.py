"""Design-space autopilot: declarative grids -> engine/service -> report.

The pipeline (see ``docs/sweeps.md``):

* :class:`GridSpec` (:mod:`repro.sweeps.grid`) — declarative axes +
  constraints + presets, expanding deterministically into canonical
  design points through the one point codec (:mod:`repro.sweeps.points`,
  also the grammar of the HTTP service);
* :func:`run_sweep` (:mod:`repro.sweeps.orchestrator`) — executes a grid
  through the local :class:`~repro.exec.engine.ExecutionEngine` or a
  running sharded service, streaming to a resumable JSONL
  :class:`SweepLedger` with cache-hit/dedup accounting;
* :class:`SweepReport` (:mod:`repro.sweeps.report`) — pivots a completed
  ledger into paper-figure-style tables and a schema-gated
  machine-readable artifact.

``repro sweep`` is the CLI face of all three.
"""

from repro.sweeps.grid import (
    PRESETS,
    SCHEME_AXES,
    GridError,
    GridExpansion,
    GridSpec,
    get_preset,
)
from repro.sweeps.fanout import FanoutError, run_fanout
from repro.sweeps.ledger import LedgerError, SweepLedger, read_ledger
from repro.sweeps.orchestrator import (
    SweepAccounting,
    SweepError,
    SweepOutcome,
    run_sweep,
)
from repro.sweeps.points import (
    NAMED_CONFIGS,
    PointSpecError,
    canonical_point,
    normalize_point,
    point_for_request,
)
from repro.sweeps.report import (
    ReportError,
    SweepReport,
    report_from_ledger,
    validate_report_payload,
)
from repro.sweeps.result import SweepResult, WorkerStats

__all__ = [
    "NAMED_CONFIGS",
    "PRESETS",
    "SCHEME_AXES",
    "FanoutError",
    "GridError",
    "GridExpansion",
    "GridSpec",
    "LedgerError",
    "PointSpecError",
    "ReportError",
    "SweepAccounting",
    "SweepError",
    "SweepLedger",
    "SweepOutcome",
    "SweepReport",
    "SweepResult",
    "WorkerStats",
    "canonical_point",
    "get_preset",
    "normalize_point",
    "point_for_request",
    "read_ledger",
    "report_from_ledger",
    "run_fanout",
    "run_sweep",
    "validate_report_payload",
]
