"""Paper-figure-style analysis of a completed sweep ledger.

:class:`SweepReport` pivots ledger entries (canonical point + summary +
raw counters — see :mod:`repro.sweeps.ledger`) into the tables the paper
prints: speedup vs a baseline scheme per axis slice, and the energy
verdict (LQ savings / net savings / slowdown) computed through the same
:class:`~repro.energy.model.EnergyModel` + ``CompareReport`` machinery
``repro.api.compare`` uses.  No re-simulation happens here: the raw
counters in each entry are enough to reconstruct a result for the
energy model exactly.

``to_dict()`` is the machine-readable summary artifact (``schema: 1``),
gated in CI by :func:`validate_report_payload`.
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.sim.config import SchemeConfig
from repro.sim.result import SimulationResult
from repro.stats.aggregate import geometric_mean
from repro.stats.counters import CounterSet
from repro.stats.report import format_table
from repro.sweeps.grid import SCHEME_AXES
from repro.sweeps.points import NAMED_CONFIGS, parse_scheme

__all__ = ["REPORT_SCHEMA", "ReportError", "SweepReport",
           "report_from_ledger", "validate_report_payload"]

REPORT_SCHEMA = 1


class ReportError(ReproError):
    """The ledger cannot be pivoted into a report."""


def _workload_id(point: Dict[str, Any]) -> str:
    workload = point["workload"]
    return workload if isinstance(workload, str) else workload["name"]


def _slice_id(point: Dict[str, Any]) -> str:
    """Everything about a point except its scheme (speedup denominator)."""
    rest = {key: value for key, value in point.items() if key != "scheme"}
    return json.dumps(rest, sort_keys=True, separators=(",", ":"))


def _runtime_scheme_name(scheme: SchemeConfig) -> str:
    """The ``SimulationResult.scheme_name`` a run of this scheme reports
    (what :class:`EnergyModel` dispatches on)."""
    if scheme.kind != "dmdc":
        return scheme.kind
    name = "dmdc-local" if scheme.local else "dmdc-global"
    if scheme.checking_queue_entries is not None:
        name += "-queue"
    if scheme.coherence:
        name += "-coherent"
    return name


def _reconstruct(entry: Dict[str, Any]) -> SimulationResult:
    """A ledger entry -> the result the energy model needs.

    Histograms are not ledgered (the energy model never reads them);
    everything it does read — counters, cycles, scheme name, and the
    machine geometry recovered from the canonical point — round-trips
    exactly.
    """
    point = entry["point"]
    scheme = parse_scheme(point["scheme"])
    summary = entry["summary"]
    return SimulationResult(
        workload=_workload_id(point),
        group="",
        config_name=point["config"],
        scheme_name=_runtime_scheme_name(scheme),
        cycles=int(summary["cycles"]),
        committed=int(summary["committed"]),
        counters=CounterSet.from_dict(entry["counters"]),
    )


def _machine(point: Dict[str, Any]):
    config = NAMED_CONFIGS[point["config"]]
    overrides = point.get("overrides") or {}
    if overrides:
        config = config.with_overrides(**overrides)
    return config.with_scheme(parse_scheme(point["scheme"]))


def _axis_values(point: Dict[str, Any]) -> Dict[str, Any]:
    """The flat axis coordinates of one point (for varying-axis discovery)."""
    scheme = parse_scheme(point["scheme"])
    values: Dict[str, Any] = {
        "workload": _workload_id(point),
        "config": point["config"],
        "kind": scheme.kind,
        "instructions": point["instructions"],
        "seed": point["seed"],
    }
    for token, field_name in SCHEME_AXES.items():
        values[token] = getattr(scheme, field_name)
    for flag in ("local", "coherence", "safe_loads", "sq_filter",
                 "store_sets"):
        values[flag] = getattr(scheme, flag)
    for name, value in (point.get("overrides") or {}).items():
        values[name] = value
    return values


@dataclass
class _Row:
    key: str
    point: Dict[str, Any]
    workload: str
    label: str
    slice_id: str
    result: SimulationResult
    is_baseline: bool = False
    speedup: Optional[float] = None
    lq_savings: Optional[float] = None
    net_savings: Optional[float] = None
    slowdown: Optional[float] = None


@dataclass
class SweepReport:
    """Pivoted view of one completed sweep (see the module docstring)."""

    name: str
    baseline: Optional[str]
    rows: List[_Row]
    axes: Dict[str, List[Any]]
    workloads: List[str]
    labels: List[str]
    compared: Dict[str, Any] = field(default_factory=dict, repr=False)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_entries(cls, entries: Sequence[Dict[str, Any]],
                     name: str = "sweep",
                     baseline: Optional[str] = None) -> "SweepReport":
        if not entries:
            raise ReportError("cannot report on an empty ledger")
        rows: List[_Row] = []
        for entry in entries:
            point = entry["point"]
            rows.append(_Row(
                key=entry["key"],
                point=point,
                workload=_workload_id(point),
                label=parse_scheme(point["scheme"]).label(),
                slice_id=_slice_id(point),
                result=_reconstruct(entry),
            ))

        labels: List[str] = []
        workloads: List[str] = []
        for row in rows:
            if row.label not in labels:
                labels.append(row.label)
            if row.workload not in workloads:
                workloads.append(row.workload)

        baseline_label = cls._pick_baseline(baseline, labels)
        baselines: Dict[str, _Row] = {}
        if baseline_label is not None:
            for row in rows:
                if row.label == baseline_label:
                    row.is_baseline = True
                    baselines[row.slice_id] = row

        report = cls(name=name, baseline=baseline_label, rows=rows,
                     axes={}, workloads=workloads, labels=labels)
        report._compare(baselines)
        report.axes = report._varying_axes()
        return report

    @staticmethod
    def _pick_baseline(baseline: Optional[str],
                       labels: List[str]) -> Optional[str]:
        if baseline is not None:
            label = parse_scheme(baseline).label()
            if label not in labels:
                raise ReportError(
                    f"baseline {label!r} has no points in this ledger; "
                    f"labels present: {labels}")
            return label
        if "conventional" in labels:
            return "conventional"
        return labels[0] if len(labels) > 1 else None

    def _compare(self, baselines: Dict[str, Any]) -> None:
        """Per-row speedup + energy verdict vs the slice's baseline row.

        Uses the same machinery as ``repro.api.compare``: one
        :class:`EnergyModel` built from the baseline machine evaluates
        both runs, and a ``CompareReport`` derives the verdict numbers.
        """
        if not baselines:
            return
        from repro.api import CompareReport  # deferred: api imports sweeps
        from repro.energy.model import EnergyModel
        models: Dict[str, EnergyModel] = {}
        breakdowns: Dict[Tuple[str, str], Any] = {}
        for row in self.rows:
            base = baselines.get(row.slice_id)
            if base is None:
                continue
            if row.slice_id not in models:
                models[row.slice_id] = EnergyModel(_machine(base.point))
            model = models[row.slice_id]
            for item in (base, row):
                if (row.slice_id, item.key) not in breakdowns:
                    breakdowns[(row.slice_id, item.key)] = \
                        model.evaluate(item.result)
            compared = CompareReport(
                base.result, row.result,
                breakdowns[(row.slice_id, base.key)],
                breakdowns[(row.slice_id, row.key)])
            row.speedup = (base.result.cycles / row.result.cycles
                           if row.result.cycles else 0.0)
            row.lq_savings = compared.lq_savings
            row.net_savings = compared.net_savings
            row.slowdown = compared.slowdown
            self.compared[row.key] = compared

    def _varying_axes(self) -> Dict[str, List[Any]]:
        seen: Dict[str, List[Any]] = {}
        for row in self.rows:
            if row.is_baseline:
                continue
            for axis, value in _axis_values(row.point).items():
                bucket = seen.setdefault(axis, [])
                if value not in bucket:
                    bucket.append(value)
        return {axis: values for axis, values in seen.items()
                if len(values) > 1}

    # -- pivots ------------------------------------------------------------
    def _geomean_speedup(self, rows: List[_Row]) -> Optional[float]:
        values = [row.speedup for row in rows
                  if row.speedup is not None and row.speedup > 0]
        return geometric_mean(values) if values else None

    def axis_table(self, axis: str) -> str:
        """Geomean speedup pivot: one row per ``axis`` value x workload."""
        if axis not in self.axes:
            raise ReportError(
                f"axis {axis!r} does not vary; varying: {sorted(self.axes)}")
        rows = []
        for value in self.axes[axis]:
            cells: List[str] = [str(value)]
            for workload in self.workloads:
                matching = [row for row in self.rows
                            if not row.is_baseline
                            and row.workload == workload
                            and _axis_values(row.point).get(axis) == value]
                speedup = self._geomean_speedup(matching)
                cells.append(f"{speedup:.3f}" if speedup is not None else "-")
            rows.append(cells)
        return format_table([axis] + list(self.workloads), rows)

    def label_table(self) -> str:
        """Per-scheme-label summary: IPC geomean, speedup, energy verdict."""
        rows = []
        for label in self.labels:
            mine = [row for row in self.rows if row.label == label]
            ipc = geometric_mean([row.result.ipc for row in mine
                                  if row.result.ipc > 0]) \
                if any(row.result.ipc > 0 for row in mine) else 0.0
            speedup = self._geomean_speedup(
                [row for row in mine if not row.is_baseline])
            lq = [row.lq_savings for row in mine
                  if not row.is_baseline and row.lq_savings is not None]
            net = [row.net_savings for row in mine
                   if not row.is_baseline and row.net_savings is not None]
            rows.append([
                label + (" (baseline)" if label == self.baseline else ""),
                len(mine),
                f"{ipc:.3f}",
                f"{speedup:.3f}" if speedup is not None else "-",
                f"{sum(lq) / len(lq):.1%}" if lq else "-",
                f"{sum(net) / len(net):.1%}" if net else "-",
            ])
        return format_table(
            ["scheme", "points", "ipc", "speedup", "lq savings", "net savings"],
            rows)

    def best_points(self, count: int = 3) -> List[_Row]:
        """The non-baseline rows with the best net energy savings."""
        scored = [row for row in self.rows
                  if not row.is_baseline and row.net_savings is not None]
        scored.sort(key=lambda row: row.net_savings, reverse=True)
        return scored[:count]

    # -- renderings --------------------------------------------------------
    def render(self) -> str:
        """The full paper-figure-style text report."""
        lines = [f"sweep report: {self.name} — {len(self.rows)} points, "
                 f"{len(self.labels)} schemes x {len(self.workloads)} "
                 f"workloads"
                 + (f", baseline {self.baseline}" if self.baseline else "")]
        lines.append("")
        lines.append(self.label_table())
        for axis in self.axes:
            if axis == "workload":
                continue
            lines.append("")
            lines.append(f"geomean speedup vs {self.baseline or 'n/a'} "
                         f"by {axis}:")
            lines.append(self.axis_table(axis))
        best = self.best_points()
        if best:
            lines.append("")
            lines.append("best points by net energy savings:")
            for row in best:
                compared = self.compared.get(row.key)
                verdict = compared.verdict() if compared is not None else ""
                lines.append(f"  {row.label} / {row.workload}: {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """The machine-readable summary artifact (``schema`` 1)."""
        rows = []
        for row in self.rows:
            rows.append({
                "key": row.key,
                "point": row.point,
                "workload": row.workload,
                "label": row.label,
                "baseline": row.is_baseline,
                "ipc": row.result.ipc,
                "cycles": row.result.cycles,
                "committed": row.result.committed,
                "speedup": row.speedup,
                "lq_savings": row.lq_savings,
                "net_savings": row.net_savings,
                "slowdown": row.slowdown,
            })
        by_label: Dict[str, Any] = {}
        for label in self.labels:
            mine = [row for row in self.rows if row.label == label]
            candidates = [row for row in mine if not row.is_baseline]
            lq = [row.lq_savings for row in candidates
                  if row.lq_savings is not None]
            net = [row.net_savings for row in candidates
                   if row.net_savings is not None]
            by_label[label] = {
                "points": len(mine),
                "geomean_speedup": self._geomean_speedup(candidates),
                "mean_lq_savings": sum(lq) / len(lq) if lq else None,
                "mean_net_savings": sum(net) / len(net) if net else None,
            }
        return {
            "schema": REPORT_SCHEMA,
            "grid": self.name,
            "baseline": self.baseline,
            "points": len(self.rows),
            "workloads": list(self.workloads),
            "labels": list(self.labels),
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "rows": rows,
            "by_label": by_label,
        }


def report_from_ledger(path: str, baseline: Optional[str] = None,
                       name: Optional[str] = None) -> SweepReport:
    """Pivot a ledger file straight into a :class:`SweepReport`."""
    from repro.sweeps.ledger import read_ledger
    header, entries = read_ledger(path)
    return SweepReport.from_entries(
        entries, name=name if name is not None else str(header.get("grid")),
        baseline=baseline)


def validate_report_payload(payload: Dict[str, Any]) -> List[str]:
    """Schema-gate a :meth:`SweepReport.to_dict` artifact; [] when clean."""
    problems: List[str] = []

    def check(cond: bool, message: str) -> None:
        if not cond:
            problems.append(message)

    check(isinstance(payload, dict), "payload must be an object")
    if not isinstance(payload, dict):
        return problems
    check(payload.get("schema") == REPORT_SCHEMA,
          f"schema must be {REPORT_SCHEMA}, got {payload.get('schema')!r}")
    for field_name in ("grid", "points", "workloads", "labels", "axes",
                       "rows", "by_label"):
        check(field_name in payload, f"missing field {field_name!r}")
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty list")
        return problems
    check(payload.get("points") == len(rows),
          f"points={payload.get('points')} but {len(rows)} rows")
    labels = payload.get("labels") or []
    workloads = payload.get("workloads") or []
    by_label = payload.get("by_label") or {}
    check(sorted(by_label) == sorted(labels),
          "by_label keys must match labels")
    baseline = payload.get("baseline")
    if baseline is not None:
        check(baseline in labels, f"baseline {baseline!r} not in labels")
    keys = set()
    for index, row in enumerate(rows):
        where = f"rows[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for field_name in ("key", "point", "workload", "label", "baseline",
                           "ipc", "cycles", "committed"):
            check(field_name in row, f"{where} missing {field_name!r}")
        if "key" in row:
            check(row["key"] not in keys, f"{where} duplicates key")
            keys.add(row["key"])
        check(row.get("label") in labels,
              f"{where} label {row.get('label')!r} not in labels")
        check(row.get("workload") in workloads,
              f"{where} workload {row.get('workload')!r} not in workloads")
        check(isinstance(row.get("cycles"), int) and row.get("cycles", 0) > 0,
              f"{where} cycles must be a positive int")
        ipc = row.get("ipc")
        check(isinstance(ipc, (int, float)) and ipc > 0,
              f"{where} ipc must be positive")
        if row.get("baseline"):
            check(row.get("speedup") in (None, 1.0) or
                  abs(row.get("speedup", 1.0) - 1.0) < 1e-12,
                  f"{where} baseline row must have speedup 1.0")
        speedup = row.get("speedup")
        if speedup is not None:
            check(isinstance(speedup, (int, float)) and speedup > 0,
                  f"{where} speedup must be positive")
    return problems
