"""The canonical design-point codec: JSON payloads <-> :class:`RunRequest`.

One grammar for naming a design point, shared by every execution surface:
``repro.api.sweep`` grids, the HTTP service's ``{"points", "defaults"}``
payloads (:mod:`repro.service.schema` delegates here), and the sweep
autopilot's ledgers.  A point payload::

    {
      "workload": "gzip" | {...WorkloadSpec fields...},
      "scheme":   "dmdc-local" | {...SchemeConfig fields...},   # default "conventional"
      "config":   "config2",                                    # config1|config2|config3
      "overrides": {"lq_size": 48, ...},                        # machine-field overrides
      "instructions": 12000,                                    # aka "budget"
      "seed": 1
    }

:func:`normalize_point` is the single normalization path into the
engine's content-address space — two surfaces handed the same point
always produce the same :meth:`RunRequest.cache_key`, which is what
makes in-flight dedup, disk caching, and ledger resume sound across
local, service, and autopilot execution.  :func:`point_for_request` is
the inverse: the canonical payload of a request, used for ledger lines
and round-trip identity (``normalize_point(point_for_request(r))`` has
``r``'s cache key).

Scheme strings go through the canonical label codec
(:meth:`SchemeConfig.from_label`), so every surface speaks exactly the
labels the CLI, bench harness, and correctness matrix speak.
"""

from dataclasses import asdict, fields as dataclass_fields
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigError, ReproError
from repro.exec.request import RunRequest
from repro.sim.config import CONFIG1, CONFIG2, CONFIG3, MachineConfig, SchemeConfig
from repro.sim.result import SimulationResult
from repro.workloads import SUITE, WorkloadSpec

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "MAX_INSTRUCTIONS",
    "NAMED_CONFIGS",
    "PointSpecError",
    "canonical_point",
    "describe_result",
    "ledger_entry",
    "normalize_point",
    "parse_scheme",
    "parse_workload",
    "point_for_request",
]

NAMED_CONFIGS: Dict[str, MachineConfig] = {
    "config1": CONFIG1,
    "config2": CONFIG2,
    "config3": CONFIG3,
}

#: Budget ceiling per design point — every surface bounds the work one
#: point can demand (callers needing more split into several points).
MAX_INSTRUCTIONS = 1_000_000
DEFAULT_INSTRUCTIONS = 12_000


class PointSpecError(ReproError):
    """A design-point payload is malformed (the service maps this to 400)."""


def _require_mapping(payload: object, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise PointSpecError(
            f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def _dataclass_kwargs(payload: Dict[str, Any], cls: type, what: str) -> Dict[str, Any]:
    allowed = {f.name for f in dataclass_fields(cls)}
    unknown = [key for key in payload if key not in allowed]
    if unknown:
        raise PointSpecError(
            f"unknown {what} field(s): {', '.join(sorted(unknown))}")
    return payload


def parse_scheme(payload: object) -> SchemeConfig:
    """A scheme label or an explicit field object -> :class:`SchemeConfig`."""
    if payload is None:
        return SchemeConfig()
    if isinstance(payload, SchemeConfig):
        return payload
    if isinstance(payload, str):
        try:
            return SchemeConfig.from_label(payload)
        except ConfigError as exc:
            raise PointSpecError(str(exc)) from None
    kwargs = _dataclass_kwargs(_require_mapping(payload, "scheme"),
                               SchemeConfig, "scheme")
    try:
        return SchemeConfig(**kwargs)
    except (ConfigError, TypeError) as exc:
        raise PointSpecError(f"bad scheme: {exc}") from None


def parse_workload(payload: object) -> Union[str, WorkloadSpec]:
    """A suite name or an explicit spec object -> RunRequest workload."""
    if isinstance(payload, WorkloadSpec):
        return payload
    if isinstance(payload, str):
        if payload not in SUITE:
            raise PointSpecError(
                f"unknown workload {payload!r}; choices: {sorted(SUITE)}")
        return payload
    kwargs = _dataclass_kwargs(_require_mapping(payload, "workload"),
                               WorkloadSpec, "workload")
    if "name" not in kwargs:
        raise PointSpecError("an explicit workload spec needs a 'name'")
    try:
        return WorkloadSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise PointSpecError(f"bad workload spec: {exc}") from None


def _parse_int(payload: Dict[str, Any], key: str, default: int,
               lo: int, hi: int) -> int:
    value = payload.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise PointSpecError(f"{key} must be an integer")
    if not lo <= value <= hi:
        raise PointSpecError(f"{key} must be in [{lo}, {hi}], got {value}")
    return value


def normalize_point(payload: object,
                    defaults: Optional[Dict[str, Any]] = None) -> RunRequest:
    """One point payload (plus optional sweep-level defaults) -> request.

    THE normalization path: the ``repro.api`` sweep shim, the HTTP
    service, and the autopilot all call this, so a design point has
    exactly one canonical :class:`RunRequest` no matter which surface
    named it.
    """
    body: Dict[str, Any] = dict(defaults or {})
    body.update(_require_mapping(payload, "run payload"))
    known = {"workload", "scheme", "config", "overrides",
             "instructions", "budget", "seed"}
    unknown = [key for key in body if key not in known]
    if unknown:
        raise PointSpecError(f"unknown field(s): {', '.join(sorted(unknown))}")
    if "workload" not in body:
        raise PointSpecError("missing required field 'workload'")

    config_name = body.get("config", "config2")
    if isinstance(config_name, MachineConfig):
        config_name = config_name.name
    if config_name not in NAMED_CONFIGS:
        raise PointSpecError(
            f"unknown config {config_name!r}; choices: {sorted(NAMED_CONFIGS)}")
    config = NAMED_CONFIGS[config_name].with_scheme(parse_scheme(body.get("scheme")))
    if "overrides" in body:
        overrides = _dataclass_kwargs(
            _require_mapping(body["overrides"], "overrides"),
            MachineConfig, "machine override")
        if "scheme" in overrides or "name" in overrides:
            raise PointSpecError(
                "overrides cannot replace 'scheme' or 'name'; use the "
                "top-level fields")
        try:
            config = config.with_overrides(**overrides)
        except (ConfigError, TypeError) as exc:
            raise PointSpecError(f"bad overrides: {exc}") from None

    if "instructions" in body and "budget" in body:
        raise PointSpecError("give either 'instructions' or 'budget', not both")
    budget = _parse_int(body, "budget" if "budget" in body else "instructions",
                        DEFAULT_INSTRUCTIONS, 1, MAX_INSTRUCTIONS)
    seed = _parse_int(body, "seed", 1, 0, 2**31 - 1)
    return RunRequest(config, parse_workload(body["workload"]), budget, seed)


def machine_overrides(config: MachineConfig) -> Dict[str, Any]:
    """The non-default machine fields of ``config`` vs its named base.

    Expresses an arbitrary :class:`MachineConfig` in the point codec's
    vocabulary (named config + overrides); raises :class:`PointSpecError`
    for machines that are not derived from a named configuration.
    """
    if config.name not in NAMED_CONFIGS:
        raise PointSpecError(
            f"the point codec speaks named configs only "
            f"({sorted(NAMED_CONFIGS)}); got machine {config.name!r} — "
            f"express it as a named config plus overrides")
    base = asdict(NAMED_CONFIGS[config.name])
    ours = asdict(config)
    return {
        field: ours[field]
        for field in sorted(ours)
        if field not in ("name", "scheme") and ours[field] != base[field]
    }


def point_for_request(request: RunRequest) -> Dict[str, Any]:
    """The canonical point payload of one request (ledger/wire identity).

    Deterministic and minimal: ``overrides`` appears only when non-empty,
    every other field is always explicit.  Round-trip guarantee:
    ``normalize_point(point_for_request(r)).cache_key() == r.cache_key()``.
    """
    workload: Union[str, Dict[str, Any]] = (
        request.workload if isinstance(request.workload, str)
        else asdict(request.workload))
    point: Dict[str, Any] = {
        "workload": workload,
        "scheme": request.config.scheme.label(),
        "config": request.config.name,
        "instructions": request.budget,
        "seed": request.seed,
    }
    overrides = machine_overrides(request.config)
    if overrides:
        point["overrides"] = overrides
    return point


def canonical_point(payload: object,
                    defaults: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Normalize a point payload and re-emit it in canonical form."""
    return point_for_request(normalize_point(payload, defaults))


def describe_result(request: RunRequest, result: SimulationResult,
                    counters: bool = False) -> Dict[str, Any]:
    """JSON-ready response body for one completed design point."""
    payload: Dict[str, Any] = {
        "key": request.cache_key(),
        "workload": result.workload,
        "config": result.config_name,
        "scheme": request.config.scheme.label(),
        "budget": request.budget,
        "seed": request.seed,
        "summary": result.summary(),
    }
    if counters:
        payload["counters"] = result.counters.as_dict()
    return payload


def ledger_entry(request: RunRequest, summary: Dict[str, Any],
                 counters: Dict[str, int],
                 key: Optional[str] = None) -> Dict[str, Any]:
    """One deterministic sweep-ledger line for a completed point.

    Carries only architecture-determined values (canonical point, summary
    rates, raw counters) — never wall-clock or cache provenance — so the
    same grid yields byte-identical ledgers whether it ran locally,
    through a sharded service, or across an interrupted + resumed pair of
    invocations.
    """
    return {
        "kind": "point",
        "key": key if key is not None else request.cache_key(),
        "point": point_for_request(request),
        "summary": summary,
        "counters": counters,
    }
