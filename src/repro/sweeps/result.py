"""Structured return value of ``repro.api.sweep``.

:class:`SweepResult` keeps the historical mapping shape —
``result[scheme_label][workload_name]`` still works, so existing
scripts don't change — and adds keyed point access
(``result["dmdc", "gzip"]``), an IPC pivot ``table()``, and the
cache/dedup accounting of the batch that produced it.

String keys are canonicalized through the scheme-label codec, so
``result["yla-gran128-regs16"]`` and ``result["yla-regs16-gran128"]``
name the same row.
"""

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Tuple, Union

from repro.sim.config import SchemeConfig
from repro.sim.result import SimulationResult
from repro.stats.report import format_table

__all__ = ["SweepResult", "WorkerStats"]


@dataclass
class WorkerStats:
    """One fan-out worker's share of a sweep (see ``repro.sweeps.fanout``).

    ``executed`` is backend-reported: exact for local pool workers (each
    owns its engine), best-effort for service workers (the service's
    ``/metrics`` aggregates across all its clients, so service workers
    report their completion counts instead).
    """

    worker: str                 # "local:0" / "service:host:port"
    claimed: int = 0            # tasks this worker pulled from the queue
    completed: int = 0          # points whose entry this worker produced
    executed: int = 0           # simulations its backend actually ran
    memo_hits: int = 0
    disk_hits: int = 0
    stolen: int = 0             # straggler tasks speculatively duplicated
    failures: int = 0           # task attempts that failed on this worker
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "claimed": self.claimed,
            "completed": self.completed,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "stolen": self.stolen,
            "failures": self.failures,
            "wall_seconds": self.wall_seconds,
        }

Key = Union[str, Tuple[str, str]]


class SweepResult(Mapping[str, Dict[str, SimulationResult]]):
    """Keyed (scheme x workload) results plus the batch's accounting."""

    def __init__(self,
                 grid: Dict[str, Dict[str, SimulationResult]],
                 points: List[Dict[str, Any]],
                 stats: Dict[str, Any]):
        self._grid = grid
        #: Canonical point payloads, in execution order.
        self.points = points
        #: Batch accounting: requested/unique/collapsed/memo_hits/
        #: disk_hits/executed/hit_rate for THIS sweep call.
        self.stats = dict(stats)

    # -- mapping (legacy shape) -------------------------------------------
    @staticmethod
    def _canonical(label: str) -> str:
        try:
            return SchemeConfig.from_label(label).label()
        except Exception:
            return label

    def __getitem__(self, key: Key) -> Any:
        if isinstance(key, tuple):
            label, workload = key
            return self._grid[self._canonical(label)][workload]
        return self._grid[self._canonical(key)]

    def __iter__(self) -> Iterator[str]:
        return iter(self._grid)

    def __len__(self) -> int:
        return len(self._grid)

    # -- sugar -------------------------------------------------------------
    @property
    def schemes(self) -> List[str]:
        return list(self._grid)

    @property
    def workloads(self) -> List[str]:
        names: List[str] = []
        for row in self._grid.values():
            for name in row:
                if name not in names:
                    names.append(name)
        return names

    def results(self) -> List[SimulationResult]:
        """Every result, scheme-major (the execution order)."""
        return [result for row in self._grid.values()
                for result in row.values()]

    def table(self, metric: str = "ipc") -> str:
        """A (scheme x workload) pivot of ``metric`` (any result attr)."""
        workloads = self.workloads
        rows = []
        for label, row in self._grid.items():
            cells: List[str] = [label]
            for name in workloads:
                result = row.get(name)
                if result is None:
                    cells.append("-")
                    continue
                value = getattr(result, metric)
                cells.append(f"{value:.3f}" if isinstance(value, float)
                             else str(value))
            rows.append(cells)
        return format_table(["scheme"] + workloads, rows)

    def __repr__(self) -> str:
        return (f"SweepResult({len(self._grid)} schemes x "
                f"{len(self.workloads)} workloads, "
                f"executed={self.stats.get('executed')}, "
                f"hit_rate={self.stats.get('hit_rate', 0.0):.1%})")
