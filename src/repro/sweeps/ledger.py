"""The resumable sweep ledger: one JSONL line per completed design point.

A ledger file is::

    {"kind":"header","schema":1,"grid":"demo64","digest":"...","points":66}
    {"kind":"point","key":"...","point":{...},"summary":{...},"counters":{...}}
    ...

Lines are canonical JSON (sorted keys, no whitespace) and carry only
architecture-determined values, so a ledger is **byte-identical** no
matter how its grid ran: local engine or sharded service, one shot or
interrupted-and-resumed — the driver rewrites entries in grid order.

Resume contract: :meth:`SweepLedger.open` reads whatever a previous run
left behind, validates the header against the grid's expansion digest
(which covers the grid shape *and* the simulator source fingerprint, so
results from an edited simulator or a different grid are never silently
reused), drops any torn final line from an interrupted write, and
returns the completed entries keyed by content address.  The
orchestrator then only simulates the missing points.
"""

import json
import os
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["LEDGER_SCHEMA", "LedgerError", "SweepLedger", "read_ledger"]

LEDGER_SCHEMA = 1


class LedgerError(ReproError):
    """The ledger on disk cannot serve this sweep (wrong grid/simulator)."""


def _encode(entry: Dict[str, Any]) -> str:
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def _scan(path: str) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]], int]:
    """Header, well-formed point entries, and the byte offset they end at.

    A torn final line (interrupted append) is excluded from the offset,
    so reopening truncates exactly the damage and nothing else.
    """
    header: Optional[Dict[str, Any]] = None
    entries: List[Dict[str, Any]] = []
    good = 0
    with open(path, "rb") as handle:
        for line in handle:
            if not line.endswith(b"\n"):
                break
            try:
                entry = json.loads(line)
            except ValueError:
                break
            if not isinstance(entry, dict) or "kind" not in entry:
                break
            if header is None:
                if entry.get("kind") != "header":
                    raise LedgerError(
                        f"{path}: first line is not a ledger header")
                header = entry
            elif entry["kind"] == "point":
                if not isinstance(entry.get("key"), str):
                    break
                entries.append(entry)
            good += len(line)
    return header, entries, good


def read_ledger(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a completed ledger: ``(header, point entries)``."""
    header, entries, _ = _scan(path)
    if header is None:
        raise LedgerError(f"{path}: empty or headerless ledger")
    return header, entries


class SweepLedger:
    """Append-only JSONL writer with resume-by-content-address."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = None

    def open(self, digest: str, grid: str, points: int) -> Dict[str, Dict[str, Any]]:
        """Open for appending; return prior completed entries by key.

        A fresh (or empty) file gets a header line.  An existing file
        must carry a header whose ``digest`` matches this expansion —
        otherwise the sweep refuses to resume rather than mixing grids
        or simulator versions.
        """
        prior: Dict[str, Dict[str, Any]] = {}
        if os.path.exists(self.path) and os.path.getsize(self.path):
            header, entries, good = _scan(self.path)
            if header is None:
                raise LedgerError(f"{self.path}: first line is not a ledger header")
            if header.get("schema") != LEDGER_SCHEMA:
                raise LedgerError(
                    f"{self.path}: ledger schema {header.get('schema')!r}, "
                    f"expected {LEDGER_SCHEMA}")
            if header.get("digest") != digest:
                raise LedgerError(
                    f"{self.path}: ledger was written for grid "
                    f"{header.get('grid')!r} (digest {header.get('digest')!r}) "
                    f"— it does not match this expansion; the grid or the "
                    f"simulator source changed. Delete the ledger or pick "
                    f"another path.")
            with open(self.path, "r+", encoding="utf-8") as handle:
                handle.truncate(good)
            for entry in entries:
                prior[entry["key"]] = entry
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write({"kind": "header", "schema": LEDGER_SCHEMA,
                         "grid": grid, "digest": digest, "points": points})
        return prior

    def append(self, entry: Dict[str, Any]) -> None:
        if self._handle is None:
            raise LedgerError("ledger is not open")
        self._write(entry)

    def _write(self, entry: Dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(_encode(entry) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepLedger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
