"""The sweep orchestrator: a grid in, a completed ledger out.

:func:`run_sweep` drives a :class:`GridSpec` (or a pre-rendered
:class:`GridExpansion`) to completion through either execution backend:

* **local** — the shared :class:`ExecutionEngine` (dedup, memo, disk
  cache, process pool), chunked so ``run_many`` batching still applies;
* **service** — a running (possibly sharded) ``repro serve`` instance
  via :class:`ServiceClient`, chunked under the service's sweep
  admission cap.

Completed points stream to a resumable JSONL ledger as they finish;
re-running a half-finished sweep re-serves finished points from the
ledger by content address and only simulates the remainder.  Both
backends emit byte-identical ledgers for the same grid (the wire
carries exactly the summary/counter values the local path computes),
which the service tests assert.

The returned :class:`SweepOutcome` carries the entries in grid order
plus a :class:`SweepAccounting` block — how many points the raw product
had, what predicates/dedup removed, and how many simulations actually
ran vs were served from ledger/memo/disk — the proof that repeat sweeps
are ~free.
"""

import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.errors import ReproError
from repro.exec.engine import ExecutionEngine, get_engine
from repro.exec.request import RunRequest
from repro.sweeps.grid import GridExpansion, GridSpec
from repro.sweeps.ledger import SweepLedger
from repro.sweeps.points import ledger_entry

__all__ = ["ProgressFn", "SweepAccounting", "SweepError", "SweepOutcome",
           "run_sweep"]

#: Orchestrator progress: ``(done, total, point, source)`` with source one
#: of ``"ledger"``, ``"memo"``, ``"cache"``, ``"run"``, ``"service"``.
ProgressFn = Callable[[int, int, Dict[str, Any], str], None]


class SweepError(ReproError):
    """The sweep cannot proceed (backend mismatch, bad arguments)."""


@dataclass
class SweepAccounting:
    """Where every point of a sweep came from (and what it cost)."""

    mode: str = "local"
    total_points: int = 0       # points in the expanded grid
    raw_points: int = 0         # axis-product combinations before pruning
    excluded: int = 0           # dropped by include/exclude predicates
    collapsed: int = 0          # content-address duplicates in the grid
    baseline_points: int = 0    # injected baseline denominators
    from_ledger: int = 0        # served from a prior run's ledger
    submitted: int = 0          # sent to the backend this invocation
    executed: int = 0           # actually simulated (backend-reported)
    memo_hits: int = 0          # engine memo hits (local mode)
    disk_hits: int = 0          # disk-cache hits (local mode)
    retried: int = 0            # backpressure retries / quarantine requeues
    stolen: int = 0             # straggler tasks speculatively duplicated
    failed: int = 0             # points that exhausted their retries
    wall_seconds: float = 0.0
    #: Names of permanently failed points ("scheme/workload [key]: why").
    failed_points: List[str] = field(default_factory=list)
    #: Per-worker accounting dicts (fan-out mode only); see
    #: :class:`repro.sweeps.result.WorkerStats`.
    workers: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Fraction of submitted points served without simulating.

        An all-from-ledger re-run submits nothing and scores 1.0 — the
        repeat sweep was free.
        """
        if not self.submitted:
            return 1.0
        return max(0.0, (self.submitted - self.executed) / self.submitted)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "total_points": self.total_points,
            "raw_points": self.raw_points,
            "excluded": self.excluded,
            "collapsed": self.collapsed,
            "baseline_points": self.baseline_points,
            "from_ledger": self.from_ledger,
            "submitted": self.submitted,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "retried": self.retried,
            "stolen": self.stolen,
            "failed": self.failed,
            "failed_points": list(self.failed_points),
            "workers": list(self.workers),
            "hit_rate": self.hit_rate,
            "wall_seconds": self.wall_seconds,
        }

    def format_block(self) -> str:
        lines = [
            f"points    {self.total_points} "
            f"({self.raw_points} raw, {self.excluded} excluded, "
            f"{self.collapsed} collapsed, {self.baseline_points} baseline)",
            f"backend   {self.mode}",
            f"served    ledger {self.from_ledger} | submitted {self.submitted}"
            f" | simulated {self.executed}",
            f"cache     memo {self.memo_hits}, disk {self.disk_hits}, "
            f"hit rate {self.hit_rate:.1%}",
            f"wall      {self.wall_seconds:.2f}s",
        ]
        if self.workers:
            shares = ", ".join(
                f"{w['worker']} {w['completed']}" for w in self.workers)
            lines.insert(3, f"fanout    {len(self.workers)} workers "
                            f"({shares}) | retried {self.retried} | "
                            f"stolen {self.stolen} | failed {self.failed}")
        elif self.retried:
            lines.insert(3, f"backoff   retried {self.retried}")
        for name in self.failed_points:
            lines.append(f"FAILED    {name}")
        return "\n".join(lines)


@dataclass
class SweepOutcome:
    """Everything :func:`run_sweep` produced, in grid order."""

    name: str
    points: List[Dict[str, Any]]
    keys: List[str]
    entries: List[Dict[str, Any]]   # completed ledger entries, grid order
    accounting: SweepAccounting
    complete: bool = True
    ledger_path: Optional[str] = None
    _report: Optional[object] = field(default=None, repr=False)

    def report(self, baseline: Optional[str] = None) -> "Any":
        """The paper-figure-style report over the completed entries."""
        from repro.sweeps.report import SweepReport
        return SweepReport.from_entries(self.entries, name=self.name,
                                        baseline=baseline)


def _chunks(items: List[Any], size: int) -> List[List[Any]]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _service_engine_stats(client: Any) -> Dict[str, float]:
    """Best-effort aggregate engine stats from a service /metrics scrape."""
    try:
        snapshot = client.metrics()
        engine = snapshot.get("engine", {})
        return {key: engine.get(key, 0)
                for key in ("executed", "memo_hits", "disk_hits")}
    except Exception:
        return {}


def run_sweep(grid: Union[GridSpec, GridExpansion],
              *,
              engine: Optional[ExecutionEngine] = None,
              client: Optional[Any] = None,
              ledger: Optional[Union[str, SweepLedger]] = None,
              chunk: int = 64,
              progress: Optional[ProgressFn] = None,
              limit: Optional[int] = None,
              workers: Optional[Union[int, Sequence[Any]]] = None,
              window: int = 8,
              engine_factory: Optional[Callable[[], ExecutionEngine]] = None
              ) -> SweepOutcome:
    """Execute a grid to completion (see the module docstring).

    ``engine`` and ``client`` select the backend (both ``None`` = the
    process-wide engine; both set is an error).  ``ledger`` is a JSONL
    path (or an opened :class:`SweepLedger`) enabling streaming +
    resume.  ``limit`` caps how many *missing* points this invocation
    simulates — the outcome comes back ``complete=False`` and a later
    call resumes; tests use it to model a killed orchestrator.

    ``workers`` fans the missing points out across a pool
    (:mod:`repro.sweeps.fanout`): an int N runs a local pool of N
    single-slot engine processes (``engine`` serves as the options
    template), a sequence names service backends — ``"host:port"``
    strings or ready :class:`~repro.service.client.ServiceClient`
    objects.  ``window`` caps each worker's in-flight claim, and
    ``engine_factory`` overrides how local pool workers build their
    engines (tests inject serial engines).  The ledger keeps its
    grid-order byte-identity contract regardless of worker count.
    """
    if engine is not None and client is not None:
        raise SweepError("pass engine= or client=, not both")
    if workers is not None and client is not None:
        raise SweepError("pass workers= or client=, not both")
    if chunk < 1:
        raise SweepError("chunk must be >= 1")
    if window < 1:
        raise SweepError("window must be >= 1")
    expansion = grid.expand() if isinstance(grid, GridSpec) else grid
    accounting = SweepAccounting(
        mode="service" if client is not None else "local",
        total_points=len(expansion),
        raw_points=expansion.raw_points,
        excluded=expansion.excluded,
        collapsed=expansion.collapsed,
        baseline_points=expansion.baseline_added,
    )
    start = time.perf_counter()

    ledger_obj: Optional[SweepLedger]
    ledger_path: Optional[str]
    owns_ledger = isinstance(ledger, (str,)) or ledger is None
    if isinstance(ledger, SweepLedger):
        ledger_obj, ledger_path = ledger, ledger.path
    elif ledger is not None:
        ledger_obj, ledger_path = SweepLedger(ledger), ledger
    else:
        ledger_obj = ledger_path = None

    entries_by_key: Dict[str, Dict[str, Any]] = {}
    try:
        if ledger_obj is not None:
            prior = ledger_obj.open(expansion.digest(), expansion.name,
                                    len(expansion))
            wanted = set(expansion.keys)
            entries_by_key.update(
                {key: entry for key, entry in prior.items() if key in wanted})
        accounting.from_ledger = len(entries_by_key)

        total = len(expansion)
        done = 0
        pending: List[Tuple[int, RunRequest, str]] = []
        for index, (request, key) in enumerate(
                zip(expansion.requests, expansion.keys)):
            if key in entries_by_key:
                done += 1
                if progress is not None:
                    progress(done, total, expansion.points[index], "ledger")
            else:
                pending.append((index, request, key))

        if limit is not None:
            pending = pending[:max(0, limit)]
        accounting.submitted = len(pending)

        if workers is not None:
            from repro.sweeps.fanout import run_fanout
            done = run_fanout(expansion, pending, entries_by_key,
                              ledger_obj, accounting, progress, done, total,
                              workers, window=window, engine_template=engine,
                              engine_factory=engine_factory)
        elif client is not None:
            done = _run_service(client, expansion, pending, entries_by_key,
                                ledger_obj, accounting, chunk, progress,
                                done, total)
        else:
            done = _run_local(engine, expansion, pending, entries_by_key,
                              ledger_obj, accounting, chunk, progress,
                              done, total)
    finally:
        if ledger_obj is not None and owns_ledger:
            ledger_obj.close()

    accounting.wall_seconds = time.perf_counter() - start
    entries = [entries_by_key[key] for key in expansion.keys
               if key in entries_by_key]
    return SweepOutcome(
        name=expansion.name,
        points=list(expansion.points),
        keys=list(expansion.keys),
        entries=entries,
        accounting=accounting,
        complete=len(entries) == len(expansion),
        ledger_path=ledger_path,
    )


def _run_local(engine: Optional[ExecutionEngine],
               expansion: GridExpansion,
               pending: List[Tuple[int, RunRequest, str]],
               entries_by_key: Dict[str, Dict[str, Any]],
               ledger_obj: Optional[SweepLedger],
               accounting: SweepAccounting,
               chunk: int,
               progress: Optional[ProgressFn],
               done: int, total: int) -> int:
    engine = engine if engine is not None else get_engine()
    base = (engine.stats.executed, engine.stats.memo_hits,
            engine.stats.disk_hits)
    for batch in _chunks(pending, chunk):
        sources: Dict[str, str] = {}
        prev = engine.progress

        def trap(done_: int, total_: int, request: RunRequest,
                 source: str) -> None:
            sources[request.cache_key()] = source
            if prev is not None:
                prev(done_, total_, request, source)

        engine.progress = trap
        try:
            results = engine.run([request for _, request, _ in batch])
        finally:
            engine.progress = prev
        for (index, request, key), result in zip(batch, results):
            entry = ledger_entry(request, result.summary(),
                                 result.counters.as_dict(), key=key)
            entries_by_key[key] = entry
            if ledger_obj is not None:
                ledger_obj.append(entry)
            done += 1
            if progress is not None:
                # An unreported point gets an honest "unknown", never a
                # fabricated cache attribution (grid dedup means every
                # pending key is unique, so the engine should always
                # have reported it — "unknown" flags the anomaly).
                progress(done, total, expansion.points[index],
                         sources.get(key, "unknown"))
    accounting.executed = engine.stats.executed - base[0]
    accounting.memo_hits = engine.stats.memo_hits - base[1]
    accounting.disk_hits = engine.stats.disk_hits - base[2]
    return done


def _run_service(client: Any,
                 expansion: GridExpansion,
                 pending: List[Tuple[int, RunRequest, str]],
                 entries_by_key: Dict[str, Dict[str, Any]],
                 ledger_obj: Optional[SweepLedger],
                 accounting: SweepAccounting,
                 chunk: int,
                 progress: Optional[ProgressFn],
                 done: int, total: int) -> int:
    """Drive pending points through one service, surviving saturation.

    Two cooperating layers keep a 429 from killing the sweep: the
    client's own :class:`~repro.service.client.RetryPolicy` (when
    installed) sleeps out per-request ``Retry-After`` hints, and this
    loop handles what no per-request retry can fix — a chunk bigger
    than the admission queue will 429 *forever*, so on a saturated
    chunk the orchestrator halves it (down to singletons) and only
    then backs off per the server's hint.  Grid order is preserved:
    chunks split in place, never reorder.
    """
    from repro.service.client import (RetryPolicy, ServiceHTTPError,
                                      error_kind)
    policy = getattr(client, "retry", None) or RetryPolicy()
    before = _service_engine_stats(client)
    queue: List[List[Tuple[int, RunRequest, str]]] = _chunks(pending, chunk)
    attempts: Dict[str, int] = {}
    waited = 0.0
    while queue:
        batch = queue.pop(0)
        try:
            body = client.sweep(
                [expansion.points[index] for index, _, _ in batch],
                counters=True)
        except ServiceHTTPError as exc:
            if error_kind(exc.status, exc.payload) not in (
                    "saturated", "timeout", "draining"):
                raise
            accounting.retried += 1
            if len(batch) > 1:
                # Retrying the same size would hit the same admission
                # ceiling; halving converges on what the queue admits.
                mid = (len(batch) + 1) // 2
                queue[:0] = [batch[:mid], batch[mid:]]
                continue
            key = batch[0][2]
            attempt = attempts.get(key, 0) + 1
            attempts[key] = attempt
            if attempt >= policy.max_attempts:
                raise
            wait = policy.backoff(attempt, exc.retry_after)
            if waited + wait > policy.max_total_wait:
                raise
            policy._sleep(wait)
            waited += wait
            queue.insert(0, batch)
            continue
        described = body.get("points", [])
        if len(described) != len(batch):
            raise SweepError(
                f"service returned {len(described)} results for a "
                f"{len(batch)}-point chunk")
        for (index, request, key), desc in zip(batch, described):
            if desc.get("key") != key:
                raise SweepError(
                    f"service disagrees on the content address of point "
                    f"{expansion.points[index]!r} (ours {key[:12]}..., "
                    f"theirs {str(desc.get('key'))[:12]}...) — the client "
                    f"and server are running different simulator sources")
            entry = ledger_entry(request, dict(desc["summary"]),
                                 dict(desc["counters"]), key=key)
            entries_by_key[key] = entry
            if ledger_obj is not None:
                ledger_obj.append(entry)
            done += 1
            if progress is not None:
                progress(done, total, expansion.points[index], "service")
    after = _service_engine_stats(client)
    if before and after:
        accounting.executed = int(after["executed"] - before["executed"])
        accounting.memo_hits = int(after["memo_hits"] - before["memo_hits"])
        accounting.disk_hits = int(after["disk_hits"] - before["disk_hits"])
    return done
