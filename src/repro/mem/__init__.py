"""Cache and memory hierarchy models."""

from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import MemoryHierarchy

__all__ = ["Cache", "CacheConfig", "MemoryHierarchy"]
