"""Two-level memory hierarchy: split L1, unified L2, flat main memory.

Returns access latency in cycles for instruction fetches, data reads and
data writes, and exposes line invalidation for the coherence injector.
"""

from repro.mem.cache import Cache, CacheConfig


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 backed by main memory."""

    def __init__(
        self,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        memory_latency: int,
    ):
        self.l1i = Cache(l1i)
        self.l1d = Cache(l1d)
        self.l2 = Cache(l2)
        self.memory_latency = memory_latency
        # Cumulative latencies per outcome, computed once (these are on the
        # per-load / per-fetch hot path).
        self._i_hit = l1i.latency
        self._i_l2 = l1i.latency + l2.latency
        self._i_mem = l1i.latency + l2.latency + memory_latency
        self._d_hit = l1d.latency
        self._d_l2 = l1d.latency + l2.latency
        self._d_mem = l1d.latency + l2.latency + memory_latency

    def fetch(self, pc: int) -> int:
        """Instruction fetch latency for the line containing ``pc``."""
        if self.l1i.access(pc):
            return self._i_hit
        if self.l2.access(pc):
            return self._i_l2
        return self._i_mem

    def read(self, addr: int) -> int:
        """Data-read latency (load execution)."""
        if self.l1d.access(addr):
            return self._d_hit
        if self.l2.access(addr):
            return self._d_l2
        return self._d_mem

    def write(self, addr: int) -> int:
        """Data-write latency (store commit; write-allocate)."""
        # Stores retire through a write buffer; the returned latency is the
        # cache-occupancy cost, not a commit-blocking delay.
        if self.l1d.access(addr):
            return self._d_hit
        if self.l2.access(addr):
            return self._d_l2
        return self._d_mem

    def invalidate(self, addr: int) -> None:
        """Invalidate the data line containing ``addr`` (coherence)."""
        self.l1d.invalidate_line(addr)
        self.l2.invalidate_line(addr)

    @property
    def data_line_bytes(self) -> int:
        return self.l1d.config.line_bytes
