"""A set-associative, LRU, write-allocate cache timing model.

Only hit/miss timing is modelled (no data).  The model is deliberately
blocking-free: concurrent misses are assumed to overlap (the enclosing
pipeline already limits memory-level parallelism through issue bandwidth
and cache ports, which is the first-order effect for this paper's
mechanisms).
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two, log2_exact


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    def __post_init__(self):
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ConfigError(f"{self.name}: size and associativity must be positive")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ConfigError(f"{self.name}: size not divisible by assoc*line")
        if not is_power_of_two(self.size_bytes // (self.assoc * self.line_bytes)):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


class Cache:
    """LRU set-associative cache with hit/miss accounting."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = log2_exact(config.line_bytes)
        self._set_mask = config.num_sets - 1
        self._assoc = config.assoc
        # Each set is a list of tags ordered MRU-first.
        self._sets: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _split(self, addr: int):
        line = addr >> self._line_shift
        return line & self._set_mask, line

    def lookup(self, addr: int) -> bool:
        """Probe without modifying state (no LRU update, no fill)."""
        index, tag = self._split(addr)
        return tag in self._sets.get(index, ())

    def access(self, addr: int) -> bool:
        """Access one address; fill on miss; return hit flag."""
        tag = addr >> self._line_shift
        index = tag & self._set_mask
        ways = self._sets.get(index)
        if ways is None:
            ways = []
            self._sets[index] = ways
        if tag in ways:
            self.hits += 1
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self._assoc:
            ways.pop()
            self.evictions += 1
        return False

    def invalidate_line(self, addr: int) -> bool:
        """Drop the line containing ``addr``; return True when present."""
        index, tag = self._split(addr)
        ways = self._sets.get(index)
        if ways and tag in ways:
            ways.remove(tag)
            self.invalidations += 1
            return True
        return False

    def line_addr(self, addr: int) -> int:
        """Align ``addr`` to its cache line."""
        return (addr >> self._line_shift) << self._line_shift

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
