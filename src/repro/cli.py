"""Command-line interface: ``python -m repro <command>``.

Commands:

``workloads``
    List the 26 synthetic SPEC CPU2000 stand-ins and their key parameters.
``configs``
    Show the paper's three machine configurations (Table 1).
``run``
    Simulate one workload under one scheme/config; print the summary (and
    optionally the full counter dump as JSON).
``compare``
    Run baseline and DMDC side by side with the energy verdict.
``experiment``
    Regenerate one table/figure of the paper by id (see ``--list``), or
    every registered artifact in one planned, deduplicated, cached sweep
    (``--all``).
``trace``
    Generate, save, load, and inspect binary traces.
``timeline``
    Render an ASCII pipeline timeline of the first N instructions.
``profile``
    Run one workload with full observability attached and print the
    cycle/structure attribution report, top replay sites, and a recent
    pipeline timeline; exits non-zero if the event-derived attribution
    fails to reconcile with the counter totals (``docs/observability.md``).
``bench``
    Measure simulator throughput (committed instructions per second) for
    every scheme over a fixed workload mix; write ``BENCH_simulator.json``.
    With ``--service``, benchmark the sharded service instead: concurrent
    keep-alive clients at several shard counts, proving throughput scaling
    and response bit-identity; write ``BENCH_service.json``.
``check``
    Correctness tooling (see ``docs/correctness.md``): ``--static`` runs
    the repo-specific AST lint pass, ``--sanitize`` runs the shadow-oracle
    memory-ordering sanitizer over scheme/workload sweeps; with neither
    flag, both halves run.
``serve``
    Long-lived JSON-over-HTTP simulation service (see ``docs/service.md``):
    batched, deduplicating, backpressured access to the execution engine
    for streams of small design-point queries; ``--shards N`` runs N
    engine shards routed by content-address hash.
``sweep``
    The design-space autopilot (see ``docs/sweeps.md``): run a declarative
    grid (``--preset`` or ``--axis NAME=V1,V2,...``) through the local
    engine or a running service (``--service``), streaming results to a
    resumable JSONL ledger, then print the cache-hit accounting block and
    the paper-figure-style report.
"""

import argparse
import json
import os
import sys
import time

from repro.energy.model import EnergyModel
from repro.isa.serialize import load_trace_file, save_trace_file
from repro.sim.config import CONFIG1, CONFIG2, CONFIG3, SchemeConfig
from repro.sim.pipetrace import PipelineTracer
from repro.sim.processor import Processor
from repro.sim.runner import run_trace, run_workload
from repro.stats.report import format_table
from repro.workloads import SUITE, get_workload

CONFIGS = {"config1": CONFIG1, "config2": CONFIG2, "config3": CONFIG3}


def _scheme_from_args(args) -> SchemeConfig:
    """Decode ``--scheme`` through the canonical label codec, then overlay
    any explicitly-passed modifier flags."""
    from dataclasses import replace

    from repro.errors import ConfigError
    try:
        scheme = SchemeConfig.from_label(args.scheme)
    except ConfigError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    overrides = {}
    if args.yla_registers is not None:
        overrides["yla_registers"] = args.yla_registers
    if args.bloom_entries is not None:
        overrides["bloom_entries"] = args.bloom_entries
    if args.local:
        overrides["local"] = True
    if args.coherence:
        overrides["coherence"] = True
    if args.no_safe_loads:
        overrides["safe_loads"] = False
    if args.checking_queue is not None:
        overrides["checking_queue_entries"] = args.checking_queue
    if args.store_sets:
        overrides["store_sets"] = True
    return replace(scheme, **overrides) if overrides else scheme


def _add_scheme_args(parser) -> None:
    parser.add_argument("--scheme", default="conventional", metavar="LABEL",
                        help="canonical scheme label: a kind (conventional, "
                             "yla, bloom, dmdc, garg, value, storesets) plus "
                             "optional suffixes, e.g. dmdc-local, "
                             "dmdc-queue8, yla-regs16 (SchemeConfig.from_label)")
    parser.add_argument("--yla-registers", type=int, default=None)
    parser.add_argument("--bloom-entries", type=int, default=None)
    parser.add_argument("--local", action="store_true",
                        help="local DMDC windows (Section 4.4)")
    parser.add_argument("--coherence", action="store_true",
                        help="enable coherent DMDC / coherent baseline")
    parser.add_argument("--no-safe-loads", action="store_true",
                        help="disable safe-load detection (ablation)")
    parser.add_argument("--checking-queue", type=int, default=None,
                        metavar="N", help="use an N-entry checking queue")
    parser.add_argument("--store-sets", action="store_true",
                        help="enable store-set dependence prediction")
    parser.add_argument("--config", default="config2", choices=sorted(CONFIGS))
    parser.add_argument("--instructions", "-n", type=int, default=12_000)
    parser.add_argument("--invalidation-rate", type=float, default=0.0,
                        metavar="R", help="invalidations per 1000 cycles")
    parser.add_argument("--seed", type=int, default=1)


def cmd_workloads(args) -> int:
    rows = []
    for name, workload in SUITE.items():
        spec = workload.spec
        rows.append([
            name, spec.group, f"{spec.working_set_kb} KB",
            f"{spec.load_fraction:.0%}/{spec.store_fraction:.0%}",
            f"{spec.branch_fraction:.0%}",
            f"{spec.store_addr_dep_load:.1%}",
        ])
    print(format_table(
        ["workload", "group", "working set", "ld/st", "branches", "pointer stores"],
        rows, title="Synthetic SPEC CPU2000 stand-in suite"))
    return 0


def cmd_configs(args) -> int:
    rows = []
    for name, cfg in CONFIGS.items():
        rows.append([
            name, cfg.rob_size, f"{cfg.iq_int}/{cfg.iq_fp}",
            f"{cfg.lq_size}/{cfg.sq_size}",
            f"{cfg.regs_int}/{cfg.regs_fp}", cfg.checking_table,
        ])
    print(format_table(
        ["config", "ROB", "IQ int/fp", "LQ/SQ", "regs int/fp", "checking table"],
        rows, title="Machine configurations (paper Table 1)"))
    return 0


def _configured(args):
    config = CONFIGS[args.config].with_scheme(_scheme_from_args(args))
    if args.invalidation_rate:
        config = config.with_overrides(invalidation_rate=args.invalidation_rate)
    return config


def cmd_run(args) -> int:
    config = _configured(args)
    result = run_workload(config, get_workload(args.workload),
                          max_instructions=args.instructions, seed=args.seed)
    if args.json:
        payload = {
            "workload": result.workload,
            "config": result.config_name,
            "scheme": result.scheme_name,
            "summary": result.summary(),
            "counters": result.counters.as_dict(),
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(f"{result.workload} on {result.config_name} under {result.scheme_name}:")
    for key, value in result.summary().items():
        print(f"  {key:26s} {value:.4g}" if isinstance(value, float)
              else f"  {key:26s} {value}")
    return 0


def cmd_compare(args) -> int:
    config = CONFIGS[args.config]
    workload = get_workload(args.workload)
    base = run_workload(config, workload, max_instructions=args.instructions)
    dmdc_cfg = config.with_scheme(SchemeConfig(kind="dmdc", local=args.local))
    dmdc = run_workload(dmdc_cfg, workload, max_instructions=args.instructions)
    model = EnergyModel(config)
    e_base, e_dmdc = model.evaluate(base), model.evaluate(dmdc)
    rows = [
        ["IPC", f"{base.ipc:.3f}", f"{dmdc.ipc:.3f}"],
        ["LQ searches", base.counters["lq.searches_assoc"],
         dmdc.counters["lq.searches_assoc"]],
        ["replays", base.counters["replays"], dmdc.counters["replays"]],
        ["LQ energy", f"{e_base.lq:.0f}", f"{e_dmdc.lq:.0f}"],
        ["total energy", f"{e_base.total:.0f}", f"{e_dmdc.total:.0f}"],
    ]
    print(format_table(["metric", "baseline", dmdc.scheme_name], rows))
    print(f"LQ savings {1 - e_dmdc.lq / e_base.lq:.1%}, "
          f"net {1 - e_dmdc.total / e_base.total:.1%}, "
          f"slowdown {dmdc.cycles / base.cycles - 1:+.2%}")
    return 0


def _engine_progress(done: int, total: int, request, source: str) -> None:
    width = len(str(total))
    print(f"  [{done:>{width}}/{total}] {source:5s} {request.workload_name} "
          f"on {request.config.name}:{request.config.scheme.kind}",
          file=sys.stderr)


def _engine_options(args):
    """Explicit engine options from CLI flags (env vars remain defaults)."""
    from repro.exec import EngineOptions

    return EngineOptions.from_env(
        cache_enabled=False if args.no_cache else None,
        max_workers=args.jobs,
    )


def cmd_experiment_all(args, engine) -> int:
    from repro.exec import plan_experiments, union_requests, use_engine
    from repro.experiments.registry import run_experiment

    start = time.perf_counter()
    plans = plan_experiments(budget=args.budget)
    union = union_requests(plans)
    planned = sum(len(plan.requests) for plan in plans)
    print(f"engine: {planned} design points across {len(plans)} experiments "
          f"-> {len(union)} unique ({planned - len(union)} duplicates folded)",
          file=sys.stderr)

    before = dict(engine.stats.summary())
    engine.progress = _engine_progress
    try:
        engine.run(union)
    finally:
        engine.progress = None
    sweep_wall = time.perf_counter() - start

    with use_engine(engine):
        for plan in plans:
            kwargs = {"budget": args.budget} if args.budget else {}
            _, text = run_experiment(plan.id, **kwargs)
            print(text)
            print()
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                with open(os.path.join(args.out, f"{plan.id}.txt"), "w") as fh:
                    fh.write(text + "\n")
    if args.out:
        print(f"wrote {len(plans)} artifacts to {args.out}", file=sys.stderr)

    after = engine.stats.summary()
    executed = int(after["executed"] - before["executed"])
    disk_hits = int(after["disk_hits"] - before["disk_hits"])
    hit_rate = 100.0 * disk_hits / len(union) if union else 0.0
    print(f"engine: {disk_hits} disk cache hits, {executed} simulated; "
          f"cache hit rate {hit_rate:.1f}%; sweep {sweep_wall:.1f}s, "
          f"total {time.perf_counter() - start:.1f}s", file=sys.stderr)
    return 0


def cmd_experiment(args) -> int:
    from repro.exec import get_engine, use_engine
    from repro.experiments.registry import EXPERIMENTS, run_experiment
    if args.list or (not args.id and not args.all):
        for exp in EXPERIMENTS.values():
            print(f"  {exp.id:16s} {exp.paper_artifact}")
        return 0
    engine = get_engine(_engine_options(args))
    if args.all:
        return cmd_experiment_all(args, engine)
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; use --list", file=sys.stderr)
        return 2
    kwargs = {}
    if args.budget:
        kwargs["budget"] = args.budget
    with use_engine(engine):
        _, text = run_experiment(args.id, **kwargs)
    print(text)
    return 0


def cmd_trace(args) -> int:
    if args.inspect:
        trace = load_trace_file(args.inspect)
        print(f"{trace.name}: {len(trace)} micro-ops, group {trace.group}")
        for cls, frac in trace.mix().items():
            print(f"  {cls:8s} {frac:.1%}")
        return 0
    trace = get_workload(args.workload).generate(args.instructions)
    n = save_trace_file(trace, args.out)
    print(f"wrote {len(trace)} micro-ops ({n} bytes) to {args.out}")
    return 0


def cmd_report(args) -> int:
    from repro.reporting import write_report
    text = write_report(args.results, args.out)
    if not args.out:
        print(text)
    else:
        print(f"wrote report to {args.out}")
    return 0


def cmd_bench_service(args) -> int:
    from repro.perf import (
        BENCH_SERVICE_FILENAME,
        run_service_bench,
        validate_service_payload,
        write_service_bench,
    )

    shard_counts = tuple(args.shards) if args.shards else (1, 2, 4)
    payload = run_service_bench(
        shard_counts=shard_counts,
        clients=args.clients,
        points_per_client=args.points,
        instructions=args.instructions or 4_000,
        seed=args.seed,
        workers_per_shard=args.workers_per_shard,
        quick=args.quick,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    problems = validate_service_payload(payload)
    if problems:
        for problem in problems:
            print(f"bench: {problem}", file=sys.stderr)
        return 1
    rows = []
    for row in payload["runs"]:
        identical = row["bit_identical_vs_baseline"]
        rows.append([
            row["shards"],
            row["throughput"]["requests"],
            f"{row['throughput']['requests_per_second']:.1f}",
            f"{row['speedup_vs_baseline']:.2f}x",
            row["dedup"]["coalesced_inflight"],
            "baseline" if identical is None else ("yes" if identical else "NO"),
        ])
    print(format_table(
        ["shards", "requests", "req/s", "speedup", "coalesced", "bit-identical"],
        rows,
        title=f"Service scaling ({payload['clients']} clients x "
              f"{payload['points_per_client']} points)"))
    path = write_service_bench(payload, args.out or BENCH_SERVICE_FILENAME)
    print(f"wrote {path}")
    return 0


def cmd_bench(args) -> int:
    from repro.perf import run_bench, write_bench
    from repro.perf.bench import validate_payload

    if args.service:
        return cmd_bench_service(args)
    payload = run_bench(
        instructions=args.instructions,
        quick=args.quick,
        workloads=args.workload or None,
        seed=args.seed,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
        repeats=args.repeats,
    )
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"bench: {problem}", file=sys.stderr)
        return 1
    rows = [
        [label, row["instructions"], f"{row['sim_seconds']:.2f}",
         f"{row['instr_per_sec']:,.0f}"]
        for label, row in payload["schemes"].items()
    ]
    print(format_table(
        ["scheme", "instructions", "seconds", "instr/s"], rows,
        title=f"Simulator throughput ({', '.join(payload['workloads'])})"))
    print(f"aggregate: {payload['aggregate_instr_per_sec']:,.0f} instr/s "
          f"(fastpath {'on' if payload['fastpath_enabled'] else 'off'})")
    path = write_bench(payload, args.out or "BENCH_simulator.json")
    print(f"wrote {path}")
    return 0


#: Schemes that filter associative LQ searches by age: a sanitized run of
#: one of these must show *some* filtering activity, or the sweep proved
#: nothing about the mechanism under test.
_FILTERING_SCHEMES = frozenset(
    {"yla", "bloom", "dmdc", "dmdc-local", "dmdc-queue8"})


def _lint_payload(violations, rules) -> dict:
    """JSON shape for one lint pass: findings plus per-rule accounting.

    ``by_rule`` counts every active rule (zeroes included) so a consumer
    can tell "rule ran and found nothing" from "rule did not run".
    """
    by_rule = {rule.rule_id: 0 for rule in rules}
    for violation in violations:
        by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
    return {
        "violations": [v._asdict() for v in violations],
        "count": len(violations),
        "by_rule": by_rule,
        "active_rules": sorted(rule.rule_id for rule in rules),
    }


def cmd_check(args) -> int:
    from repro.analysis.conc import CONC_RULES, conc_rule_catalogue
    from repro.analysis.lint import format_violations, lint_paths, rule_catalogue
    from repro.analysis.lint.rules import RULES
    from repro.analysis.sanitizer import SCHEME_MATRIX, run_sanitized

    if args.list_rules:
        print(rule_catalogue())
        print()
        print(conc_rule_catalogue())
        return 0

    only = [name for name in ("static", "concurrency", "sanitize")
            if getattr(args, name)]
    do_static = not only or "static" in only
    do_concurrency = not only or "concurrency" in only
    do_sanitize = not only or "sanitize" in only
    payload = {}
    failed = False

    if do_static:
        violations = lint_paths(args.paths or ["src"])
        if not args.json:
            print(format_violations(violations))
        payload["static"] = _lint_payload(violations, RULES)
        failed = failed or bool(violations)

    if do_concurrency:
        violations = lint_paths(args.paths or ["src"], rules=CONC_RULES)
        if not args.json:
            print(format_violations(violations).replace(
                "--static", "--concurrency", 1))
        payload["concurrency"] = _lint_payload(violations, CONC_RULES)
        failed = failed or bool(violations)

    if do_sanitize:
        schemes = args.scheme or sorted(SCHEME_MATRIX)
        unknown = [s for s in schemes if s not in SCHEME_MATRIX]
        if unknown:
            print(f"unknown scheme(s) {', '.join(unknown)}; choose from "
                  f"{', '.join(sorted(SCHEME_MATRIX))}", file=sys.stderr)
            return 2
        workloads = args.workload or ["gzip", "mcf"]
        reports = []
        for workload_name in workloads:
            trace = get_workload(workload_name).generate(
                args.instructions + 2_000)
            for label in schemes:
                config = CONFIGS[args.config].with_scheme(SCHEME_MATRIX[label])
                result, report = run_sanitized(
                    config, trace, max_instructions=args.instructions,
                    seed=args.seed, strict=args.strict)
                filtered = (result.counters["lq.searches_filtered"]
                            + result.counters["stores.safe"])
                inactive = label in _FILTERING_SCHEMES and filtered == 0
                ok = report.clean and not inactive
                failed = failed or not ok
                entry = report.as_dict()
                entry.update(workload=workload_name, label=label,
                             filtered_searches=int(filtered), ok=ok)
                reports.append(entry)
                if not args.json:
                    note = " [NO FILTERING ACTIVITY]" if inactive else ""
                    print(f"{workload_name:>8s}/{label:<12s} "
                          f"{report.format()}{note}")
        payload["sanitize"] = reports

    if args.json:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    elif not failed:
        print("repro check: OK")
    return 1 if failed else 0


def cmd_serve(args) -> int:
    from repro.exec import EngineOptions
    from repro.service import ServiceConfig, serve

    options = EngineOptions.from_env(
        cache_enabled=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        max_workers=args.jobs,
        shards=args.shards,
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batch_window=args.batch_window / 1000.0,
        request_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        engine_options=options,
    )
    return serve(config, verbose=args.verbose)


def _parse_axis_value(token: str):
    """CLI axis token -> int, float, or string (in that order)."""
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token


def _sweep_spec(args):
    """Build the GridSpec named by the CLI flags."""
    from repro.sweeps import GridError, GridSpec, get_preset

    if args.preset and args.axis:
        raise GridError("give --preset or --axis grids, not both")
    if args.preset:
        spec = get_preset(args.preset)
        if args.baseline:
            spec.baseline = args.baseline
        return spec
    axes = {}
    for item in args.axis or []:
        if "=" not in item:
            raise GridError(
                f"bad --axis {item!r}; expected NAME=V1,V2,...")
        name, _, values = item.partition("=")
        axes[name.strip()] = [_parse_axis_value(v)
                              for v in values.split(",") if v.strip()]
    if args.scheme:
        axes.setdefault("scheme", list(args.scheme))
    if args.workload:
        axes.setdefault("workload", list(args.workload))
    if not axes:
        raise GridError(
            "nothing to sweep: give --preset NAME (see --list-presets) "
            "or --axis/--scheme/--workload")
    base = {"config": args.config, "seed": args.seed}
    if args.instructions is not None:
        base["instructions"] = args.instructions
    return GridSpec(axes=axes, base=base, baseline=args.baseline,
                    name=args.name)


def cmd_sweep(args) -> int:
    from repro.errors import ReproError
    from repro.sweeps import PRESETS, run_sweep, validate_report_payload

    if args.list_presets:
        rows = []
        for name, factory in sorted(PRESETS.items()):
            spec = factory()
            expansion = spec.expand()
            axes = ", ".join(f"{axis}[{len(values)}]"
                             for axis, values in spec.axes.items())
            rows.append([name, len(expansion), axes,
                         spec.baseline or "-"])
        print(format_table(["preset", "points", "axes", "baseline"], rows,
                           title="Sweep presets"))
        return 0

    client = None
    engine = None
    workers = None
    try:
        spec = _sweep_spec(args)
        if args.workers:
            if args.service:
                print("repro sweep: pass --workers or --service, not both",
                      file=sys.stderr)
                return 2
            spec_text = args.workers.strip()
            # A plain integer is a local pool size; anything with a
            # comma or colon is a service endpoint list (a single bare
            # port must be written HOST:PORT or PORT, — to fan out to
            # one service, prefer --service PORT anyway).
            if spec_text.isdigit():
                workers = int(spec_text)
                from repro.exec import get_engine
                engine = get_engine(_engine_options(args))
            else:
                from repro.service import RetryPolicy, ServiceClient
                policy = RetryPolicy(max_total_wait=args.max_retry_wait)
                workers = []
                for endpoint in spec_text.split(","):
                    endpoint = endpoint.strip()
                    if not endpoint:
                        continue
                    host, _, port = endpoint.rpartition(":")
                    workers.append(ServiceClient(
                        host=host or "127.0.0.1", port=int(port),
                        timeout=args.timeout, retry=policy))
        elif args.service:
            from repro.service import RetryPolicy, ServiceClient
            host, _, port = args.service.rpartition(":")
            client = ServiceClient(
                host=host or "127.0.0.1", port=int(port),
                timeout=args.timeout,
                retry=RetryPolicy(max_total_wait=args.max_retry_wait))
        else:
            from repro.exec import get_engine
            engine = get_engine(_engine_options(args))

        def progress(done, total, point, source):
            if args.quiet:
                return
            width = len(str(total))
            workload = point["workload"]
            name = workload if isinstance(workload, str) else workload["name"]
            print(f"  [{done:>{width}}/{total}] {source:7s} "
                  f"{point['scheme']} / {name}", file=sys.stderr)

        outcome = run_sweep(spec, engine=engine, client=client,
                            ledger=args.ledger, chunk=args.chunk,
                            progress=progress, limit=args.limit,
                            workers=workers)
    except ReproError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2

    print(outcome.accounting.format_block())
    if not outcome.complete:
        print(f"sweep incomplete: {len(outcome.entries)}/"
              f"{len(outcome.points)} points done"
              + (f"; re-run with --ledger {outcome.ledger_path} to resume"
                 if outcome.ledger_path else ""))

    report = None
    if outcome.complete and not args.no_report:
        report = outcome.report()
        print()
        print(report.render())

    if args.json_out:
        payload = {
            "schema": 1,
            "complete": outcome.complete,
            "accounting": outcome.accounting.as_dict(),
            "report": report.to_dict() if report is not None else None,
        }
        if report is not None:
            problems = validate_report_payload(payload["report"])
            if problems:
                for problem in problems:
                    print(f"repro sweep: report schema: {problem}",
                          file=sys.stderr)
                return 1
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0


def cmd_timeline(args) -> int:
    config = _configured(args)
    trace = get_workload(args.workload).generate(args.instructions + 2000)
    proc = Processor(config, trace, seed=args.seed)
    proc.tracer = PipelineTracer(capacity=args.rows * 4)
    proc.prewarm()
    proc.run(args.instructions)
    print(proc.tracer.render_timeline(max_rows=args.rows, max_width=args.width))
    return 0


def cmd_profile(args) -> int:
    from repro.obs.profile import profile_workload

    config = _configured(args)
    instructions = min(args.instructions, 4_000) if args.quick else args.instructions
    report = profile_workload(
        config, get_workload(args.workload),
        instructions=instructions, seed=args.seed,
        ring_capacity=args.events, jsonl_path=args.jsonl,
        timeline_capacity=max(args.rows * 4, 64))
    if args.json:
        json.dump(report.to_dict(include_events=args.dump_events),
                  sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(report.render(top=args.top, timeline_rows=args.rows,
                            timeline_width=args.width))
    if args.jsonl:
        print(f"wrote {report.recorder.events_emitted} events to {args.jsonl}",
              file=sys.stderr)
    if not report.ok:
        for line in report.attribution.mismatches():
            print(f"profile: reconciliation mismatch {line.name}: "
                  f"events={line.from_events} counters={line.from_counters}",
                  file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DMDC (MICRO 2006) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the synthetic suite")
    sub.add_parser("configs", help="show Table 1 machine configurations")

    p = sub.add_parser("run", help="simulate one workload")
    p.add_argument("workload")
    _add_scheme_args(p)
    p.add_argument("--json", action="store_true", help="dump counters as JSON")

    p = sub.add_parser("compare", help="baseline vs DMDC on one workload")
    p.add_argument("workload")
    p.add_argument("--config", default="config2", choices=sorted(CONFIGS))
    p.add_argument("--instructions", "-n", type=int, default=12_000)
    p.add_argument("--local", action="store_true")

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", nargs="?")
    p.add_argument("--list", action="store_true")
    p.add_argument("--budget", type=int, default=None)
    p.add_argument("--all", action="store_true",
                   help="plan the union of every experiment's design points "
                        "and regenerate all artifacts in one deduplicated, "
                        "cached sweep")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the disk result cache for this invocation")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="simulation worker processes (0 = serial; "
                        "default min(cpus, 12))")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="with --all, also write each rendered artifact to "
                        "DIR/<id>.txt")

    p = sub.add_parser("trace", help="generate or inspect binary traces")
    p.add_argument("--workload", default="gzip")
    p.add_argument("--instructions", "-n", type=int, default=10_000)
    p.add_argument("--out", default="trace.dmdc")
    p.add_argument("--inspect", metavar="FILE")

    p = sub.add_parser("report", help="assemble benchmark results into markdown")
    p.add_argument("--results", default="benchmarks/results")
    p.add_argument("--out", default=None)

    p = sub.add_parser("timeline", help="render an ASCII pipeline timeline")
    p.add_argument("workload")
    _add_scheme_args(p)
    p.add_argument("--rows", type=int, default=32)
    p.add_argument("--width", type=int, default=100)

    p = sub.add_parser(
        "profile", help="cycle/structure attribution profile of one run")
    p.add_argument("workload")
    _add_scheme_args(p)
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: cap the budget at 4000 instructions")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="replay sites to list (default %(default)s)")
    p.add_argument("--rows", type=int, default=24,
                   help="timeline rows (default %(default)s)")
    p.add_argument("--width", type=int, default=100,
                   help="timeline width in cycles (default %(default)s)")
    p.add_argument("--events", type=int, default=4096, metavar="N",
                   help="in-memory event ring capacity (default %(default)s)")
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="also append every event to FILE as JSON lines")
    p.add_argument("--json", action="store_true",
                   help="emit the attribution report as JSON")
    p.add_argument("--dump-events", action="store_true",
                   help="with --json, include the retained event ring")

    p = sub.add_parser(
        "check", help="lint pass + concurrency analysis + sanitizer")
    p.add_argument("--static", action="store_true",
                   help="run only the AST lint pass")
    p.add_argument("--concurrency", action="store_true",
                   help="run only the concurrency discipline analysis "
                        "(REPRO008-REPRO012)")
    p.add_argument("--sanitize", action="store_true",
                   help="run only the shadow-oracle sanitizer sweep")
    p.add_argument("--list-rules", action="store_true",
                   help="print the lint rule catalogue and exit")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src)")
    p.add_argument("--scheme", action="append", metavar="LABEL",
                   help="sanitize only LABEL (repeatable; default: the "
                        "full nine-scheme matrix)")
    p.add_argument("--workload", action="append", metavar="NAME",
                   help="sanitize on NAME (repeatable; default: gzip, mcf)")
    # Default budget chosen so the sweep actually crosses a true ordering
    # violation (mcf's first premature load lands before 6k instructions);
    # a sweep that never sees a violation proves soundness vacuously.
    p.add_argument("--instructions", "-n", type=int, default=6_000)
    p.add_argument("--config", default="config2", choices=sorted(CONFIGS))
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--strict", action="store_true",
                   help="raise on the first sanitizer defect")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser(
        "serve", help="run the batched, backpressured simulation service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8351,
                   help="TCP port (0 = ephemeral; the bound address is "
                        "printed on startup)")
    p.add_argument("--max-queue", type=int, default=256, metavar="N",
                   help="admission bound: max design points pending + "
                        "executing before 429 (default %(default)s)")
    p.add_argument("--max-batch", type=int, default=64, metavar="N",
                   help="max design points per engine batch")
    p.add_argument("--batch-window", type=float, default=5.0, metavar="MS",
                   help="micro-batch accumulation window in milliseconds")
    p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                   help="per-request wait before answering 503")
    p.add_argument("--drain-timeout", type=float, default=60.0, metavar="S",
                   help="SIGTERM drain bound in seconds")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="simulation worker processes (split across shards)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="engine shards; design points route to shards by "
                        "content-address hash (default: REPRO_SHARDS or 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="run without the disk result cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="disk result cache location")
    p.add_argument("--verbose", action="store_true",
                   help="log every request to stderr")

    p = sub.add_parser(
        "sweep", help="design-space autopilot: declarative grid -> report")
    p.add_argument("--preset", default=None, metavar="NAME",
                   help="run a named preset grid (see --list-presets)")
    p.add_argument("--list-presets", action="store_true",
                   help="list preset grids and exit")
    p.add_argument("--axis", action="append", metavar="NAME=V1,V2,...",
                   help="add a grid axis (repeatable): point fields "
                        "(workload, scheme, config, instructions, seed), "
                        "scheme knobs (table, regs, gran, queue, entries), "
                        "or any MachineConfig field (width, lq_size, ...)")
    p.add_argument("--scheme", action="append", metavar="LABEL",
                   help="shorthand for --axis scheme=... (repeatable)")
    p.add_argument("--workload", action="append", metavar="NAME",
                   help="shorthand for --axis workload=... (repeatable)")
    p.add_argument("--config", default="config2", choices=sorted(CONFIGS))
    p.add_argument("--instructions", "-n", type=int, default=None,
                   help="committed-instruction budget per point "
                        "(default: the codec's 12000)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--baseline", default=None, metavar="LABEL",
                   help="inject LABEL once per machine slice and report "
                        "speedups/energy against it")
    p.add_argument("--name", default="grid",
                   help="grid name for the ledger header and report")
    p.add_argument("--ledger", default=None, metavar="FILE",
                   help="stream results to FILE (JSONL); re-running with "
                        "the same grid resumes, skipping completed points")
    p.add_argument("--service", default=None, metavar="[HOST:]PORT",
                   help="execute through a running `repro serve` instance "
                        "instead of the local engine")
    p.add_argument("--workers", default=None, metavar="N|HOST:PORT,...",
                   help="fan the sweep out: an integer runs a local pool "
                        "of N single-slot engine processes; a comma list "
                        "of [HOST:]PORT endpoints partitions points "
                        "across several `repro serve` instances (the "
                        "ledger stays byte-identical to a 1-worker run)")
    p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                   help="with --service/--workers: per-request HTTP timeout")
    p.add_argument("--max-retry-wait", type=float, default=120.0,
                   metavar="S",
                   help="total backpressure budget: cumulative seconds a "
                        "saturated service (429 + Retry-After) may keep "
                        "one point waiting before the sweep gives up")
    p.add_argument("--chunk", type=int, default=64, metavar="N",
                   help="points per engine batch / service request")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="simulate at most N missing points this invocation "
                        "(the ledger makes the rest resumable)")
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="write the machine-readable report artifact "
                        "(schema-validated) to FILE")
    p.add_argument("--no-report", action="store_true",
                   help="skip the paper-figure-style report")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the disk result cache for this invocation")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="simulation worker processes")

    p = sub.add_parser("bench", help="measure simulator throughput")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: fewer workloads/schemes, small budget")
    p.add_argument("--instructions", "-n", type=int, default=None,
                   help="committed-instruction budget per run "
                        "(default: REPRO_INSTRUCTIONS or 12000)")
    p.add_argument("--workload", action="append", metavar="NAME",
                   help="benchmark only NAME (repeatable; default: the mix)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--repeats", type=int, default=1,
                   help="timings per (workload, scheme) pair, keeping the "
                        "fastest (committed payloads use 3)")
    p.add_argument("--service", action="store_true",
                   help="benchmark the sharded service instead of the raw "
                        "simulator: boot the HTTP service at each --shards "
                        "count, drive it with concurrent keep-alive clients, "
                        "and write BENCH_service.json")
    p.add_argument("--shards", type=int, action="append", metavar="N",
                   help="with --service: shard count to measure (repeatable; "
                        "default 1, 2, 4; the first is the speedup baseline)")
    p.add_argument("--clients", type=int, default=4, metavar="K",
                   help="with --service: concurrent load-generator clients")
    p.add_argument("--points", type=int, default=8, metavar="M",
                   help="with --service: distinct design points per client "
                        "in the timed phase")
    p.add_argument("--workers-per-shard", type=int, default=1, metavar="N",
                   help="with --service: engine worker processes per shard")
    p.add_argument("--out", default=None,
                   help="output JSON path (default: BENCH_simulator.json, "
                        "or BENCH_service.json with --service)")

    return parser


_COMMANDS = {
    "workloads": cmd_workloads,
    "configs": cmd_configs,
    "run": cmd_run,
    "compare": cmd_compare,
    "experiment": cmd_experiment,
    "trace": cmd_trace,
    "report": cmd_report,
    "timeline": cmd_timeline,
    "profile": cmd_profile,
    "bench": cmd_bench,
    "check": cmd_check,
    "serve": cmd_serve,
    "sweep": cmd_sweep,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
