"""Random invalidation injection (paper Section 6.2.4).

The paper evaluates coherence robustness "using injected random
invalidations at certain rates" rather than full multiprocessor traffic;
this injector is that methodology.  Invalidations target lines drawn
uniformly from a long history of touched lines: like the paper's random
addresses, most land on lines with no in-flight access (and are filtered
by the line-interleaved YLA set), while a minority collide with the
active working set — at a configurable expected rate per 1000 cycles.
"""

from typing import List, Optional

from repro.utils.rng import DeterministicRng


class InvalidationInjector:
    """Per-cycle Bernoulli invalidation source over the data address span.

    Most injected lines are random addresses within the program's data
    span — usually not cache-resident and without in-flight accesses, so
    they exercise the filtering/window machinery more than the caches.  A
    small fraction (``hot_fraction``) targets recently touched lines: real
    producer-consumer collisions that evict data and can hit in-flight
    loads.
    """

    def __init__(self, rng: DeterministicRng, rate_per_kcycle: float,
                 line_bytes: int, history: int = 64, hot_fraction: float = 0.03):
        self.rng = rng
        self.rate = rate_per_kcycle
        self.line_bytes = line_bytes
        self.history = history
        self.hot_fraction = hot_fraction
        self._recent_lines: List[int] = []
        self._span_lo: Optional[int] = None
        self._span_hi: Optional[int] = None
        self.injected = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def observe(self, addr: int) -> None:
        """Track a committed-path data address as a future target."""
        line = addr & ~(self.line_bytes - 1)
        self._recent_lines.append(line)
        if len(self._recent_lines) > self.history:
            self._recent_lines.pop(0)
        if self._span_lo is None or line < self._span_lo:
            self._span_lo = line
        if self._span_hi is None or line > self._span_hi:
            self._span_hi = line

    def maybe_invalidate(self) -> Optional[int]:
        """Roll the per-cycle dice; return a victim line address or None."""
        if self.rate <= 0 or not self._recent_lines:
            return None
        if self.rng.random() >= self.rate / 1000.0:
            return None
        self.injected += 1
        if self.rng.random() < self.hot_fraction:
            return self.rng.choice(self._recent_lines)
        span = max(self.line_bytes, self._span_hi - self._span_lo)
        offset = self.rng.randint(0, span // self.line_bytes) * self.line_bytes
        return self._span_lo + offset
