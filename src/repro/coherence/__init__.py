"""External coherence traffic modelling."""

from repro.coherence.injector import InvalidationInjector

__all__ = ["InvalidationInjector"]
