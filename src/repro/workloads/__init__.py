"""Synthetic workloads standing in for SPEC CPU2000.

The paper evaluates on all 26 SPEC CPU2000 benchmarks, which are not
redistributable and would be unrunnable on a Python-speed model anyway.
Each benchmark is replaced by a deterministic synthetic generator
(:class:`~repro.workloads.base.SyntheticWorkload`) whose parameters match
the *qualitative properties the studied mechanisms are sensitive to*:
instruction mix, branch predictability, working-set size and spatial
locality, store-address resolution delay (the driver of unsafe stores),
and store-to-load aliasing distance.  See DESIGN.md for the substitution
rationale.
"""

from repro.workloads.base import SyntheticWorkload, WorkloadSpec
from repro.workloads.suite import (
    SUITE,
    INT_WORKLOADS,
    FP_WORKLOADS,
    get_workload,
    group_of,
    suite_subset,
)

__all__ = [
    "SyntheticWorkload",
    "WorkloadSpec",
    "SUITE",
    "INT_WORKLOADS",
    "FP_WORKLOADS",
    "get_workload",
    "group_of",
    "suite_subset",
]
