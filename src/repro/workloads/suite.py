"""The 26-benchmark synthetic stand-in suite for SPEC CPU2000.

Each entry mirrors the qualitative character of its namesake: working-set
size, access patterns, branch behaviour, pointer intensity (which controls
how late store addresses resolve — the property YLA filtering keys on),
and floating-point content.  Parameters are hand-set from the benchmarks'
well-known characterisations; they are behavioural stand-ins, not
measurements of the originals.
"""

import zlib
from typing import Dict, List

from repro.errors import ConfigError
from repro.workloads.base import SyntheticWorkload, WorkloadSpec

_P = dict  # shorthand for pattern/profile dicts


def _spec(name, group, **kw) -> WorkloadSpec:
    # crc32, not hash(): the per-process randomisation of str hashing would
    # silently break run-to-run determinism.
    return WorkloadSpec(name=name, group=group, seed=zlib.crc32(name.encode()) % 100_000, **kw)


_INT_COMMON = dict(
    index_mul_fraction=0.40,
    store_revisit=0.30,
)


def _ispec(name, **kw) -> WorkloadSpec:
    merged = dict(_INT_COMMON)
    merged.update(kw)
    return _spec(name, "INT", **merged)


_INT_SPECS: List[WorkloadSpec] = [
    # Compression: small working set, streaming + random table lookups.
    _ispec("gzip", working_set_kb=192, store_addr_dep_load=0.03, store_addr_dep_alu=0.58,
          pattern_weights=_P(stream=0.45, strided=0.1, random=0.4, chase=0.05),
          branch_bias=0.93, branch_profile=_P(loop=0.55, biased=0.35, correlated=0.1)),
    # Place-and-route: pointer-heavy graph walking.
    _ispec("vpr", working_set_kb=768, store_addr_dep_load=0.05, store_addr_dep_alu=0.58,
          pattern_weights=_P(stream=0.2, strided=0.1, random=0.4, chase=0.3),
          branch_bias=0.90, rmw_fraction=0.12),
    # Compiler: large code footprint, branchy, mixed access.
    _ispec("gcc", working_set_kb=1024, code_footprint_kb=96,
          store_addr_dep_load=0.05, store_addr_dep_alu=0.58, branch_fraction=0.17,
          pattern_weights=_P(stream=0.25, strided=0.15, random=0.35, chase=0.25),
          branch_profile=_P(loop=0.35, biased=0.45, correlated=0.2), branch_bias=0.89),
    # mcf: notorious pointer chaser with a huge working set.
    _ispec("mcf", working_set_kb=8192, store_addr_dep_load=0.12, store_addr_dep_alu=0.55,
          pattern_weights=_P(stream=0.1, strided=0.05, random=0.35, chase=0.5),
          load_fraction=0.30, branch_bias=0.89, muldiv_fraction=0.02),
    # Chess: branchy search with small tables.
    _ispec("crafty", working_set_kb=256, store_addr_dep_load=0.04, store_addr_dep_alu=0.58,
          branch_fraction=0.18, branch_bias=0.91,
          branch_profile=_P(loop=0.3, biased=0.5, correlated=0.2),
          pattern_weights=_P(stream=0.25, strided=0.15, random=0.5, chase=0.1)),
    # Parser: dictionary lookups, pointer lists.
    _ispec("parser", working_set_kb=512, store_addr_dep_load=0.07, store_addr_dep_alu=0.58,
          pattern_weights=_P(stream=0.2, strided=0.1, random=0.4, chase=0.3),
          branch_fraction=0.16, branch_bias=0.90, rmw_fraction=0.1),
    # eon: C++ ray tracer; some FP, predictable loops.
    _ispec("eon", working_set_kb=128, fp_fraction=0.2, fp_load_fraction=0.15,
          store_addr_dep_load=0.02, store_addr_dep_alu=0.45, branch_bias=0.94,
          pattern_weights=_P(stream=0.45, strided=0.2, random=0.3, chase=0.05)),
    # perlbmk: interpreter — big code, indirect-ish branches.
    _ispec("perlbmk", working_set_kb=512, code_footprint_kb=112,
          store_addr_dep_load=0.05, store_addr_dep_alu=0.56, branch_fraction=0.18,
          branch_profile=_P(loop=0.3, biased=0.5, correlated=0.2), branch_bias=0.88,
          pattern_weights=_P(stream=0.25, strided=0.1, random=0.4, chase=0.25)),
    # gap: group theory — integer math heavy.
    _ispec("gap", working_set_kb=1024, store_addr_dep_load=0.04, store_addr_dep_alu=0.55,
          muldiv_fraction=0.08, branch_bias=0.92,
          pattern_weights=_P(stream=0.35, strided=0.15, random=0.35, chase=0.15)),
    # vortex: object database — pointer structures, stores everywhere.
    _ispec("vortex", working_set_kb=1536, store_fraction=0.15,
          store_addr_dep_load=0.07, store_addr_dep_alu=0.60, code_footprint_kb=80,
          pattern_weights=_P(stream=0.2, strided=0.1, random=0.4, chase=0.3),
          branch_bias=0.91),
    # bzip2: compression — streaming with random histogram updates.
    _ispec("bzip2", working_set_kb=384, store_addr_dep_load=0.03, store_addr_dep_alu=0.52,
          rmw_fraction=0.15,
          pattern_weights=_P(stream=0.5, strided=0.1, random=0.35, chase=0.05),
          branch_bias=0.92),
    # twolf: placement — pointer graphs, small structures.
    _ispec("twolf", working_set_kb=640, store_addr_dep_load=0.08, store_addr_dep_alu=0.58,
          pattern_weights=_P(stream=0.15, strided=0.15, random=0.4, chase=0.3),
          branch_fraction=0.16, branch_bias=0.90),
]

_FP_COMMON = dict(
    branch_fraction=0.07,
    branch_bias=0.96,
    branch_profile=_P(loop=0.8, biased=0.1, correlated=0.1),
    loop_period=24,
    fp_fraction=0.6,
    fp_load_fraction=0.65,
    store_addr_dep_load=0.006,
    store_addr_dep_alu=0.42,
    load_addr_dep_alu=0.50,
    index_mul_fraction=0.30,
    store_data_slow=0.6,
    muldiv_fraction=0.12,
    rmw_fraction=0.04,
    store_revisit=0.05,
)


def _fspec(name, **kw) -> WorkloadSpec:
    merged = dict(_FP_COMMON)
    merged.update(kw)
    return _spec(name, "FP", **merged)


_FP_SPECS: List[WorkloadSpec] = [
    _fspec("wupwise", working_set_kb=2048,
           pattern_weights=_P(stream=0.6, strided=0.25, random=0.15, chase=0.0)),
    # swim: pure stencil streaming over big grids.
    _fspec("swim", working_set_kb=6144, load_fraction=0.30, store_fraction=0.12,
           pattern_weights=_P(stream=0.75, strided=0.2, random=0.05, chase=0.0)),
    _fspec("mgrid", working_set_kb=4096, load_fraction=0.32,
           pattern_weights=_P(stream=0.6, strided=0.35, random=0.05, chase=0.0)),
    _fspec("applu", working_set_kb=3072,
           pattern_weights=_P(stream=0.55, strided=0.35, random=0.1, chase=0.0)),
    # mesa: 3D rendering in software — more integer/control than most FP.
    _fspec("mesa", working_set_kb=512, fp_fraction=0.45, branch_fraction=0.12,
           branch_bias=0.94, store_addr_dep_load=0.012, store_addr_dep_alu=0.52,
           pattern_weights=_P(stream=0.45, strided=0.2, random=0.3, chase=0.05)),
    _fspec("galgel", working_set_kb=1024, muldiv_fraction=0.16,
           pattern_weights=_P(stream=0.55, strided=0.3, random=0.15, chase=0.0)),
    # art: neural net — small working set hammered with streams.
    _fspec("art", working_set_kb=256, load_fraction=0.34,
           pattern_weights=_P(stream=0.7, strided=0.15, random=0.15, chase=0.0)),
    # equake: sparse solver — indexed (gather) accesses.
    _fspec("equake", working_set_kb=2560, store_addr_dep_load=0.02, store_addr_dep_alu=0.58,
           pattern_weights=_P(stream=0.4, strided=0.2, random=0.35, chase=0.05)),
    _fspec("facerec", working_set_kb=1024,
           pattern_weights=_P(stream=0.55, strided=0.25, random=0.2, chase=0.0)),
    # ammp: molecular dynamics — neighbour lists (some chasing).
    _fspec("ammp", working_set_kb=2048, store_addr_dep_load=0.015, store_addr_dep_alu=0.58,
           pattern_weights=_P(stream=0.35, strided=0.2, random=0.35, chase=0.1)),
    _fspec("lucas", working_set_kb=4096, muldiv_fraction=0.2,
           pattern_weights=_P(stream=0.65, strided=0.25, random=0.1, chase=0.0)),
    _fspec("fma3d", working_set_kb=3072, branch_fraction=0.09,
           pattern_weights=_P(stream=0.5, strided=0.3, random=0.2, chase=0.0)),
    # sixtrack: particle tracking — long FP chains, tiny working set.
    _fspec("sixtrack", working_set_kb=192, muldiv_fraction=0.18,
           pattern_weights=_P(stream=0.6, strided=0.25, random=0.15, chase=0.0)),
    _fspec("apsi", working_set_kb=1536,
           pattern_weights=_P(stream=0.5, strided=0.3, random=0.2, chase=0.0)),
]

#: All 26 workloads, keyed by name.
SUITE: Dict[str, SyntheticWorkload] = {
    spec.name: SyntheticWorkload(spec) for spec in _INT_SPECS + _FP_SPECS
}

INT_WORKLOADS: List[str] = [s.name for s in _INT_SPECS]
FP_WORKLOADS: List[str] = [s.name for s in _FP_SPECS]


def get_workload(name: str) -> SyntheticWorkload:
    """Look up one suite workload by SPEC name."""
    try:
        return SUITE[name]
    except KeyError:
        raise ConfigError(f"unknown workload {name!r}; choices: {sorted(SUITE)}") from None


def group_of(name: str) -> str:
    """Reporting group (INT/FP) of a suite workload."""
    return get_workload(name).group


def suite_subset(per_group: int) -> List[str]:
    """First ``per_group`` workloads of each group (fast experiment mode)."""
    return INT_WORKLOADS[:per_group] + FP_WORKLOADS[:per_group]
