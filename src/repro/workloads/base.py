"""Parameterised synthetic workload generator.

One :class:`WorkloadSpec` describes a program's behaviour; one
:class:`SyntheticWorkload` turns it into a deterministic micro-op trace.
The generator models:

* **data regions** — a configurable number of arrays spanning the working
  set, accessed by streaming, strided, random, or pointer-chasing loads;
* **store-address resolution delay** — a store's address registers can be
  wired to a recent load's destination (pointer-style addressing), which
  delays its resolution in the pipeline and creates the *unsafe stores*
  the paper's mechanisms target;
* **read-modify-write idioms** — load/op/store to one address, exercising
  store-to-load forwarding and load rejection;
* **engineered aliasing conflicts** — rare slow-store/fast-load pairs to
  the same address that produce genuine memory-order violations at roughly
  the per-million-instruction rates the paper observes;
* **branch sites** — loop, biased, alternating and history-correlated
  branches with stable PCs so the combined predictor behaves realistically.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.isa.trace import Trace
from repro.utils.rng import DeterministicRng

# Architectural register conventions used by the generator.
_INT_BASE_REGS = (28, 29, 30, 31)    # always-ready base pointers
_INT_POOL = tuple(range(1, 24))      # rotating integer destinations
_PTR_REGS = (24, 25, 26, 27)         # pointer registers (written only by pointer loads)
_FP_POOL = tuple(range(33, 63))      # rotating FP destinations


@dataclass(frozen=True)
class WorkloadSpec:
    """Behavioural parameters of one synthetic benchmark."""

    name: str
    group: str = "INT"                     # INT or FP reporting group
    # Instruction mix (fractions of the dynamic stream)
    load_fraction: float = 0.26
    store_fraction: float = 0.11
    branch_fraction: float = 0.14
    fp_fraction: float = 0.0               # fraction of ALU ops that are FP
    muldiv_fraction: float = 0.04          # fraction of ALU ops that are mul/div
    # Memory behaviour
    working_set_kb: int = 256
    n_arrays: int = 4
    #: Temporal locality of non-streaming accesses: fraction served from a
    #: small, slowly drifting hot region of each array.
    hot_fraction: float = 0.92
    hot_region_kb: int = 4
    #: Fraction of branches testing a long-ready value (loop counters etc.);
    #: the rest depend on recent computation and resolve later.
    branch_fast_src: float = 0.75
    pattern_weights: Dict[str, float] = field(
        default_factory=lambda: {"stream": 0.4, "strided": 0.2, "random": 0.3, "chase": 0.1}
    )
    stride_bytes: int = 8
    wide_access_fraction: float = 0.75     # 8-byte accesses; rest are 4/2 B
    fp_load_fraction: float = 0.0          # loads targeting FP registers
    #: Loads whose address trails a recent index computation (the rest use
    #: an always-ready base register).  Symmetric with store_addr_dep_alu:
    #: when both loads and stores wait a few cycles for their index, memory
    #: issue stays close to program order -- the property YLA exploits.
    load_addr_dep_alu: float = 0.50
    #: Among index-dependent memory ops, the fraction whose index is
    #: computed *immediately before* the access (same dispatch group, so the
    #: access trails its neighbours by a cycle or two).  The rest use an
    #: index computed several instructions earlier (already ready).  This is
    #: the main dial for how far memory issue departs from program order.
    fresh_index_fraction: float = 0.95
    #: Fraction of fresh index computations that are two dependent ops
    #: (shift+add style row-major indexing) rather than a single add.
    #: Stretches how long the access waits for its address by ~1-2 cycles.
    index_mul_fraction: float = 0.40
    # Store timing behaviour (drives unsafe stores).  A store's address is
    # either immediately ready (base register), briefly delayed behind a
    # recent ALU result (indexed addressing -- the common source of the
    # paper's unsafe stores), or long-delayed behind a load (pointer
    # stores, the pathological tail).
    store_addr_dep_alu: float = 0.45
    store_addr_dep_load: float = 0.10
    store_data_slow: float = 0.35          # store data from a long-latency op
    # Idioms
    rmw_fraction: float = 0.08             # of stores that are load-op-store
    #: Probability that a store's address is re-loaded a few dozen
    #: instructions later (histogram/counter update idiom).  These revisit
    #: loads are what DMDC's timing approximation falsely replays: they
    #: issue after the store resolved yet land in its checking window.
    store_revisit: float = 0.10
    revisit_distance: int = 24
    conflict_per_kinstr: float = 0.01      # engineered true-violation setups
    # Branch behaviour
    branch_sites: int = 24
    branch_profile: Dict[str, float] = field(
        default_factory=lambda: {"loop": 0.5, "biased": 0.3, "correlated": 0.2}
    )
    loop_period: int = 12
    branch_bias: float = 0.85
    # Code behaviour
    code_footprint_kb: int = 24
    seed: int = 7

    def __post_init__(self):
        if self.group not in ("INT", "FP"):
            raise ConfigError(f"{self.name}: group must be INT or FP")
        total = self.load_fraction + self.store_fraction + self.branch_fraction
        if total >= 1.0:
            raise ConfigError(f"{self.name}: memory+branch fractions exceed 1.0")
        if not self.pattern_weights:
            raise ConfigError(f"{self.name}: empty pattern weights")


class _BranchSite:
    """One static branch with a stable PC and an outcome generator."""

    __slots__ = ("pc", "kind", "period", "bias", "counter", "history", "rng")

    def __init__(self, pc: int, kind: str, period: int, bias: float, rng: DeterministicRng):
        self.pc = pc
        self.kind = kind
        self.period = max(2, period)
        self.bias = bias
        self.counter = 0
        self.history = 0
        self.rng = rng

    def next_outcome(self) -> bool:
        self.counter += 1
        if self.kind == "loop":
            return self.counter % self.period != 0
        if self.kind == "alternating":
            return self.counter % 2 == 0
        if self.kind == "correlated":
            # Outcome = parity of the last three outcomes: deterministic,
            # learnable by global history, opaque to the bimodal table.
            outcome = bin(self.history & 0b111).count("1") % 2 == 0
            self.history = ((self.history << 1) | int(outcome)) & 0xFF
            return outcome
        return self.rng.random() < self.bias


class _Array:
    """One data region with a streaming cursor and a drifting hot window."""

    __slots__ = ("base", "size", "cursor", "stride", "hot_base", "hot_size",
                 "hot_fraction", "_drift")

    def __init__(self, base: int, size: int, stride: int,
                 hot_size: int, hot_fraction: float):
        self.base = base
        self.size = size
        self.cursor = 0
        self.stride = stride
        self.hot_size = min(hot_size, size)
        self.hot_fraction = hot_fraction
        self.hot_base = 0
        self._drift = 0

    def stream_next(self) -> int:
        addr = self.base + self.cursor
        self.cursor = (self.cursor + self.stride) % self.size
        return addr

    def strided_next(self, stride: int) -> int:
        addr = self.base + self.cursor
        self.cursor = (self.cursor + stride) % self.size
        return addr

    def random_addr(self, rng: DeterministicRng) -> int:
        # Temporal locality: mostly hit the hot window, which drifts slowly
        # through the array so cold misses still occur at a realistic rate.
        self._drift += 1
        if self._drift >= 512:
            self._drift = 0
            self.hot_base = (self.hot_base + self.hot_size // 2) % max(1, self.size - self.hot_size)
        if rng.random() < self.hot_fraction:
            offset = self.hot_base + (rng.randint(0, max(0, self.hot_size - 8)) & ~0x7)
        else:
            offset = rng.randint(0, max(0, self.size - 8)) & ~0x7
        return self.base + min(offset, self.size - 8)


class SyntheticWorkload:
    """Deterministic trace generator for one :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def group(self) -> str:
        return self.spec.group

    def generate(self, num_instructions: int) -> Trace:
        """Build a fresh trace of ``num_instructions`` micro-ops."""
        return _Generator(self.spec).build(num_instructions)

    def __repr__(self) -> str:
        return f"<SyntheticWorkload {self.spec.name} ({self.spec.group})>"


class _Generator:
    """Stateful single-use trace builder (one per generate() call)."""

    CODE_BASE = 0x0040_0000
    DATA_BASE = 0x1000_0000
    REGION_SPACING = 0x0100_0000

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.rng = DeterministicRng(spec.seed, f"workload:{spec.name}")
        self.trace = Trace(spec.name, group=spec.group)

        size_per_array = max(4096, spec.working_set_kb * 1024 // spec.n_arrays)
        self.arrays = [
            _Array(
                self.DATA_BASE + i * self.REGION_SPACING,
                size_per_array,
                spec.stride_bytes,
                hot_size=spec.hot_region_kb * 1024,
                hot_fraction=spec.hot_fraction,
            )
            for i in range(spec.n_arrays)
        ]
        self.branch_sites = self._make_branch_sites()
        self._site_cursor = 0
        # Aliasing conflict pairs live at stable PCs (they are static code),
        # which lets PC-indexed dependence predictors learn them.
        self._conflict_sites = [
            (self.CODE_BASE + 0x20000 + i * 0x10, self.CODE_BASE + 0x20008 + i * 0x10)
            for i in range(4)
        ]
        self._conflict_cursor = 0

        self.pc = self.CODE_BASE
        self.code_bytes = spec.code_footprint_kb * 1024

        # Register rotation state
        self._int_cursor = 0
        self._fp_cursor = 0
        self._ptr_cursor = 0
        self._recent_load_dsts: List[int] = []
        self._recent_slow_dsts: List[int] = []
        self._recent_fast_dsts: List[int] = []
        self._recent_dsts: List[int] = [_INT_BASE_REGS[0]]
        self._last_chase_dst: Optional[int] = None

        # Pending idiom queues: list of (countdown, emit_fn)
        self._pending: List[Tuple[int, str, dict]] = []

    # ------------------------------------------------------------------
    def _make_branch_sites(self) -> List[_BranchSite]:
        spec = self.spec
        kinds = list(spec.branch_profile.keys())
        weights = list(spec.branch_profile.values())
        sites = []
        site_rng = self.rng.child("branches")
        for i in range(spec.branch_sites):
            kind = site_rng.choices(kinds, weights)[0]
            pc = self.CODE_BASE + 0x40 + i * 0x90
            period = spec.loop_period + site_rng.randint(-spec.loop_period // 3, spec.loop_period // 3)
            bias = min(0.99, max(0.5, spec.branch_bias + site_rng.random() * 0.1 - 0.05))
            sites.append(_BranchSite(pc, kind, period, bias, site_rng.child(f"site{i}")))
        return sites

    # -- register helpers ---------------------------------------------
    def _next_int_reg(self) -> int:
        reg = _INT_POOL[self._int_cursor % len(_INT_POOL)]
        self._int_cursor += 1
        return reg

    def _next_fp_reg(self) -> int:
        reg = _FP_POOL[self._fp_cursor % len(_FP_POOL)]
        self._fp_cursor += 1
        return reg

    def _note_dst(self, reg: int, is_load: bool = False, is_slow: bool = False,
                  is_short: bool = False) -> None:
        self._recent_dsts.append(reg)
        if len(self._recent_dsts) > 8:
            self._recent_dsts.pop(0)
        if is_short and reg < 32:
            # Result of a 1-cycle op whose own inputs were long-ready
            # (induction-variable updates): usable as a "nearly ready"
            # address index.
            self._recent_fast_dsts.append(reg)
            if len(self._recent_fast_dsts) > 4:
                self._recent_fast_dsts.pop(0)
        if is_load:
            self._recent_load_dsts.append(reg)
            if len(self._recent_load_dsts) > 6:
                self._recent_load_dsts.pop(0)
        if is_slow:
            self._recent_slow_dsts.append(reg)
            if len(self._recent_slow_dsts) > 6:
                self._recent_slow_dsts.pop(0)

    def _base_reg(self) -> int:
        return self.rng.choice(_INT_BASE_REGS)

    def _index_reg(self) -> int:
        """An address-index register for an alu-tier memory access.

        With probability ``fresh_index_fraction`` the index is computed
        right here (the access will wait a cycle or two for it); otherwise
        a previously computed induction value is reused (already ready).
        """
        if self.rng.random() < self.spec.fresh_index_fraction or not self._recent_fast_dsts:
            dst = self._next_int_reg()
            self.trace.append(
                MicroOp(self._next_pc(), InstrClass.IALU,
                        srcs=(self._base_reg(), self._base_reg()), dst=dst)
            )
            if self.rng.random() < self.spec.index_mul_fraction:
                # Two-op address arithmetic (shift then add): the access
                # trails its dispatch group by one more cycle.
                dst2 = self._next_int_reg()
                self.trace.append(
                    MicroOp(self._next_pc(), InstrClass.IALU,
                            srcs=(dst, self._base_reg()), dst=dst2)
                )
                dst = dst2
            else:
                self._note_dst(dst, is_short=True)
            return dst
        return self._recent_fast_dsts[-1]

    # -- pc management ---------------------------------------------------
    def _next_pc(self) -> int:
        pc = self.pc
        self.pc += 4
        if self.pc >= self.CODE_BASE + self.code_bytes:
            self.pc = self.CODE_BASE
        return pc

    # ------------------------------------------------------------------
    def build(self, n: int) -> Trace:
        rate = self.spec.conflict_per_kinstr
        # Rates below one conflict per 10M instructions are effectively off.
        emit_mem_conflict_every = int(1000 / rate) if rate > 1e-4 else 0
        next_conflict = emit_mem_conflict_every or (n + 1)
        while len(self.trace) < n:
            if self._drain_pending():
                continue
            if emit_mem_conflict_every and len(self.trace) >= next_conflict:
                next_conflict += emit_mem_conflict_every
                self._emit_conflict_pair()
                continue
            roll = self.rng.random()
            spec = self.spec
            if roll < spec.load_fraction:
                self._emit_load()
            elif roll < spec.load_fraction + spec.store_fraction:
                if self.rng.random() < spec.rmw_fraction:
                    self._emit_rmw()
                else:
                    self._emit_store()
            elif roll < spec.load_fraction + spec.store_fraction + spec.branch_fraction:
                self._emit_branch()
            else:
                self._emit_alu()
        return self.trace

    def _drain_pending(self) -> bool:
        """Emit one due pending op (scheduled by idioms); True if emitted."""
        for i, (countdown, kind, args) in enumerate(self._pending):
            if countdown <= 0:
                self._pending.pop(i)
                if kind == "store":
                    self._emit_store(**args)
                else:
                    self._emit_load(**args)
                return True
        self._pending = [(c - 1, k, a) for c, k, a in self._pending]
        return False

    # -- address synthesis ----------------------------------------------
    def _pick_pattern(self) -> str:
        names = list(self.spec.pattern_weights.keys())
        weights = list(self.spec.pattern_weights.values())
        return self.rng.choices(names, weights)[0]

    def _addr_for(self, pattern: str) -> int:
        array = self.rng.choice(self.arrays)
        if pattern == "stream":
            return array.stream_next()
        if pattern == "strided":
            return array.strided_next(self.spec.stride_bytes * 3)
        return array.random_addr(self.rng)

    def _access_size(self, addr: int) -> Tuple[int, int]:
        """Pick an access size and align the address to it."""
        if self.rng.random() < self.spec.wide_access_fraction:
            return addr & ~0x7, 8
        size = self.rng.choice((2, 4, 4))
        return addr & ~(size - 1), size

    # -- emitters ---------------------------------------------------------
    def _emit_load(self, addr: Optional[int] = None, fast_addr: bool = False,
                   late_addr: bool = False,
                   srcs_override: Optional[Tuple[int, ...]] = None,
                   pc: Optional[int] = None) -> None:
        spec = self.spec
        pattern = self._pick_pattern()
        if addr is None:
            addr = self._addr_for(pattern)
        addr, size = self._access_size(addr)
        is_fp = self.rng.random() < spec.fp_load_fraction
        dst = self._next_fp_reg() if is_fp else self._next_int_reg()
        if srcs_override is not None:
            srcs: Tuple[int, ...] = srcs_override
        elif fast_addr:
            srcs = (self._base_reg(),)
        elif late_addr:
            srcs = (self._base_reg(), self._index_reg())
        elif pattern == "chase" and self._recent_load_dsts:
            srcs = (self._recent_load_dsts[-1],)
        elif self.rng.random() < spec.load_addr_dep_alu:
            srcs = (self._base_reg(), self._index_reg())
        else:
            srcs = (self._base_reg(),)
        self.trace.append(
            MicroOp(pc if pc is not None else self._next_pc(), InstrClass.LOAD,
                    srcs=srcs, dst=dst, mem_addr=addr, mem_size=size)
        )
        self._note_dst(dst, is_load=True)

    def _emit_store(self, addr: Optional[int] = None, slow_addr: Optional[bool] = None,
                    size: Optional[int] = None, pc: Optional[int] = None) -> None:
        spec = self.spec
        if addr is None:
            addr = self._addr_for(self._pick_pattern())
        if size is None:
            addr, size = self._access_size(addr)
        if slow_addr is None:
            roll = self.rng.random()
            if roll < spec.store_addr_dep_load:
                addr_tier = "load"
            elif roll < spec.store_addr_dep_load + spec.store_addr_dep_alu:
                addr_tier = "alu"
            else:
                addr_tier = "ready"
        else:
            addr_tier = "load" if slow_addr else "ready"
        if addr_tier == "load":
            # Pointer store: load the pointer into a dedicated register
            # first (usually an L1 hit that completes quickly, occasionally
            # a miss still in flight -- the pathological long-window tail),
            # then store through it.  Dedicated registers keep later
            # same-pointer reloads truly dependent on this pointer.
            ptr = _PTR_REGS[self._ptr_cursor % len(_PTR_REGS)]
            self._ptr_cursor += 1
            self.trace.append(
                MicroOp(self._next_pc(), InstrClass.LOAD, srcs=(self._base_reg(),),
                        dst=ptr, mem_addr=self._addr_for("random") & ~0x7, mem_size=8)
            )
            srcs: Tuple[int, ...] = (ptr,)
        elif addr_tier == "alu":
            # Indexed store: the address may trail a just-computed index by
            # a cycle or two -- long enough for younger loads to slip ahead.
            srcs = (self._base_reg(), self._index_reg())
        else:
            srcs = (self._base_reg(),)
        if self.rng.random() < spec.store_data_slow and self._recent_slow_dsts:
            data_src = self._recent_slow_dsts[-1]
        elif self._recent_dsts:
            data_src = self._recent_dsts[-1]
        else:
            data_src = self._base_reg()
        self.trace.append(
            MicroOp(pc if pc is not None else self._next_pc(), InstrClass.STORE,
                    srcs=srcs, mem_addr=addr, mem_size=size, data_src=data_src)
        )
        if self.rng.random() < spec.store_revisit:
            # Counter/histogram update idiom: the location is re-read soon.
            # The reload's address trails an index computation, so it
            # normally issues after the store has resolved -- the classic
            # victim of DMDC's timing approximation rather than a real
            # violation.  Reloads of slow pointer stores are pushed further
            # out so they usually (not always: the residue is the paper's
            # rare true violations) clear the late resolution.
            if addr_tier == "load":
                # Same-pointer reload (p->f = x; ... y = p->f): both the
                # store and the reload wait on the pointer register, so the
                # older store resolves first and the reload lands inside its
                # checking window having issued after it -- an X replay.
                gap = self.rng.randint(
                    max(4, spec.revisit_distance // 3), spec.revisit_distance
                )
                self._pending.append(
                    (gap, "load", {"addr": addr, "srcs_override": srcs})
                )
            else:
                gap = self.rng.randint(
                    max(4, spec.revisit_distance // 3), spec.revisit_distance
                )
                self._pending.append((gap, "load", {"addr": addr, "late_addr": True}))

    def _emit_rmw(self) -> None:
        """Load-op-store to one address: forwarding and rejection fodder."""
        addr = self._addr_for("random") & ~0x7
        self._emit_load(addr=addr)
        self._emit_alu(srcs_hint=(self._recent_load_dsts[-1],))
        self._pending.append((0, "store", {"addr": addr, "slow_addr": False, "size": 8}))

    def _emit_conflict_pair(self) -> None:
        """Slow store + nearby fast load to one address: a genuine
        memory-order-violation opportunity (the paper's rare true replays).
        The pair occupies a stable PC site so dependence predictors can
        learn it."""
        store_pc, load_pc = self._conflict_sites[
            self._conflict_cursor % len(self._conflict_sites)
        ]
        self._conflict_cursor += 1
        addr = self._addr_for("random") & ~0x7
        self._emit_load()  # produces the pointer the store will wait for
        self._emit_store(addr=addr, slow_addr=True, size=8, pc=store_pc)
        gap = self.rng.randint(2, 8)
        self._pending.append(
            (gap, "load", {"addr": addr, "fast_addr": True, "pc": load_pc})
        )

    def _emit_branch(self) -> None:
        site = self.branch_sites[self._site_cursor % len(self.branch_sites)]
        self._site_cursor += 1
        taken = site.next_outcome()
        if self.rng.random() < self.spec.branch_fast_src:
            # Loop-exit style test: the condition register was computed long
            # ago (or is a base register), so the branch resolves quickly.
            srcs: Tuple[int, ...] = (
                (self._recent_fast_dsts[0],) if self._recent_fast_dsts else (self._base_reg(),)
            )
        else:
            srcs = (self._recent_dsts[-1],) if self._recent_dsts else ()
        # Target presence is what matters (BTB); point at the next pc.
        self.trace.append(
            MicroOp(site.pc, InstrClass.BRANCH, srcs=srcs, taken=taken, target=self.pc)
        )

    def _emit_alu(self, srcs_hint: Optional[Tuple[int, ...]] = None) -> None:
        spec = self.spec
        is_fp = self.rng.random() < spec.fp_fraction
        long_op = self.rng.random() < spec.muldiv_fraction
        if is_fp:
            cls = InstrClass.FMUL if long_op else InstrClass.FALU
            dst = self._next_fp_reg()
            pool = _FP_POOL
        else:
            cls = InstrClass.IMUL if long_op else InstrClass.IALU
            dst = self._next_int_reg()
            pool = _INT_POOL
        short = False
        if srcs_hint is not None:
            srcs = srcs_hint
        elif self._recent_dsts and self.rng.random() < 0.55:
            srcs = (self._recent_dsts[-1], self.rng.choice(pool))
        else:
            # Induction-style update (loop counter += constant): inputs are
            # base registers, so the result is ready one cycle after issue.
            srcs = (self._base_reg(), self._base_reg())
            short = not long_op and not is_fp
        self.trace.append(MicroOp(self._next_pc(), cls, srcs=srcs, dst=dst))
        self._note_dst(dst, is_slow=long_op or is_fp, is_short=short)
