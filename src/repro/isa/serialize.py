"""Compact binary serialization of traces.

Workload generation is fast, but saved traces make runs byte-reproducible
across library versions and allow shipping regression inputs.  The format
is a fixed 28-byte little-endian record per micro-op:

``<I pc> <B cls> <B nsrc> <B src0> <B src1> <b dst> <b data_src> <B size>
<B taken> <Q mem_addr> <I target> <xx pad>``

plus a 16-byte header (magic, version, count, group).
"""

import struct
from typing import BinaryIO

from repro.errors import TraceError
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.isa.trace import Trace

MAGIC = b"DMDC"
VERSION = 1
_HEADER = struct.Struct("<4sHHII")          # magic, version, group, count, pad
_RECORD = struct.Struct("<IBBBBbbBBQI2x")

_GROUPS = {"INT": 0, "FP": 1}
_GROUPS_REV = {v: k for k, v in _GROUPS.items()}


def save_trace(trace: Trace, fh: BinaryIO) -> int:
    """Write ``trace`` to a binary stream; returns bytes written."""
    group = _GROUPS.get(trace.group)
    if group is None:
        raise TraceError(f"unserializable group {trace.group!r}")
    fh.write(_HEADER.pack(MAGIC, VERSION, group, len(trace), 0))
    written = _HEADER.size
    for op in trace:
        srcs = op.srcs[:2]
        if len(op.srcs) > 2:
            raise TraceError("trace format supports at most two sources")
        fh.write(_RECORD.pack(
            op.pc,
            int(op.cls),
            len(srcs),
            srcs[0] if len(srcs) > 0 else 0,
            srcs[1] if len(srcs) > 1 else 0,
            op.dst if op.dst is not None else -1,
            op.data_src if op.data_src is not None else -1,
            op.mem_size,
            int(op.taken),
            op.mem_addr,
            op.target,
        ))
        written += _RECORD.size
    return written


def load_trace(fh: BinaryIO, name: str = "loaded") -> Trace:
    """Read a trace written by :func:`save_trace`."""
    header = fh.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise TraceError("truncated trace header")
    magic, version, group, count, _ = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TraceError(f"bad magic {magic!r}")
    if version != VERSION:
        raise TraceError(f"unsupported trace version {version}")
    trace = Trace(name, group=_GROUPS_REV.get(group, "INT"))
    for i in range(count):
        raw = fh.read(_RECORD.size)
        if len(raw) < _RECORD.size:
            raise TraceError(f"truncated trace at record {i}/{count}")
        (pc, cls, nsrc, s0, s1, dst, data_src, size, taken, addr,
         target) = _RECORD.unpack(raw)
        srcs = (s0, s1)[:nsrc]
        trace.append(MicroOp(
            pc, InstrClass(cls), srcs=srcs,
            dst=None if dst < 0 else dst,
            mem_addr=addr, mem_size=size,
            data_src=None if data_src < 0 else data_src,
            taken=bool(taken), target=target,
        ))
    return trace


def save_trace_file(trace: Trace, path: str) -> int:
    with open(path, "wb") as fh:
        return save_trace(trace, fh)


def load_trace_file(path: str, name: str = None) -> Trace:
    with open(path, "rb") as fh:
        return load_trace(fh, name=name or path)
