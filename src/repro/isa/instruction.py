"""The static micro-op record a trace is made of."""

from typing import Optional, Tuple

from repro.errors import TraceError
from repro.isa.opcodes import InstrClass, LEGAL_MEM_SIZES, NUM_ARCH_REGS, uses_fp_queue


class MicroOp:
    """One dynamic instruction in a workload trace.

    A micro-op is *static* with respect to the pipeline: the trace records
    the resolved outcome of the instruction (its memory address, its branch
    direction), and the timing model decides when each pipeline event
    happens.  Fields:

    ``pc``
        Instruction address (used by the branch predictor and I-cache).
    ``cls``
        :class:`InstrClass` selecting the functional-unit pool.
    ``srcs``
        Architectural source registers.  For memory ops these are the
        *address* sources (the address is ready when they are).
    ``dst``
        Architectural destination register, or ``None``.
    ``mem_addr`` / ``mem_size``
        Effective address and access width for loads and stores.
    ``data_src``
        For stores only: the register supplying the store *data*.  A store's
        address and data operands become ready independently, which is what
        enables the load-rejection behaviour the paper models.
    ``taken`` / ``target``
        For branches: the resolved direction and target PC.

    The class predicates (``is_load`` …) and the issue-queue side
    (``fp_side``) are decoded once at construction — trace build time —
    rather than on every pipeline reference; they are a function of ``cls``
    and ``dst``, which never change after construction.
    """

    __slots__ = (
        "pc",
        "cls",
        "srcs",
        "dst",
        "mem_addr",
        "mem_size",
        "data_src",
        "taken",
        "target",
        "is_load",
        "is_store",
        "is_mem",
        "is_branch",
        "fp_side",
    )

    def __init__(
        self,
        pc: int,
        cls: InstrClass,
        srcs: Tuple[int, ...] = (),
        dst: Optional[int] = None,
        mem_addr: int = 0,
        mem_size: int = 8,
        data_src: Optional[int] = None,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self.pc = pc
        self.cls = cls
        self.srcs = srcs
        self.dst = dst
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.data_src = data_src
        self.taken = taken
        self.target = target
        self.is_load = cls == InstrClass.LOAD
        self.is_store = cls == InstrClass.STORE
        self.is_mem = self.is_load or self.is_store
        self.is_branch = cls == InstrClass.BRANCH
        self.fp_side = uses_fp_queue(cls, dst)

    def validate(self) -> None:
        """Raise :class:`TraceError` when the micro-op is malformed."""
        if self.pc < 0:
            raise TraceError(f"negative pc {self.pc}")
        for reg in self.srcs:
            if not 0 <= reg < NUM_ARCH_REGS:
                raise TraceError(f"source register {reg} out of range")
        if self.dst is not None and not 0 <= self.dst < NUM_ARCH_REGS:
            raise TraceError(f"destination register {self.dst} out of range")
        if self.is_mem:
            if self.mem_size not in LEGAL_MEM_SIZES:
                raise TraceError(f"illegal memory size {self.mem_size}")
            if self.mem_addr < 0:
                raise TraceError("negative memory address")
            if self.mem_addr % self.mem_size != 0:
                raise TraceError(
                    f"misaligned access: addr={self.mem_addr:#x} size={self.mem_size}"
                )
        if self.is_store:
            if self.data_src is not None and not 0 <= self.data_src < NUM_ARCH_REGS:
                raise TraceError(f"store data register {self.data_src} out of range")
        elif self.data_src is not None:
            raise TraceError("data_src is only meaningful for stores")
        if self.is_branch and self.target < 0:
            raise TraceError("negative branch target")

    def __repr__(self) -> str:
        extra = ""
        if self.is_mem:
            extra = f" addr={self.mem_addr:#x} size={self.mem_size}"
        if self.is_branch:
            extra = f" taken={self.taken} target={self.target:#x}"
        return f"<MicroOp pc={self.pc:#x} {self.cls.name} srcs={self.srcs} dst={self.dst}{extra}>"
