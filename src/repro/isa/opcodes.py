"""Operation classes and architectural register conventions.

The modelled ISA is a generic RISC (Alpha-like, matching the paper's
SimpleScalar substrate): 32 integer and 32 floating-point architectural
registers, memory accesses of 1-8 bytes, and the functional-unit classes
SimpleScalar distinguishes.
"""

import enum

#: Number of architectural registers (32 INT + 32 FP).
NUM_ARCH_REGS = 64
#: First integer architectural register index.
INT_REG_BASE = 0
#: First floating-point architectural register index.
FP_REG_BASE = 32

#: Memory access sizes the ISA supports, in bytes.
LEGAL_MEM_SIZES = (1, 2, 4, 8)


class InstrClass(enum.IntEnum):
    """Functional classes; each maps to a functional-unit pool and latency."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FALU = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    NOP = 9


#: Classes that read or write memory.
MEM_CLASSES = frozenset({InstrClass.LOAD, InstrClass.STORE})
#: Classes executed on the floating-point side of the machine.
FP_CLASSES = frozenset({InstrClass.FALU, InstrClass.FMUL, InstrClass.FDIV})


def is_fp_reg(reg: int) -> bool:
    """True when ``reg`` lives in the floating-point register file."""
    return reg >= FP_REG_BASE


def uses_fp_queue(cls: "InstrClass", dst: int) -> bool:
    """Route an instruction to the FP issue queue.

    FP arithmetic always does; loads/stores go to the queue matching their
    destination/data register file, mirroring SimpleScalar's split RUU
    accounting.
    """
    if cls in FP_CLASSES:
        return True
    if cls in MEM_CLASSES and dst is not None and dst >= 0:
        return is_fp_reg(dst)
    return False
