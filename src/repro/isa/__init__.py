"""Instruction-set model: micro-ops and dynamic traces.

The simulator is trace-driven: a workload generator emits a
:class:`~repro.isa.trace.Trace` of :class:`~repro.isa.instruction.MicroOp`
objects carrying everything the timing model needs (operation class,
register dependences, memory address/size, branch outcome).  Data values
are not simulated; memory-ordering correctness is modelled through issue
timing, which is what the paper's mechanisms act on.
"""

from repro.isa.opcodes import InstrClass, NUM_ARCH_REGS, INT_REG_BASE, FP_REG_BASE
from repro.isa.instruction import MicroOp
from repro.isa.trace import Trace, validate_trace

__all__ = [
    "InstrClass",
    "NUM_ARCH_REGS",
    "INT_REG_BASE",
    "FP_REG_BASE",
    "MicroOp",
    "Trace",
    "validate_trace",
]
