"""Trace container: the dynamic instruction stream of one workload."""

from typing import Iterable, Iterator, List, Optional

from repro.errors import TraceError
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass


class Trace:
    """An ordered list of micro-ops plus workload metadata.

    The simulator fetches sequentially through the list; a squash rewinds
    the fetch index, so one ``Trace`` supports replay and misprediction
    recovery without any bookkeeping of its own.
    """

    def __init__(self, name: str, ops: Optional[List[MicroOp]] = None,
                 group: str = "INT") -> None:
        self.name = name
        self.group = group  # "INT" or "FP", the paper's reporting groups
        self.ops: List[MicroOp] = ops if ops is not None else []

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, idx: int) -> MicroOp:
        return self.ops[idx]

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.ops)

    def append(self, op: MicroOp) -> None:
        self.ops.append(op)

    def extend(self, ops: Iterable[MicroOp]) -> None:
        self.ops.extend(ops)

    def mix(self) -> dict:
        """Instruction-mix fractions by class name (diagnostics)."""
        counts = {}
        for op in self.ops:
            counts[op.cls.name] = counts.get(op.cls.name, 0) + 1
        total = len(self.ops) or 1
        return {name: count / total for name, count in sorted(counts.items())}


def validate_trace(trace: Trace) -> None:
    """Validate every micro-op and cross-op invariants of a trace.

    Beyond per-op checks this enforces that branches are the only ops with
    branch metadata consumers rely on, and that the trace is non-empty.
    """
    if len(trace) == 0:
        raise TraceError(f"trace {trace.name!r} is empty")
    if trace.group not in ("INT", "FP"):
        raise TraceError(f"trace group must be INT or FP, got {trace.group!r}")
    for i, op in enumerate(trace.ops):
        try:
            op.validate()
        except TraceError as exc:
            raise TraceError(f"{trace.name}[{i}]: {exc}") from exc
        if op.taken and op.cls != InstrClass.BRANCH:
            raise TraceError(f"{trace.name}[{i}]: non-branch marked taken")
