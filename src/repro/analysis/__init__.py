"""Correctness tooling and post-run analysis.

Two sub-systems live here (see ``docs/correctness.md``):

* :mod:`repro.analysis.lint` — an AST-based lint pass with a repo-specific
  rule catalogue (determinism, hot-path discipline, frozen-result and
  scheme-protocol rules), exposed as ``repro check --static``;
* :mod:`repro.analysis.sanitizer` — a shadow associative oracle LQ/SQ that
  runs alongside any dependence-checking scheme and cross-checks every
  filter/replay decision against ground truth, plus invariant probes
  (:mod:`repro.analysis.probes`), exposed as ``repro check --sanitize``.

The result-comparison helpers that predate the tooling subsystem live in
:mod:`repro.analysis.results` and are re-exported here unchanged.
"""

from repro.analysis.results import (
    Comparison,
    compare_results,
    counter_diff,
    outliers,
    per_workload_table,
    speedup_summary,
)
from repro.analysis.sanitizer import (
    SCHEME_MATRIX,
    MemoryOrderSanitizer,
    SanitizerReport,
    attach_sanitizer,
)

__all__ = [
    "Comparison",
    "compare_results",
    "counter_diff",
    "outliers",
    "per_workload_table",
    "speedup_summary",
    "MemoryOrderSanitizer",
    "SanitizerReport",
    "attach_sanitizer",
    "SCHEME_MATRIX",
]
