"""Post-run analysis helpers.

Utilities downstream users need when comparing schemes and configurations
beyond the canned experiments: pairwise result comparison, per-workload
tables, counter diffing, and normalised summaries.  Everything consumes
plain :class:`~repro.sim.result.SimulationResult` objects, so analyses
compose with ad-hoc runs as well as `experiments.common.run_suite` sweeps.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sim.result import SimulationResult
from repro.stats.aggregate import geometric_mean
from repro.stats.report import format_table


@dataclass
class Comparison:
    """Pairwise comparison of one metric across two runs of one workload."""

    workload: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        return self.candidate / self.baseline if self.baseline else float("inf")

    @property
    def delta_pct(self) -> float:
        return 100.0 * (self.ratio - 1.0) if self.baseline else float("inf")


def compare_results(
    baseline: Mapping[str, SimulationResult],
    candidate: Mapping[str, SimulationResult],
    metric: Callable[[SimulationResult], float],
) -> List[Comparison]:
    """Compare a metric workload-by-workload across two sweeps.

    Only workloads present in both mappings are compared, so partial
    sweeps line up without fuss.
    """
    out = []
    for name in baseline:
        if name in candidate:
            out.append(Comparison(name, metric(baseline[name]), metric(candidate[name])))
    return out


def speedup_summary(
    baseline: Mapping[str, SimulationResult],
    candidate: Mapping[str, SimulationResult],
) -> Dict[str, float]:
    """Geometric-mean speedup (baseline cycles / candidate cycles) per group."""
    groups: Dict[str, List[float]] = {}
    for name, base in baseline.items():
        cand = candidate.get(name)
        if cand is None or cand.cycles == 0:
            continue
        groups.setdefault(base.group, []).append(base.cycles / cand.cycles)
    return {group: geometric_mean(vals) for group, vals in groups.items() if vals}


def counter_diff(
    a: SimulationResult,
    b: SimulationResult,
    min_relative: float = 0.05,
) -> List[Tuple[str, int, int]]:
    """Counters that differ between two runs by more than ``min_relative``.

    Returns ``(name, a_value, b_value)`` sorted by relative change, largest
    first — the quickest way to see *why* two runs diverge.
    """
    names = set(a.counters.as_dict()) | set(b.counters.as_dict())
    rows = []
    for name in names:
        va, vb = a.counters[name], b.counters[name]
        base = max(abs(va), abs(vb))
        if base == 0:
            continue
        if abs(va - vb) / base >= min_relative:
            rows.append((name, va, vb))
    rows.sort(key=lambda r: abs(r[1] - r[2]) / max(abs(r[1]), abs(r[2]), 1), reverse=True)
    return rows


def per_workload_table(
    results: Mapping[str, SimulationResult],
    metrics: Optional[Dict[str, Callable[[SimulationResult], float]]] = None,
    title: str = "Per-workload results",
) -> str:
    """Render one row per workload with the requested metric columns."""
    if metrics is None:
        metrics = {
            "IPC": lambda r: r.ipc,
            "replays/Minstr": lambda r: r.replays_per_minstr,
            "safe stores": lambda r: 100.0 * r.safe_store_fraction,
            "safe loads": lambda r: 100.0 * r.safe_load_fraction,
        }
    rows = []
    for name in sorted(results):
        result = results[name]
        rows.append([name, result.group]
                    + [f"{fn(result):.2f}" for fn in metrics.values()])
    return format_table(["workload", "group", *metrics.keys()], rows, title=title)


def outliers(
    results: Mapping[str, SimulationResult],
    metric: Callable[[SimulationResult], float],
    k: int = 3,
) -> Dict[str, List[Tuple[str, float]]]:
    """The ``k`` highest and lowest workloads for a metric."""
    scored = sorted(((metric(r), name) for name, r in results.items()))
    return {
        "lowest": [(name, value) for value, name in scored[:k]],
        "highest": [(name, value) for value, name in scored[-k:][::-1]],
    }
