"""Invariant probes for the memory-ordering sanitizer.

Each probe pins one machine-checkable property of the age-based filtering
machinery (in the spirit of property-driven ordering verification):

* :class:`AgeOrderProbe` — ROB/LSQ age ordering: instructions retire with
  strictly increasing dynamic ages, loads and stores each in queue order.
* :class:`YlaProbe` — YLA soundness and monotonicity: after a load issues,
  its bank's register is at least as young as the load (the property that
  makes a "safe" store verdict trustworthy); between rollbacks a register
  only moves forward; a rollback clamps every register to exactly
  ``min(previous age, kept age)`` — clamping less leaks squashed loads
  into the filter, clamping more forgets live ones (unsound).
* :class:`WindowProbe` — ``end_check`` window consistency for DMDC: while
  a checking window is open its boundary never moves backwards, and the
  window may only terminate once commit has actually passed the boundary.

Probes report failures as strings; the sanitizer aggregates them into its
report (bounded) and optionally raises in strict mode.
"""

from typing import List, Optional

from repro.backend.dyninst import DynInstr
from repro.core.yla import YlaFile


class AgeOrderProbe:
    """Commit order must follow dynamic age order, per kind and overall."""

    name = "age-order"

    def __init__(self):
        self.checks = 0
        self._last_seq = -1
        self._last_load_seq = -1
        self._last_store_seq = -1

    def on_commit(self, instr: DynInstr) -> Optional[str]:
        self.checks += 1
        if instr.seq <= self._last_seq:
            return (f"age-order: seq {instr.seq} committed after "
                    f"seq {self._last_seq}")
        self._last_seq = instr.seq
        if instr.is_load:
            if instr.seq <= self._last_load_seq:
                return (f"age-order: load seq {instr.seq} retired out of LQ "
                        f"order (after {self._last_load_seq})")
            self._last_load_seq = instr.seq
        elif instr.is_store:
            if instr.seq <= self._last_store_seq:
                return (f"age-order: store seq {instr.seq} retired out of SQ "
                        f"order (after {self._last_store_seq})")
            self._last_store_seq = instr.seq
        return None


class YlaProbe:
    """Soundness and monotonicity of one :class:`YlaFile`."""

    def __init__(self, yla: YlaFile, label: str):
        self.yla = yla
        self.label = label
        self.checks = 0
        self._ages = yla.snapshot()

    def after_load_issue(self, addr: int, age: int) -> Optional[str]:
        """The bank covering ``addr`` must now record an age >= ``age``."""
        self.checks += 1
        recorded = self.yla.youngest_for(addr)
        if recorded < age:
            return (f"yla[{self.label}]: bank {self.yla.bank(addr)} records "
                    f"age {recorded} after load age {age} issued — the "
                    f"filter would wrongly call an older store safe")
        return self._monotonic()

    def _monotonic(self) -> Optional[str]:
        snap = self.yla.snapshot()
        for bank, (old, new) in enumerate(zip(self._ages, snap)):
            if new < old:
                self._ages = snap
                return (f"yla[{self.label}]: bank {bank} moved backwards "
                        f"({old} -> {new}) without a rollback")
        self._ages = snap
        return None

    def after_rollback(self, last_kept_age: int) -> Optional[str]:
        """Rollback must clamp each bank to exactly min(old, kept)."""
        self.checks += 1
        snap = self.yla.snapshot()
        for bank, (old, new) in enumerate(zip(self._ages, snap)):
            expected = old if old < last_kept_age else last_kept_age
            if new != expected:
                self._ages = snap
                return (f"yla[{self.label}]: rollback to {last_kept_age} left "
                        f"bank {bank} at {new}, expected {expected}")
        self._ages = snap
        return None


class WindowProbe:
    """``end_check`` consistency of a DMDC-style checking window.

    Drive with :meth:`before_commit` / :meth:`after_commit` around each
    delegated ``on_commit``; the scheme must expose ``checking_active`` and
    an ``end_check()`` accessor.
    """

    name = "end-check-window"

    def __init__(self, scheme):
        self.scheme = scheme
        self.checks = 0
        self._was_active = False
        self._end_before = -1

    def before_commit(self) -> None:
        self._was_active = self.scheme.checking_active
        if self._was_active:
            self._end_before = self.scheme.end_check()

    def after_commit(self, instr: DynInstr, replayed: bool) -> Optional[str]:
        if not self._was_active:
            return None
        self.checks += 1
        if self.scheme.checking_active:
            end_now = self.scheme.end_check()
            if end_now < self._end_before:
                return (f"end-check: boundary shrank {self._end_before} -> "
                        f"{end_now} inside an open window")
            return None
        if replayed:
            # The squash path leaves the window open; it terminates at the
            # next commit.  Nothing to check here.
            return None
        if instr.seq < self._end_before:
            return (f"end-check: window terminated at commit of seq "
                    f"{instr.seq}, before the boundary {self._end_before}")
        return None


class ProbeSet:
    """The probes applicable to one scheme, built by the sanitizer."""

    def __init__(self, age: AgeOrderProbe, ylas: List[YlaProbe],
                 window: Optional[WindowProbe]):
        self.age = age
        self.ylas = ylas
        self.window = window

    @property
    def checks(self) -> int:
        total = self.age.checks + sum(p.checks for p in self.ylas)
        if self.window is not None:
            total += self.window.checks
        return total
