"""Shadow associative oracle LQ/SQ for the memory-ordering sanitizer.

An independent, deliberately naive reimplementation of the ground-truth
store→load ordering semantics the paper's schemes must preserve (Section 2):
a load that issues before an older overlapping store's address resolves has
consumed stale data — *unless* it forwarded from a store younger than the
resolving one whose bytes fully cover it.

The oracle mirrors the in-flight LQ/SQ contents from the scheme hook
events alone (load issue, store resolve, commit, squash) and never reads
the pipeline's own ground-truth flags (``DynInstr.true_violation_store``),
so it can cross-validate both the scheme under test *and* the simulator's
built-in checker.  Everything here is O(queue length) per event — the
oracle is a correctness tool, not a fast path.
"""

from typing import Dict, List, Optional

from repro.backend.dyninst import DynInstr


class ShadowLoad:
    """Oracle record of one issued, in-flight load."""

    __slots__ = ("seq", "addr", "size", "issue_cycle", "forward_store_seq",
                 "violated_by")

    def __init__(self, load: DynInstr, cycle: int):
        self.seq = load.seq
        self.addr = load.addr
        self.size = load.size
        self.issue_cycle = cycle
        self.forward_store_seq = load.forward_store_seq
        #: seq of the oldest resolving store this load truly violated
        #: (premature issue); -1 while clean.
        self.violated_by = -1


class ShadowStore:
    """Oracle record of one address-resolved, in-flight store."""

    __slots__ = ("seq", "addr", "size", "resolve_cycle")

    def __init__(self, store: DynInstr, cycle: int):
        self.seq = store.seq
        self.addr = store.addr
        self.size = store.size
        self.resolve_cycle = cycle


class ShadowLSQ:
    """Fully associative oracle load/store queues.

    Keyed by dynamic age (``seq``); dict insertion order is age order
    because issue/resolve events arrive with strictly increasing ages only
    between squashes, and squashes trim from the young end.
    """

    def __init__(self):
        self.loads: Dict[int, ShadowLoad] = {}
        self.stores: Dict[int, ShadowStore] = {}
        #: total loads the oracle ever flagged as true premature issues
        self.violations_flagged = 0

    # -- event mirroring --------------------------------------------------
    def load_issued(self, load: DynInstr, cycle: int) -> ShadowLoad:
        rec = ShadowLoad(load, cycle)
        self.loads[load.seq] = rec
        return rec

    def store_resolved(self, store: DynInstr, cycle: int) -> List[ShadowLoad]:
        """Associatively search the shadow LQ; flag true premature loads.

        Returns the loads *newly* flagged against this store.  A younger
        issued load overlapping the store's bytes is premature unless it
        forwarded from a store younger than this one that fully covers it
        (its data cannot be stale).
        """
        self.stores[store.seq] = ShadowStore(store, cycle)
        s_seq = store.seq
        s_addr = store.addr
        s_end = s_addr + store.size
        flagged: List[ShadowLoad] = []
        for rec in self.loads.values():
            if rec.seq <= s_seq or rec.violated_by >= 0:
                continue
            if s_addr >= rec.addr + rec.size or rec.addr >= s_end:
                continue
            if rec.forward_store_seq > s_seq:
                fwd = self.stores.get(rec.forward_store_seq)
                if (
                    fwd is not None
                    and fwd.addr <= rec.addr
                    and rec.addr + rec.size <= fwd.addr + fwd.size
                ):
                    continue
            rec.violated_by = s_seq
            self.violations_flagged += 1
            flagged.append(rec)
        return flagged

    def load_committed(self, seq: int) -> Optional[ShadowLoad]:
        return self.loads.pop(seq, None)

    def store_committed(self, seq: int) -> Optional[ShadowStore]:
        return self.stores.pop(seq, None)

    def squash_younger(self, last_kept_seq: int) -> None:
        for seq in [s for s in self.loads if s > last_kept_seq]:
            del self.loads[seq]
        for seq in [s for s in self.stores if s > last_kept_seq]:
            del self.stores[seq]

    # -- queries ----------------------------------------------------------
    def pending_violation_at_or_after(self, seq: int) -> bool:
        """Any flagged in-flight load aged ``seq`` or younger (i.e. covered
        by a squash-from-``seq`` replay)?"""
        return any(
            rec.violated_by >= 0 and rec.seq >= seq
            for rec in self.loads.values()
        )

    def __len__(self) -> int:
        return len(self.loads) + len(self.stores)
