"""Concurrency discipline analysis (``repro check --concurrency``).

The sharded service's thread-safety rests on invariants that used to
live in docstrings: a fixed lock hierarchy, ascending shard-order
admission, ``_GUARDED_BY`` state ownership, condition-wait predicate
loops, a single environment-read site, and never blocking under a lock.
This package enforces them twice:

* statically — :mod:`repro.analysis.conc.rules` extends the ``repro
  check`` catalogue with REPRO008–REPRO012, built on a per-function
  lock-acquisition model (:mod:`repro.analysis.conc.model`) propagated
  through a lightweight call graph
  (:mod:`repro.analysis.conc.callgraph`);
* dynamically — :class:`repro.analysis.conc.witness.LockOrderWitness`
  instruments the service layer's lock seam during tests, records the
  runtime acquisition graph, and cross-validates it against the static
  model (a runtime edge the analyzer failed to predict fails the suite,
  keeping the analyzer honest).
"""

from repro.analysis.conc.callgraph import ProjectAnalysis, analyze_paths, analyze_project
from repro.analysis.conc.model import ProjectModel, build_project_model
from repro.analysis.conc.rules import CONC_RULES, conc_rule_catalogue
from repro.analysis.conc.witness import LockOrderWitness

__all__ = [
    "CONC_RULES",
    "LockOrderWitness",
    "ProjectAnalysis",
    "ProjectModel",
    "analyze_paths",
    "analyze_project",
    "build_project_model",
    "conc_rule_catalogue",
]
