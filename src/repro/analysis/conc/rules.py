"""Concurrency rules REPRO008–REPRO012 for ``repro check --concurrency``.

These extend the static catalogue in :mod:`repro.analysis.lint.rules`
with whole-project concurrency discipline over the sharded service.
They share the lint engine (two-phase scan/check, ``# repro:
noqa[ID]`` suppression) but build on the lock-acquisition model of
:mod:`repro.analysis.conc.model` closed over the call graph by
:mod:`repro.analysis.conc.callgraph`.

==========  ==========================================================
ID          discipline
==========  ==========================================================
REPRO008    lock-order: the label-level acquisition graph must be
            acyclic, and same-label multi-acquire (the cross-shard
            sweep) is legal only inside an ascending ``sorted`` loop
REPRO009    guarded state: attributes named in a class's
            ``_GUARDED_BY`` map may only be touched with their guard
            statically held (``with``, ``ExitStack`` or ``@holds``)
REPRO010    ``Condition.wait``/``wait_for`` must sit inside a
            ``while`` predicate loop, never a bare ``if``
REPRO011    no environment reads outside ``EngineOptions.from_env``
            (``repro/exec/options.py``)
REPRO012    no blocking operation — engine run, file I/O, ``join``,
            ``Event``/``Barrier`` wait, sleeps, subprocesses — while
            holding a lock, directly or through any callee
==========  ==========================================================

REPRO008/009/010/012 analyze ``repro/service/``, ``repro/exec/`` and
``repro/sweeps/`` (the packages that share locks — sweeps joined when
the fan-out pool of ``repro.sweeps.fanout`` arrived); REPRO011 is
repo-wide.
"""

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.conc.callgraph import ProjectAnalysis, analyze_files
from repro.analysis.conc.model import _attr_path
from repro.analysis.lint.engine import LintViolation, SourceFile
from repro.analysis.lint.rules import Rule

#: Files whose lock usage the whole-project model covers.
_SCOPE_RE = re.compile(r"repro/(?:service|exec|sweeps)/[^/]+\.py$")

#: The single sanctioned environment-read site (REPRO011).
_ENV_HOME = "repro/exec/options.py"

#: One analysis per distinct file set, shared across the five rules
#: (each engine rule gets its own context dict, so the share point has
#: to live at module level).  Single-slot: a new file set evicts the
#: old one.
_ANALYSIS_CACHE: Dict[Tuple[Tuple[str, int], ...], ProjectAnalysis] = {}


def _scoped(file: SourceFile) -> bool:
    return _SCOPE_RE.search(file.path) is not None


class _ConcRule(Rule):
    """Shared scan phase: collect scoped files, analyze them as one
    project on first check."""

    def scan(self, file: SourceFile, context: dict) -> None:
        if _scoped(file):
            context.setdefault("files", []).append(file)

    def analysis(self, context: dict) -> ProjectAnalysis:
        files: List[SourceFile] = context.get("files", [])
        key = tuple((f.path, hash(f.source)) for f in files)
        cached = _ANALYSIS_CACHE.get(key)
        if cached is None:
            cached = analyze_files([(f.path, f.tree) for f in files])
            _ANALYSIS_CACHE.clear()
            _ANALYSIS_CACHE[key] = cached
        return cached

    def at(self, path: str, line: int, message: str) -> LintViolation:
        return LintViolation(path, line, self.rule_id, message)


class LockOrderRule(_ConcRule):
    """Lock acquisitions must follow one global order.

    The service's hierarchy is: per-shard ``MicroBatcher._lock`` in
    ascending shard order, then ``ServiceMetrics._lock``;
    ``ShardPool._drain_lock`` and ``ReproService._active_lock`` are
    leaves.  Statically that means the label-level acquisition graph
    (closed over the call graph) is acyclic, and taking a lock with the
    same label as one already held is legal only via
    ``stack.enter_context`` inside a ``for`` over an ascending
    ``sorted(...)`` — the cross-shard sweep shape.
    """

    rule_id = "REPRO008"
    summary = ("lock-order discipline: acyclic acquisition graph; "
               "same-label acquire only in ascending sorted loops")

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if not _scoped(file):
            return
        analysis = self.analysis(context)
        for fn in analysis.model.functions.values():
            if fn.path != file.path:
                continue
            for site, label in fn.order_violations:
                yield self.at(site.path, site.line,
                              f"re-acquires {label} while already held "
                              "outside an ascending sorted(...) loop "
                              "(cross-shard sweeps must take shard locks "
                              "in ascending shard order)")
        for edge in analysis.self_deadlocks():
            if edge.site.path == file.path:
                yield self.at(edge.site.path, edge.site.line,
                              f"call path via {edge.via} re-acquires "
                              f"{edge.src} while it is held "
                              "(self-deadlock on a non-reentrant lock)")
        for cycle in analysis.cycles():
            first = analysis.edge_for(cycle[0], cycle[1])
            if first is not None and first.site.path == file.path:
                yield self.at(first.site.path, first.site.line,
                              "lock-order cycle: " + " -> ".join(cycle))


class GuardedStateRule(_ConcRule):
    """``_GUARDED_BY`` attributes need their lock statically held.

    A class declares ownership with ``_GUARDED_BY = {"attr":
    "lock_attr"}``; every load or store of a guarded attribute must
    happen where the analyzer can see the guard held — a ``with``
    block, an ``ExitStack.enter_context``, or a method marked
    ``@holds("lock_attr")`` whose callers are checked at the call site.
    Freshly constructed locals and ``self`` inside ``__init__`` are
    exempt (not yet shared).
    """

    rule_id = "REPRO009"
    summary = ("guarded-state access: _GUARDED_BY attributes touched "
               "only with their lock held")

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if not _scoped(file):
            return
        analysis = self.analysis(context)
        for fn in analysis.model.functions.values():
            if fn.path != file.path:
                continue
            for rec in fn.guard_accesses:
                if rec.needed not in rec.held:
                    verb = "write to" if rec.store else "read of"
                    yield self.at(rec.site.path, rec.site.line,
                                  f"{verb} {rec.owner}.{rec.attr} without "
                                  f"holding {rec.needed} (declared in "
                                  f"{rec.owner}._GUARDED_BY)")
            for rec in fn.holds_calls:
                missing = [need for need in rec.needed
                           if need not in rec.held]
                if missing:
                    yield self.at(rec.site.path, rec.site.line,
                                  f"call to {rec.callee} requires "
                                  f"{', '.join(missing)} held "
                                  "(declared via @holds)")


class ConditionWaitRule(_ConcRule):
    """``Condition.wait`` must re-check its predicate in a loop.

    A woken waiter holds no guarantee: wakeups are allowed to be
    spurious and the predicate may be re-falsified between ``notify``
    and wakeup, so a bare ``if pred: cond.wait()`` is a race.  Only the
    ``while not pred: cond.wait()`` shape is sound (``wait_for``
    already loops internally, but must still sit in a ``while`` when
    used with a timeout fragment).
    """

    rule_id = "REPRO010"
    summary = "Condition.wait must sit inside a while predicate loop"

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if not _scoped(file):
            return
        analysis = self.analysis(context)
        for fn in analysis.model.functions.values():
            if fn.path != file.path:
                continue
            for rec in fn.waits:
                if not rec.in_while:
                    yield self.at(rec.site.path, rec.site.line,
                                  f"wait on {rec.receiver} outside a "
                                  "while loop: wakeups may be spurious, "
                                  "re-check the predicate in a while")


class EnvReadRule(Rule):
    """All environment reads live in ``EngineOptions.from_env``.

    Scattered ``os.environ`` lookups make run configuration invisible
    to the repro profile and the content-addressed cache key.  Any knob
    must flow through ``EngineOptions.from_env`` so it is recorded,
    hashed, and printed by ``repro repro-profile``.
    """

    rule_id = "REPRO011"
    summary = ("no os.environ/os.getenv outside EngineOptions.from_env "
               "(repro/exec/options.py)")

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if file.path.endswith(_ENV_HOME):
            return
        for node in ast.walk(file.tree):
            what: Optional[str] = None
            if isinstance(node, ast.Call):
                path = _attr_path(node.func)
                if path in ("os.getenv", "os.environ.get"):
                    what = f"{path}(...)"
            elif (isinstance(node, ast.Subscript)
                  and _attr_path(node.value) == "os.environ"):
                what = "os.environ[...]"
            if what is not None:
                yield self.violation(
                    file, node,
                    f"{what} outside EngineOptions.from_env — route "
                    "configuration through repro/exec/options.py so it "
                    "lands in the repro profile")


class BlockingUnderLockRule(_ConcRule):
    """Never block while holding a lock.

    Holding any service lock across a blocking operation — an engine
    run, file I/O, ``Thread.join``, ``Event.wait``/``Barrier.wait``,
    ``time.sleep``, a subprocess — stalls every thread queued on that
    lock and turns a slow request into a service-wide convoy.  The rule
    follows calls: a locked call into a helper that blocks three frames
    down is still a finding, attributed to the locked call site.
    ``Condition.wait`` is exempt for the lock it releases, but blocks
    any *other* lock held around it.
    """

    rule_id = "REPRO012"
    summary = ("no blocking call (engine run, I/O, join, waits, sleep, "
               "subprocess) while holding a lock, transitively")

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if not _scoped(file):
            return
        analysis = self.analysis(context)
        for rec in analysis.blocking_violations:
            if rec.site.path == file.path:
                held = ", ".join(rec.held)
                yield self.at(rec.site.path, rec.site.line,
                              f"{rec.what} while holding {held} "
                              f"(in {rec.via})")


CONC_RULES = (
    LockOrderRule(),
    GuardedStateRule(),
    ConditionWaitRule(),
    EnvReadRule(),
    BlockingUnderLockRule(),
)


def conc_rule_catalogue() -> str:
    """Human-readable listing for ``repro check --list-rules``."""
    lines = []
    for rule in CONC_RULES:
        lines.append(f"{rule.rule_id}  {rule.summary}")
        doc = (rule.__doc__ or "").strip().splitlines()
        for line in doc[1:]:
            lines.append(f"    {line.strip()}")
        lines.append("")
    return "\n".join(lines).rstrip()
