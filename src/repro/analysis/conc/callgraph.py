"""Call-graph propagation over the per-function concurrency model.

:mod:`repro.analysis.conc.model` records only what each function does
directly.  The deadlock-relevant facts are transitive: ``submit_many``
never touches ``ServiceMetrics._lock`` itself, but it calls ``admit``
with the batcher lock held and ``admit`` bumps metrics counters, so the
program's lock graph contains ``MicroBatcher._lock ->
ServiceMetrics._lock`` all the same.  This module closes the model over
a name-keyed intra-project call graph:

* ``trans_acquires(f)`` — every lock label ``f`` may take, directly or
  through any callee (fixpoint over the call graph);
* global edges — each function's own nesting edges, plus ``held x
  trans_acquires(callee)`` for every call made under a lock, attributed
  to the call site;
* ``trans_blocking(f)`` — blocking operations reachable from ``f``
  (including condition waits, whose own-lock exemption holds only for
  the lock they release: a caller holding *another* lock still blocks).

The resulting :class:`ProjectAnalysis` is both the backing store for
the REPRO008–REPRO012 lint rules and the oracle the runtime
:class:`~repro.analysis.conc.witness.LockOrderWitness` validates
against: every acquisition edge observed at runtime must appear in
:meth:`ProjectAnalysis.predicted_edges`.
"""

import ast
import os
from typing import (Dict, FrozenSet, Iterable, List, NamedTuple, Optional,
                    Sequence, Set, Tuple)

from repro.analysis.conc.model import (BlockRecord, FunctionModel,
                                       ProjectModel, Site,
                                       build_project_model)


class GlobalEdge(NamedTuple):
    """One label-level acquisition edge in the whole-program lock graph."""

    src: str
    dst: str
    site: Site
    ascending: bool
    #: Function whose body creates the edge (the caller, for propagated
    #: edges — the site points at the call that reaches the acquire).
    via: str


class BlockingViolation(NamedTuple):
    site: Site
    what: str
    held: Tuple[str, ...]
    via: str


class ProjectAnalysis:
    """The closed (transitive) concurrency model of one file set."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self._trans_acquires: Dict[str, FrozenSet[str]] = {}
        self._trans_blocking: Dict[str, FrozenSet[str]] = {}
        self.edges: Dict[Tuple[str, str], GlobalEdge] = {}
        self.blocking_violations: List[BlockingViolation] = []
        self._close_acquires()
        self._build_edges()
        self._close_blocking()

    # -- fixpoints --------------------------------------------------------
    def _callees(self, fn: FunctionModel) -> Iterable[str]:
        for record in fn.calls:
            if record.callee in self.model.functions:
                yield record.callee

    def _close_acquires(self) -> None:
        acquires = {key: set(fn.acquires)
                    for key, fn in self.model.functions.items()}
        changed = True
        while changed:
            changed = False
            for key, fn in self.model.functions.items():
                mine = acquires[key]
                before = len(mine)
                for callee in self._callees(fn):
                    mine |= acquires[callee]
                if len(mine) != before:
                    changed = True
        self._trans_acquires = {key: frozenset(v)
                                for key, v in acquires.items()}

    def _close_blocking(self) -> None:
        # Descriptions reachable from each function.  Exempt records
        # (a condition wait with nothing *else* held) still propagate:
        # the exemption covers only the lock the wait releases, and a
        # caller may hold a different one.
        blocking = {key: {rec.what for rec in fn.blocking}
                    for key, fn in self.model.functions.items()}
        changed = True
        while changed:
            changed = False
            for key, fn in self.model.functions.items():
                mine = blocking[key]
                before = len(mine)
                for callee in self._callees(fn):
                    mine |= blocking[callee]
                if len(mine) != before:
                    changed = True
        self._trans_blocking = {key: frozenset(v)
                                for key, v in blocking.items()}
        for key, fn in self.model.functions.items():
            for rec in fn.blocking:
                if rec.held and not rec.exempt:
                    self.blocking_violations.append(BlockingViolation(
                        rec.site, rec.what, tuple(sorted(rec.held)), key))
            for call in fn.calls:
                if not call.held or call.callee not in self.model.functions:
                    continue
                reached = self._trans_blocking.get(call.callee, frozenset())
                if reached:
                    what = sorted(reached)[0]
                    self.blocking_violations.append(BlockingViolation(
                        call.site,
                        f"call to {call.callee} (reaches: {what})",
                        tuple(sorted(call.held)), key))

    def _build_edges(self) -> None:
        for key, fn in self.model.functions.items():
            for (src, dst), (site, ascending) in fn.edges.items():
                self._add_edge(GlobalEdge(src, dst, site, ascending, key))
            for call in fn.calls:
                if not call.held or call.callee not in self.model.functions:
                    continue
                callee_fn = self.model.functions[call.callee]
                entry = frozenset(callee_fn.entry_held)
                for dst in self._trans_acquires.get(call.callee, ()):
                    if dst in entry:
                        # The callee expects this lock already held
                        # (@holds): the caller's acquisition is the one
                        # on record, not a re-acquire.
                        continue
                    for src in call.held:
                        self._add_edge(GlobalEdge(
                            src, dst, call.site, False, key))

    def _add_edge(self, edge: GlobalEdge) -> None:
        current = self.edges.get((edge.src, edge.dst))
        # Keep the strictest witness: a non-ascending sighting of an
        # edge we previously saw as ascending must win, or a seeded
        # inversion would hide behind the legal sorted loop.
        if current is None or (current.ascending and not edge.ascending):
            self.edges[(edge.src, edge.dst)] = edge

    # -- queries ----------------------------------------------------------
    def predicted_edges(self) -> Set[Tuple[str, str]]:
        """Label pairs the runtime witness is allowed to observe."""
        return set(self.edges)

    def self_deadlocks(self) -> List[GlobalEdge]:
        """Non-ascending same-label edges: a non-reentrant self-wait."""
        return sorted((edge for (src, dst), edge in self.edges.items()
                       if src == dst and not edge.ascending),
                      key=lambda e: (e.site.path, e.site.line))

    def cycles(self) -> List[List[str]]:
        """Elementary cycles (length >= 2) in the label-level graph.

        Ascending same-label self-edges are the sanctioned shard-sweep
        shape and are excluded; non-ascending ones are reported
        separately by :meth:`self_deadlocks`.
        """
        graph: Dict[str, Set[str]] = {}
        for (src, dst) in self.edges:
            if src == dst:
                continue
            graph.setdefault(src, set()).add(dst)
        cycles: List[List[str]] = []
        seen: Set[Tuple[str, ...]] = set()
        for start in sorted(graph):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for succ in sorted(graph.get(node, ())):
                    if succ == start and len(path) >= 2:
                        canon = min(tuple(path[i:] + path[:i])
                                    for i in range(len(path)))
                        if canon not in seen:
                            seen.add(canon)
                            cycles.append(path + [start])
                    elif succ not in path and succ > start:
                        # Only explore nodes ordered after the start so
                        # each elementary cycle is found exactly once.
                        stack.append((succ, path + [succ]))
        return cycles

    def edge_for(self, src: str, dst: str) -> Optional[GlobalEdge]:
        return self.edges.get((src, dst))


def analyze_project(model: ProjectModel) -> ProjectAnalysis:
    return ProjectAnalysis(model)


def analyze_files(files: Sequence[Tuple[str, ast.AST]]) -> ProjectAnalysis:
    return ProjectAnalysis(build_project_model(files))


def analyze_paths(paths: Iterable[str]) -> ProjectAnalysis:
    """Parse every ``.py`` under ``paths`` and analyze them as one project."""
    files: List[Tuple[str, ast.AST]] = []
    for path in _iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        files.append((path.replace(os.sep, "/"),
                      ast.parse(source, filename=path)))
    return analyze_files(files)


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, name) for name in sorted(names)
                           if name.endswith(".py"))
        elif path.endswith(".py"):
            out.append(path)
    return out
