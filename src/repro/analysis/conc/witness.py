"""Runtime lock-order witness for the service layer's lock seam.

Static analysis is only as honest as its model.  The witness closes
the loop: installed over :func:`repro.utils.sync.make_lock` (every
service-layer lock is created through that seam), it hands out wrapped
locks that record the *runtime* acquisition graph — an edge ``A -> B``
whenever a thread takes ``B`` while holding ``A`` — keyed by the same
``"Class.attr"`` labels the static model uses, plus the shard index
for per-shard locks.

Tests then assert three things:

* the observed graph is acyclic (no witnessed deadlock potential);
* every same-label edge runs in ascending shard-index order (the
  cross-shard sweep discipline);
* every observed label edge was *predicted* by the static model
  (:meth:`~repro.analysis.conc.callgraph.ProjectAnalysis.predicted_edges`)
  — a runtime edge the analyzer missed is a hole in the model and
  fails the suite.

The witness is test-only instrumentation: production code never
installs a factory, and ``make_lock`` falls back to a plain
``threading.Lock``.  ``threading.Condition`` wraps a witness lock
transparently — ``Condition.wait`` releases through the wrapper (the
held stack pops before the thread sleeps), so the re-acquire on wakeup
starts from an empty held set and records no spurious edges, and the
``_is_owned`` probe (``acquire(False)`` on a held lock) fails without
recording anything.
"""

import threading
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.utils.sync import install_lock_factory, uninstall_lock_factory

#: One lock identity at runtime: static label + optional shard index.
LockKey = Tuple[str, Optional[int]]


class WitnessEdge(NamedTuple):
    """Observed nesting: ``dst`` was acquired while ``src`` was held."""

    src: LockKey
    dst: LockKey


def _fmt(key: LockKey) -> str:
    label, index = key
    return label if index is None else f"{label}[{index}]"


class _WitnessLock:
    """A ``threading.Lock`` that reports acquisitions to its witness."""

    def __init__(self, witness: "LockOrderWitness", label: str,
                 index: Optional[int]) -> None:
        self._witness = witness
        self._inner = threading.Lock()
        self.label = label
        self.index = index

    @property
    def key(self) -> LockKey:
        return (self.label, self.index)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._witness._note_acquire(self.key)
        return ok

    def release(self) -> None:
        # Pop the held stack first: it is thread-local to the owner, so
        # this cannot race the next acquirer.
        self._witness._note_release(self.key)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "_WitnessLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<WitnessLock {_fmt(self.key)}>"


class LockOrderWitness:
    """Records the runtime lock-acquisition graph during a test.

    Use as a context manager; entering installs it as the
    :func:`~repro.utils.sync.make_lock` factory (so it must wrap the
    *construction* of the objects under test)::

        with LockOrderWitness() as witness:
            pool = ShardPool.build(...)   # locks now instrumented
            ...exercise the pool...
        assert witness.cycle() is None
        assert not witness.ordering_violations()
        assert not witness.unpredicted_edges(analysis.predicted_edges())
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._tls = threading.local()
        self._edges: Set[WitnessEdge] = set()
        self._acquired: Dict[LockKey, int] = {}

    # -- LockFactory protocol ---------------------------------------------
    def lock(self, label: str, index: Optional[int] = None) -> _WitnessLock:
        return _WitnessLock(self, label, index)

    def __enter__(self) -> "LockOrderWitness":
        install_lock_factory(self)
        return self

    def __exit__(self, *exc: object) -> None:
        uninstall_lock_factory(self)

    # -- recording --------------------------------------------------------
    def _stack(self) -> List[LockKey]:
        stack: Optional[List[LockKey]] = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _note_acquire(self, key: LockKey) -> None:
        stack = self._stack()
        with self._mu:
            self._acquired[key] = self._acquired.get(key, 0) + 1
            for held in stack:
                self._edges.add(WitnessEdge(held, key))
        stack.append(key)

    def _note_release(self, key: LockKey) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == key:
                del stack[i]
                return

    # -- queries ----------------------------------------------------------
    def edges(self) -> Set[WitnessEdge]:
        with self._mu:
            return set(self._edges)

    def label_edges(self) -> Set[Tuple[str, str]]:
        """Observed edges collapsed to static-model granularity."""
        return {(e.src[0], e.dst[0]) for e in self.edges()}

    def acquisitions(self) -> Dict[LockKey, int]:
        """How many times each lock was taken (coverage sanity)."""
        with self._mu:
            return dict(self._acquired)

    def ordering_violations(self) -> List[WitnessEdge]:
        """Same-label nestings that were not in ascending index order."""
        out: List[WitnessEdge] = []
        for edge in sorted(self.edges()):
            if edge.src[0] != edge.dst[0]:
                continue
            src_i, dst_i = edge.src[1], edge.dst[1]
            if (not isinstance(src_i, int) or not isinstance(dst_i, int)
                    or src_i >= dst_i):
                out.append(edge)
        return out

    def cycle(self) -> Optional[List[str]]:
        """One label-level cycle if the observed graph has any.

        Same-label edges are excluded here (they are judged by index
        order in :meth:`ordering_violations`; at label granularity they
        would read as trivial self-loops).
        """
        graph: Dict[str, Set[str]] = {}
        for src, dst in self.label_edges():
            if src != dst:
                graph.setdefault(src, set()).add(dst)
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node: str, path: List[str]) -> Optional[List[str]]:
            state[node] = 1
            path.append(node)
            for succ in sorted(graph.get(node, ())):
                if state.get(succ) == 1:
                    return path[path.index(succ):] + [succ]
                if state.get(succ) is None:
                    found = visit(succ, path)
                    if found:
                        return found
            path.pop()
            state[node] = 2
            return None

        for start in sorted(graph):
            if state.get(start) is None:
                found = visit(start, [])
                if found:
                    return found
        return None

    def unpredicted_edges(
            self, predicted: Set[Tuple[str, str]]) -> Set[Tuple[str, str]]:
        """Observed label edges the static model failed to predict."""
        return {edge for edge in self.label_edges()
                if edge not in predicted}

    def report(self) -> str:
        lines = ["lock-order witness:"]
        for edge in sorted(self.edges()):
            lines.append(f"  {_fmt(edge.src)} -> {_fmt(edge.dst)}")
        if len(lines) == 1:
            lines.append("  (no nested acquisitions observed)")
        return "\n".join(lines)
