"""The static lock model: classes, lock identities, per-function facts.

The analyzer assigns every lock a **static identity** ``"Class.attr"``
(the same label the runtime seam ``repro.utils.sync.make_lock`` is given)
and reduces each function to a small summary the rules consume:

* which lock labels it acquires, and with what already held (edges);
* which other project functions it calls, and with what held;
* where it makes catalogued blocking calls, waits on conditions, or
  touches ``_GUARDED_BY`` state.

Lock identity is resolved through **alias chains**: a
``threading.Condition(self._lock)`` shares ``_lock``'s identity, and a
property whose body is ``return self._work`` (``MicroBatcher.admission``)
aliases the condition it returns.  Receiver classes are found by a
lightweight type inference over parameter annotations, ``self.x = ...``
assignments in ``__init__``, dataclass field annotations, container
element types, and constructor calls — enough to resolve chains like
``self.shards[index].batcher.admission`` without a real type checker.

Everything here is **label-level** (instance-insensitive): holding *a*
``MicroBatcher._lock`` satisfies a guard on *any* ``MicroBatcher``
instance's state.  Per-instance order between same-label locks is the
runtime witness's half of the contract; statically, a same-label
multi-acquire is only legal inside a loop over a ``sorted(...)``
iterable (the ascending shard-order admission pattern).
"""

import ast
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

#: Inferred type: ``("instance", class_name)`` or ``("container", elem)``.
Ty = Optional[Tuple[object, ...]]

#: Stdlib classes the model types explicitly (receivers of catalogued
#: blocking / synchronization methods).
_STDLIB_CLASSES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Thread", "threading.Barrier",
    "ExitStack",
}

#: Annotation heads treated as element-typed containers.
_CONTAINER_HEADS = {
    "List", "list", "Sequence", "Iterable", "Iterator", "Tuple", "tuple",
    "Deque", "deque", "Set", "set", "FrozenSet", "frozenset",
}
#: Annotation heads treated as value-typed mappings.
_MAPPING_HEADS = {"Dict", "dict", "Mapping", "OrderedDict", "DefaultDict"}

#: ``(receiver class, method)`` pairs that block the calling thread.
#: ``str.join`` is why this is type-gated — a bare ``.join(`` match would
#: flag every string join.
BLOCKING_METHODS: Dict[Tuple[str, str], str] = {
    ("threading.Thread", "join"): "Thread.join",
    ("threading.Event", "wait"): "Event.wait",
    ("threading.Barrier", "wait"): "Barrier.wait",
    ("ExecutionEngine", "run"): "engine run (process pool / disk I/O)",
}

#: Dotted call paths that block regardless of receiver typing.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "time.sleep",
    "subprocess.run": "subprocess.run",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "subprocess.Popen": "subprocess.Popen",
}

#: Bare names that block (file I/O opens touch the disk).
BLOCKING_NAMES: Dict[str, str] = {"open": "open() file I/O"}


class HeldEntry(NamedTuple):
    """One lock the walker believes is held at a program point."""

    label: str          # "MicroBatcher._lock"
    receiver: str       # source text of the owning object ("self", "part")
    ascending: bool     # acquired inside a sorted-iteration loop


class Site(NamedTuple):
    """Where something happened, for reporting."""

    path: str
    line: int


class CallRecord(NamedTuple):
    site: Site
    callee: str                       # project function key
    held: FrozenSet[str]              # labels held at the call


class BlockRecord(NamedTuple):
    site: Site
    what: str                         # human description
    held: FrozenSet[str]
    exempt: bool                      # Condition.wait on the held lock


class WaitRecord(NamedTuple):
    site: Site
    receiver: str
    in_while: bool


class GuardRecord(NamedTuple):
    site: Site
    attr: str                         # accessed attribute
    owner: str                        # owning class
    needed: str                       # guard label required
    held: FrozenSet[str]
    store: bool


class HoldsCallRecord(NamedTuple):
    site: Site
    callee: str                       # "MicroBatcher.admit"
    needed: Tuple[str, ...]           # labels the callee declares held
    held: FrozenSet[str]


class EnvReadRecord(NamedTuple):
    site: Site
    what: str                         # "os.environ[...]" / "os.getenv(...)"


def _attr_path(node: ast.AST) -> Optional[str]:
    """Dotted path of a Name/Attribute chain (``threading.Condition``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ClassModel:
    """Locks, aliases, guards, and attribute types of one class."""

    def __init__(self, name: str, path: str, node: ast.ClassDef) -> None:
        self.name = name
        self.path = path
        self.node = node
        #: Attributes that *are* base locks (own a lock identity).
        self.lock_attrs: Set[str] = set()
        #: Attributes that are Conditions (waitable).
        self.condition_attrs: Set[str] = set()
        #: attr -> attr alias steps (condition -> its lock, property ->
        #: the attribute its body returns).
        self.aliases: Dict[str, str] = {}
        #: Declared state ownership: attr -> guarding lock attr.
        self.guarded_by: Dict[str, str] = {}
        #: Inferred ``self.attr`` types.
        self.attr_types: Dict[str, Ty] = {}
        self.methods: Dict[str, ast.FunctionDef] = {}
        #: method -> lock attrs declared held by ``@holds(...)``.
        self.holds: Dict[str, Tuple[str, ...]] = {}
        self.properties: Set[str] = set()
        self.classmethods: Set[str] = set()

    def resolve_attr(self, attr: str) -> str:
        """Follow the alias chain to the base attribute."""
        seen = set()
        while attr in self.aliases and attr not in seen:
            seen.add(attr)
            attr = self.aliases[attr]
        return attr

    def lock_label(self, attr: str) -> Optional[str]:
        base = self.resolve_attr(attr)
        if base in self.lock_attrs:
            return f"{self.name}.{base}"
        return None

    def is_condition(self, attr: str) -> bool:
        if attr in self.condition_attrs:
            return True
        seen = set()
        while attr in self.aliases and attr not in seen:
            seen.add(attr)
            attr = self.aliases[attr]
            if attr in self.condition_attrs:
                return True
        return False


class FunctionModel:
    """Everything the rules need to know about one function."""

    def __init__(self, key: str, path: str, node: ast.AST,
                 cls: Optional[str]) -> None:
        self.key = key
        self.path = path
        self.node = node
        self.cls = cls
        self.entry_held: Tuple[str, ...] = ()
        #: Labels acquired directly in this body.
        self.acquires: Set[str] = set()
        #: (held label, acquired label) -> (site, ascending).
        self.edges: Dict[Tuple[str, str], Tuple[Site, bool]] = {}
        #: Same-label multi-acquires outside the sorted-loop pattern.
        self.order_violations: List[Tuple[Site, str]] = []
        self.calls: List[CallRecord] = []
        self.blocking: List[BlockRecord] = []
        self.waits: List[WaitRecord] = []
        self.guard_accesses: List[GuardRecord] = []
        self.holds_calls: List[HoldsCallRecord] = []


class ProjectModel:
    """All classes and functions of the analyzed file set."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassModel] = {}
        self.functions: Dict[str, FunctionModel] = {}
        self.env_reads: List[EnvReadRecord] = []

    def lock_labels(self) -> Set[str]:
        out: Set[str] = set()
        for cm in self.classes.values():
            for attr in cm.lock_attrs:
                out.add(f"{cm.name}.{attr}")
        return out


# ---------------------------------------------------------------------------
# class collection (pass 1)
# ---------------------------------------------------------------------------

def _is_lock_ctor(value: ast.AST) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / ``make_lock(...)``."""
    if not isinstance(value, ast.Call):
        return False
    path = _attr_path(value.func)
    return path in ("threading.Lock", "threading.RLock", "make_lock",
                    "sync.make_lock")


def _condition_ctor_arg(value: ast.AST) -> Optional[Tuple[bool, Optional[str]]]:
    """``threading.Condition(...)`` -> (is_condition, aliased self attr)."""
    if not isinstance(value, ast.Call):
        return None
    if _attr_path(value.func) not in ("threading.Condition", "Condition"):
        return None
    if value.args:
        arg = value.args[0]
        if (isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"):
            return True, arg.attr
        return True, None
    return True, None


def _decorator_names(node: ast.FunctionDef) -> List[str]:
    out = []
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        path = _attr_path(target)
        if path is not None:
            out.append(path)
    return out


def _holds_attrs(node: ast.FunctionDef) -> Optional[Tuple[str, ...]]:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        if _attr_path(deco.func) in ("holds", "sync.holds"):
            attrs = []
            for arg in deco.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    attrs.append(arg.value)
            return tuple(attrs)
    return None


def _collect_class(node: ast.ClassDef, path: str) -> ClassModel:
    cm = ClassModel(node.name, path, node)
    for item in node.body:
        if isinstance(item, ast.Assign):
            # class-level: _GUARDED_BY = {...}
            for target in item.targets:
                if (isinstance(target, ast.Name)
                        and target.id == "_GUARDED_BY"
                        and isinstance(item.value, ast.Dict)):
                    for key, value in zip(item.value.keys, item.value.values):
                        if (isinstance(key, ast.Constant)
                                and isinstance(key.value, str)
                                and isinstance(value, ast.Constant)
                                and isinstance(value.value, str)):
                            cm.guarded_by[key.value] = value.value
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            # dataclass fields: ``batcher: MicroBatcher``
            cm.attr_types.setdefault(item.target.id,
                                     ("annotation", item.annotation))
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not isinstance(item, ast.FunctionDef):
                continue
            cm.methods[item.name] = item
            decos = _decorator_names(item)
            if "property" in decos:
                cm.properties.add(item.name)
                # A property whose body is ``return self.X`` aliases X.
                for stmt in item.body:
                    if (isinstance(stmt, ast.Return)
                            and isinstance(stmt.value, ast.Attribute)
                            and isinstance(stmt.value.value, ast.Name)
                            and stmt.value.value.id == "self"):
                        cm.aliases[item.name] = stmt.value.attr
            if "classmethod" in decos:
                cm.classmethods.add(item.name)
            held = _holds_attrs(item)
            if held is not None:
                cm.holds[item.name] = held
            if item.name == "__init__":
                _collect_init(cm, item)
    return cm


def _collect_init(cm: ClassModel, init: ast.FunctionDef) -> None:
    """Lock/condition/alias/type facts from ``self.X = ...`` in __init__."""
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        attr, value = target.attr, stmt.value
        if _is_lock_ctor(value):
            cm.lock_attrs.add(attr)
            cm.attr_types[attr] = ("instance", "threading.Lock")
            continue
        cond = _condition_ctor_arg(value)
        if cond is not None:
            cm.condition_attrs.add(attr)
            cm.attr_types[attr] = ("instance", "threading.Condition")
            _, aliased = cond
            if aliased is not None:
                cm.aliases[attr] = aliased
            else:
                # A bare Condition owns its own lock; give it identity.
                cm.lock_attrs.add(attr)
            continue
        cm.attr_types.setdefault(attr, ("expr", value, init))


# ---------------------------------------------------------------------------
# type inference
# ---------------------------------------------------------------------------

class _Types:
    """Lightweight expression typing against the collected classes."""

    def __init__(self, classes: Dict[str, ClassModel]) -> None:
        self.classes = classes

    # -- annotations ------------------------------------------------------
    def from_annotation(self, node: Optional[ast.AST]) -> Ty:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Name):
            return self._named(node.id)
        if isinstance(node, ast.Attribute):
            path = _attr_path(node)
            if path in _STDLIB_CLASSES:
                return ("instance", path)
            return self._named(node.attr)
        if isinstance(node, ast.Subscript):
            head = node.value
            head_name = (head.id if isinstance(head, ast.Name)
                         else head.attr if isinstance(head, ast.Attribute)
                         else None)
            elems = self._slice_elems(node)
            if head_name == "Optional" and elems:
                return self.from_annotation(elems[0])
            if head_name in _MAPPING_HEADS and elems:
                return ("container", self.from_annotation(elems[-1]))
            if head_name in _CONTAINER_HEADS and elems:
                return ("container", self.from_annotation(elems[0]))
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self.from_annotation(node.left)
                    or self.from_annotation(node.right))
        return None

    def _named(self, name: str) -> Ty:
        if name in self.classes:
            return ("instance", name)
        if f"threading.{name}" in _STDLIB_CLASSES:
            return ("instance", f"threading.{name}")
        if name in _STDLIB_CLASSES:
            return ("instance", name)
        if any(recv == name for recv, _ in BLOCKING_METHODS):
            # Receivers in the blocking catalogue stay recognizable even
            # when the analyzed file set does not include their module
            # (an ``engine: "ExecutionEngine"`` annotation must gate
            # ``.run`` regardless of whether exec/ is in scope).
            return ("instance", name)
        return None

    @staticmethod
    def _slice_elems(node: ast.Subscript) -> List[ast.AST]:
        inner = node.slice
        if isinstance(inner, ast.Tuple):
            return list(inner.elts)
        return [inner]

    # -- attribute types --------------------------------------------------
    def attr_ty(self, cls: str, attr: str) -> Ty:
        cm = self.classes.get(cls)
        if cm is None:
            return None
        raw = cm.attr_types.get(attr)
        if raw is not None:
            kind = raw[0]
            if kind == "instance" or kind == "container":
                return raw
            if kind == "annotation":
                return self.from_annotation(raw[1])  # type: ignore[arg-type]
            if kind == "expr":
                value, init = raw[1], raw[2]
                env = self._param_env(init, cls)  # type: ignore[arg-type]
                resolved = self.infer(value, env, cls)  # type: ignore[arg-type]
                cm.attr_types[attr] = resolved if resolved is not None else None
                return resolved
        # property with a return annotation
        if attr in cm.properties:
            fn = cm.methods.get(attr)
            if fn is not None and fn.returns is not None:
                return self.from_annotation(fn.returns)
            aliased = cm.aliases.get(attr)
            if aliased is not None:
                return self.attr_ty(cls, aliased)
        return None

    def _param_env(self, fn: ast.FunctionDef, cls: Optional[str]) -> Dict[str, Ty]:
        env: Dict[str, Ty] = {}
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
        for arg in args:
            env[arg.arg] = self.from_annotation(arg.annotation)
        if cls is not None and args:
            env[args[0].arg] = ("instance", cls)
        return env

    # -- expressions ------------------------------------------------------
    def infer(self, expr: ast.AST, env: Dict[str, Ty],
              self_cls: Optional[str]) -> Ty:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer(expr.value, env, self_cls)
            if base is not None and base[0] == "instance":
                name = base[1]
                if isinstance(name, str) and name in self.classes:
                    return self.attr_ty(name, expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base = self.infer(expr.value, env, self_cls)
            if base is not None and base[0] == "container":
                elem = base[1]
                return elem if isinstance(elem, tuple) else None
            return None
        if isinstance(expr, ast.IfExp):
            return (self.infer(expr.body, env, self_cls)
                    or self.infer(expr.orelse, env, self_cls))
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            inner = dict(env)
            for gen in expr.generators:
                iter_ty = self.infer(gen.iter, inner, self_cls)
                if isinstance(gen.target, ast.Name):
                    inner[gen.target.id] = (
                        iter_ty[1] if (iter_ty is not None
                                       and iter_ty[0] == "container"
                                       and isinstance(iter_ty[1], tuple))
                        else None)
            return ("container", self.infer(expr.elt, inner, self_cls))
        if isinstance(expr, ast.Call):
            return self._call_ty(expr, env, self_cls)
        return None

    def _call_ty(self, call: ast.Call, env: Dict[str, Ty],
                 self_cls: Optional[str]) -> Ty:
        func = call.func
        path = _attr_path(func)
        if path in ("threading.Lock", "threading.RLock", "make_lock",
                    "sync.make_lock"):
            return ("instance", "threading.Lock")
        if path in _STDLIB_CLASSES:
            return ("instance", path)
        if isinstance(func, ast.Name):
            if func.id in self.classes:
                return ("instance", func.id)
            if func.id == "cls" and self_cls is not None:
                return ("instance", self_cls)
            if func.id in ("sorted", "list", "tuple"):
                if call.args:
                    arg_ty = self.infer(call.args[0], env, self_cls)
                    if arg_ty is not None and arg_ty[0] == "container":
                        return arg_ty
                return None
            return None
        if isinstance(func, ast.Attribute):
            # ClassName.classmethod(...) or receiver.method(...)
            recv: Ty = None
            if isinstance(func.value, ast.Name) and func.value.id in self.classes:
                recv = ("instance", func.value.id)
            else:
                recv = self.infer(func.value, env, self_cls)
            if recv is not None and recv[0] == "instance":
                name = recv[1]
                if isinstance(name, str) and name in self.classes:
                    method = self.classes[name].methods.get(func.attr)
                    if method is not None and method.returns is not None:
                        return self.from_annotation(method.returns)
        return None


def elem_ty(ty: Ty) -> Ty:
    """Element type of a container type, else None."""
    if ty is not None and ty[0] == "container" and isinstance(ty[1], tuple):
        return ty[1]
    return None
# ---------------------------------------------------------------------------
# function body analysis (pass 2)
# ---------------------------------------------------------------------------

#: Loop context of a statement: ``None`` outside any ``for``; inside one,
#: ``True`` iff the loop provably iterates an ascending-sorted iterable.
LoopCtx = Optional[bool]


class _FunctionWalker:
    """Walks one function's statements threading the held-lock state.

    The walk is block-sequential: a ``with <lock>:`` holds for its body, a
    ``stack.enter_context(<lock>)`` holds for the remainder of the
    enclosing block (the ExitStack owns the release), and branches are
    walked with copies of the held list so a branch-local acquisition
    does not leak past its join point.
    """

    def __init__(self, model: FunctionModel, types: _Types,
                 classes: Dict[str, ClassModel]) -> None:
        self.fn = model
        self.types = types
        self.classes = classes
        self.cls = model.cls
        #: Names of local ExitStack variables.
        self.stacks: Set[str] = set()
        #: Local names provably bound to ascending-sorted iterables.
        self.sorted_names: Set[str] = set()
        #: Local name -> source text it aliases (receiver display).
        self.alias_text: Dict[str, str] = {}
        #: Local names bound fresh from a constructor (not yet shared).
        self.fresh: Set[str] = set()
        self.env: Dict[str, Ty] = {}

    # -- entry ------------------------------------------------------------
    def run(self) -> None:
        node = self.fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        cm = self.classes.get(self.cls) if self.cls else None
        self.env = self.types._param_env(node, self.cls)
        held: List[HeldEntry] = []
        if cm is not None:
            for attr in cm.holds.get(node.name, ()):
                label = cm.lock_label(attr)
                if label is not None:
                    held.append(HeldEntry(label, "self", False))
        self.fn.entry_held = tuple(entry.label for entry in held)
        self.walk_block(node.body, held, in_while=False, loop=None)

    def site(self, node: ast.AST) -> Site:
        return Site(self.fn.path, getattr(node, "lineno", 1))

    def held_labels(self, held: List[HeldEntry]) -> FrozenSet[str]:
        return frozenset(entry.label for entry in held)

    # -- lock expression resolution ---------------------------------------
    def lock_ref(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """(label, receiver text) when ``expr`` denotes a known lock."""
        if not isinstance(expr, ast.Attribute):
            return None
        base_ty = self.types.infer(expr.value, self.env, self.cls)
        if base_ty is None or base_ty[0] != "instance":
            return None
        name = base_ty[1]
        if not isinstance(name, str) or name not in self.classes:
            return None
        label = self.classes[name].lock_label(expr.attr)
        if label is None:
            return None
        return label, self.receiver_text(expr.value)

    def condition_ref(self, expr: ast.AST) -> Optional[Tuple[str, Optional[str]]]:
        """(receiver text, lock label) when ``expr`` is a Condition attr."""
        if not isinstance(expr, ast.Attribute):
            return None
        base_ty = self.types.infer(expr.value, self.env, self.cls)
        if base_ty is None or base_ty[0] != "instance":
            return None
        name = base_ty[1]
        if not isinstance(name, str) or name not in self.classes:
            return None
        cm = self.classes[name]
        if not cm.is_condition(expr.attr):
            return None
        return self.receiver_text(expr), cm.lock_label(expr.attr)

    def receiver_text(self, expr: ast.AST) -> str:
        try:
            text = ast.unparse(expr)
        except Exception:
            return "<?>"
        # Substitute simple local aliases so receivers read in terms of
        # the structure they came from (``batcher`` ->
        # ``self.shards[index].batcher``).
        root = text.split(".", 1)
        if root[0] in self.alias_text:
            text = self.alias_text[root[0]] + (
                "." + root[1] if len(root) > 1 else "")
        return text

    # -- acquisition ------------------------------------------------------
    def acquire(self, node: ast.AST, label: str, receiver: str,
                held: List[HeldEntry], *, ascending: bool,
                looped: bool) -> HeldEntry:
        """Record one acquisition of ``label`` against ``held``."""
        site = self.site(node)
        self.fn.acquires.add(label)
        for entry in held:
            self.add_edge(entry.label, label, site,
                          ascending=ascending and entry.ascending)
        if looped:
            # A held-extending acquire inside a ``for`` takes the same
            # label once per iteration — a same-label nesting by
            # construction, legal only when the loop is sorted-ascending.
            self.add_edge(label, label, site, ascending=ascending)
        return HeldEntry(label, receiver, ascending)

    def add_edge(self, src: str, dst: str, site: Site, *,
                 ascending: bool) -> None:
        if src == dst and not ascending:
            self.fn.order_violations.append((site, src))
            return
        current = self.fn.edges.get((src, dst))
        if current is None or (current[1] and not ascending):
            self.fn.edges[(src, dst)] = (site, ascending)

    # -- statements -------------------------------------------------------
    def walk_block(self, stmts: Sequence[ast.stmt], held: List[HeldEntry],
                   *, in_while: bool, loop: LoopCtx) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt, held, in_while=in_while, loop=loop)

    def walk_stmt(self, stmt: ast.stmt, held: List[HeldEntry], *,
                  in_while: bool, loop: LoopCtx) -> None:
        if isinstance(stmt, ast.With):
            self.walk_with(stmt, held, in_while=in_while, loop=loop)
            return
        if isinstance(stmt, ast.For):
            self.walk_expr(stmt.iter, held, loop=loop)
            body_loop: LoopCtx = self.is_sorted_expr(stmt.iter)
            self.bind_target(stmt.target,
                             elem_ty(self.types.infer(stmt.iter, self.env,
                                                      self.cls)))
            body_held = list(held)
            self.walk_block(stmt.body, body_held, in_while=in_while,
                            loop=body_loop)
            # enter_context acquisitions made inside the loop stay held
            # after it (the ExitStack owns them).
            held.extend(body_held[len(held):])
            self.walk_block(stmt.orelse, list(held), in_while=in_while,
                            loop=loop)
            return
        if isinstance(stmt, ast.While):
            self.walk_expr(stmt.test, held, loop=loop)
            self.walk_block(stmt.body, list(held), in_while=True, loop=loop)
            self.walk_block(stmt.orelse, list(held), in_while=in_while,
                            loop=loop)
            return
        if isinstance(stmt, ast.If):
            self.walk_expr(stmt.test, held, loop=loop)
            self.walk_block(stmt.body, list(held), in_while=in_while,
                            loop=loop)
            self.walk_block(stmt.orelse, list(held), in_while=in_while,
                            loop=loop)
            return
        if isinstance(stmt, ast.Try):
            self.walk_block(stmt.body, list(held), in_while=in_while,
                            loop=loop)
            for handler in stmt.handlers:
                self.walk_block(handler.body, list(held), in_while=in_while,
                                loop=loop)
            self.walk_block(stmt.orelse, list(held), in_while=in_while,
                            loop=loop)
            self.walk_block(stmt.finalbody, list(held), in_while=in_while,
                            loop=loop)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested defs execute later (threads, tickets): analyzed
            # separately with an empty held set by the project builder.
            return
        if isinstance(stmt, ast.Assign):
            self.walk_expr(stmt.value, held, loop=loop)
            value_ty = self.types.infer(stmt.value, self.env, self.cls)
            for target in stmt.targets:
                # Subscript/attribute-chain targets read their base
                # objects (``self._executing[key] = t`` touches
                # ``_executing``): walk them for guarded loads too.
                self.walk_expr(target, held, loop=loop)
                self.note_store(target, held)
                self.bind_target(target, value_ty)
                if isinstance(target, ast.Name):
                    self.note_assign(target.id, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.walk_expr(stmt.value, held, loop=loop)
            self.walk_expr(stmt.target, held, loop=loop)
            self.note_store(stmt.target, held)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.types.from_annotation(
                    stmt.annotation)
                if stmt.value is not None:
                    self.note_assign(stmt.target.id, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self.walk_expr(stmt.value, held, loop=loop)
            # ``x += 1`` both reads and writes the target.
            self.note_load(stmt.target, held)
            self.note_store(stmt.target, held)
            return
        if isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self.walk_expr(stmt.value, held, loop=loop)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.walk_expr(stmt.exc, held, loop=loop)
            return
        if isinstance(stmt, ast.Assert):
            self.walk_expr(stmt.test, held, loop=loop)
            return
        # Imports, pass, break, continue, global, delete: nothing tracked.

    def walk_with(self, stmt: ast.With, held: List[HeldEntry], *,
                  in_while: bool, loop: LoopCtx) -> None:
        body_held = list(held)
        for item in stmt.items:
            expr = item.context_expr
            self.walk_expr(expr, body_held, loop=loop)
            ref = self.lock_ref(expr)
            if ref is not None:
                label, receiver = ref
                # ``with`` releases at block end, so even inside a loop
                # iterations never nest: looped=False.
                body_held.append(self.acquire(
                    expr, label, receiver, body_held,
                    ascending=loop is True, looped=False))
                continue
            if (isinstance(expr, ast.Call)
                    and _attr_path(expr.func) in ("ExitStack",
                                                  "contextlib.ExitStack")
                    and isinstance(item.optional_vars, ast.Name)):
                self.stacks.add(item.optional_vars.id)
        self.walk_block(stmt.body, body_held, in_while=in_while, loop=loop)

    def bind_target(self, target: ast.AST, ty: Ty) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = ty
            self.fresh.discard(target.id)
            self.alias_text.pop(target.id, None)
            self.sorted_names.discard(target.id)
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                self.bind_target(elt, None)

    def note_assign(self, name: str, value: ast.AST) -> None:
        if self.is_sorted_expr(value):
            self.sorted_names.add(name)
        if isinstance(value, ast.Call):
            func = value.func
            if (isinstance(func, ast.Name)
                    and (func.id in self.classes or func.id == "cls")):
                self.fresh.add(name)
        if isinstance(value, (ast.Attribute, ast.Subscript)):
            try:
                self.alias_text[name] = ast.unparse(value)
            except Exception:
                pass

    def is_sorted_expr(self, expr: ast.AST) -> bool:
        """Provably ascending: ``sorted(...)`` without ``reverse=True``,
        or a local name bound to one."""
        if isinstance(expr, ast.Name):
            return expr.id in self.sorted_names
        if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
                and expr.func.id == "sorted"):
            for kw in expr.keywords:
                if kw.arg == "reverse":
                    return (isinstance(kw.value, ast.Constant)
                            and kw.value.value is False)
            return True
        return False

    # -- expressions ------------------------------------------------------
    def walk_expr(self, expr: ast.AST, held: List[HeldEntry], *,
                  loop: LoopCtx) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self.visit_call(node, held, loop=loop)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx,
                                                                ast.Load):
                self.note_load(node, held)
                self.note_property_read(node, held)

    def note_property_read(self, node: ast.Attribute,
                           held: List[HeldEntry]) -> None:
        """A property access runs code: model it as a call, so a property
        that takes a lock contributes edges like any other callee."""
        base_ty = self.types.infer(node.value, self.env, self.cls)
        if base_ty is None or base_ty[0] != "instance":
            return
        name = base_ty[1]
        if (isinstance(name, str) and name in self.classes
                and node.attr in self.classes[name].properties):
            self.fn.calls.append(CallRecord(
                self.site(node), f"{name}.{node.attr}",
                self.held_labels(held)))

    def visit_call(self, call: ast.Call, held: List[HeldEntry], *,
                   loop: LoopCtx) -> None:
        func = call.func
        path = _attr_path(func)
        site = self.site(call)
        labels = self.held_labels(held)
        # name-level blocking calls
        if path in BLOCKING_CALLS:
            self.fn.blocking.append(
                BlockRecord(site, BLOCKING_CALLS[path], labels, False))
            return
        if isinstance(func, ast.Name) and func.id in BLOCKING_NAMES:
            self.fn.blocking.append(
                BlockRecord(site, BLOCKING_NAMES[func.id], labels, False))
            return
        if not isinstance(func, ast.Attribute):
            if isinstance(func, ast.Name):
                # Possibly a module-level project function.
                self.fn.calls.append(CallRecord(site, func.id, labels))
            return
        # stack.enter_context(<lock>) — held until the stack unwinds.
        if (func.attr == "enter_context"
                and isinstance(func.value, ast.Name)
                and func.value.id in self.stacks and call.args):
            ref = self.lock_ref(call.args[0])
            if ref is not None:
                label, receiver = ref
                held.append(self.acquire(
                    call.args[0], label, receiver, held,
                    ascending=loop is True, looped=loop is not None))
            return
        # <lock>.acquire() / <lock>.release()
        if func.attr in ("acquire", "release"):
            ref = self.lock_ref(func.value)
            if ref is not None:
                label, receiver = ref
                if func.attr == "acquire":
                    held.append(self.acquire(
                        func.value, label, receiver, held,
                        ascending=loop is True, looped=loop is not None))
                else:
                    for i in range(len(held) - 1, -1, -1):
                        if held[i].label == label:
                            del held[i]
                            break
                return
        # Condition.wait / wait_for
        if func.attr in ("wait", "wait_for"):
            cond = self.condition_ref(func.value)
            if cond is not None:
                receiver, lock_label = cond
                self.fn.waits.append(WaitRecord(
                    site, receiver, self._inside_while(call)))
                other = labels - ({lock_label} if lock_label else frozenset())
                # Waiting on a condition releases that condition's own
                # lock; it only blocks *other* held locks.
                self.fn.blocking.append(BlockRecord(
                    site, f"Condition.wait on {receiver}", labels,
                    exempt=not other))
                return
        # type-gated blocking methods (Thread.join, Event.wait, engine.run)
        recv_ty = self.types.infer(func.value, self.env, self.cls)
        if recv_ty is not None and recv_ty[0] == "instance":
            recv_name = recv_ty[1]
            if isinstance(recv_name, str):
                desc = BLOCKING_METHODS.get((recv_name, func.attr))
                if desc is not None:
                    self.fn.blocking.append(
                        BlockRecord(site, desc, labels, False))
                    return
                if recv_name in self.classes:
                    cm = self.classes[recv_name]
                    if func.attr in cm.methods:
                        self.fn.calls.append(CallRecord(
                            site, f"{recv_name}.{func.attr}", labels))
                        needed = cm.holds.get(func.attr)
                        if needed:
                            need_labels = tuple(
                                label for label in
                                (cm.lock_label(a) for a in needed)
                                if label is not None)
                            self.fn.holds_calls.append(HoldsCallRecord(
                                site, f"{recv_name}.{func.attr}",
                                need_labels, labels))

    def _inside_while(self, call: ast.Call) -> bool:
        """Whether ``call`` sits (at any depth) inside a ``while`` of this
        function — the re-checked-predicate shape REPRO010 demands."""
        node = self.fn.node
        stack: List[Tuple[ast.AST, bool]] = [(node, False)]
        while stack:
            current, in_while = stack.pop()
            here = in_while or isinstance(current, ast.While)
            for child in ast.iter_child_nodes(current):
                if child is call:
                    return here
                if (isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.Lambda))
                        and child is not node):
                    continue
                stack.append((child, here))
        return False

    # -- guarded state ----------------------------------------------------
    def note_load(self, node: ast.AST, held: List[HeldEntry]) -> None:
        self._note_access(node, held, store=False)

    def note_store(self, node: ast.AST, held: List[HeldEntry]) -> None:
        self._note_access(node, held, store=True)
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._note_access(elt, held, store=True)

    def _note_access(self, node: ast.AST, held: List[HeldEntry],
                     store: bool) -> None:
        if not isinstance(node, ast.Attribute):
            return
        base_ty = self.types.infer(node.value, self.env, self.cls)
        if base_ty is None or base_ty[0] != "instance":
            return
        name = base_ty[1]
        if not isinstance(name, str) or name not in self.classes:
            return
        cm = self.classes[name]
        guard = cm.guarded_by.get(node.attr)
        if guard is None:
            return
        label = cm.lock_label(guard)
        if label is None:
            return
        # A local just built from the constructor is not yet visible to
        # any other thread; __init__ publishing ``self`` is the same
        # exemption.
        if isinstance(node.value, ast.Name):
            if node.value.id in self.fresh:
                return
            fn_node = self.fn.node
            if (isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and fn_node.name == "__init__" and fn_node.args.args
                    and node.value.id == fn_node.args.args[0].arg):
                return
        self.fn.guard_accesses.append(GuardRecord(
            self.site(node), node.attr, name, label,
            self.held_labels(held), store))


# ---------------------------------------------------------------------------
# project assembly
# ---------------------------------------------------------------------------

def _iter_functions(tree: ast.AST) -> Iterable[Tuple[str, Optional[str],
                                                     ast.FunctionDef]]:
    """(key, owning class, node) for every def, including nested ones."""

    def visit(node: ast.AST, cls: Optional[str],
              prefix: str) -> Iterable[Tuple[str, Optional[str],
                                             ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name, f"{child.name}.")
            elif isinstance(child, ast.FunctionDef):
                key = f"{prefix}{child.name}"
                yield key, cls, child
                # Nested defs run on other threads (drain workers, ticket
                # jobs): analyzed with an empty held set, no receiver.
                yield from visit(child, None, f"{key}.<locals>.")
            else:
                yield from visit(child, cls, prefix)

    yield from visit(tree, None, "")


def build_project_model(files: Sequence[Tuple[str, ast.AST]]) -> ProjectModel:
    """Two passes over (path, tree) pairs: classes first, then bodies."""
    project = ProjectModel()
    for path, tree in files:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                cm = _collect_class(node, path)
                project.classes.setdefault(cm.name, cm)
    types = _Types(project.classes)
    for path, tree in files:
        # Every environment read, wherever it hides (REPRO011 is scope-,
        # not lock-based, so a flat walk suffices).
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and _attr_path(node.func) in ("os.getenv",
                                                  "os.environ.get")):
                project.env_reads.append(EnvReadRecord(
                    Site(path, node.lineno),
                    f"{_attr_path(node.func)}(...)"))
            elif (isinstance(node, ast.Subscript)
                  and _attr_path(node.value) == "os.environ"):
                project.env_reads.append(EnvReadRecord(
                    Site(path, node.lineno), "os.environ[...]"))
        for key, cls, fn_node in _iter_functions(tree):
            if key in project.functions:
                # Same qualname in two files: keep the first — the call
                # graph is name-keyed, and collisions are rare and benign.
                continue
            model = FunctionModel(key, path, fn_node, cls)
            _FunctionWalker(model, types, project.classes).run()
            project.functions[key] = model
    return project
